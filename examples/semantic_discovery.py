#!/usr/bin/env python3
"""Semantic integration walk-through (§2-§4.3).

Shows the machinery that lets Whisper match Web services to b-peer groups:

1. the WSDL-S document of the StudentManagement service (the §3.1 listing);
2. the OWL ontology both sides annotate against;
3. semantic advertisements, including a synonym-annotated group, a homonym
   trap, and an unrelated service;
4. the §3.2 ``findPeerGroupAdv`` logic — semantic matching vs. the
   syntactic baseline, demonstrating the precision/recall gap the paper
   claims.

Run:  python examples/semantic_discovery.py
"""

from __future__ import annotations

from repro.core import SemanticGroupMatcher, SemanticWebService, SyntacticGroupMatcher
from repro.ontology import (
    B2B,
    LEGACY,
    SM,
    ConceptMatcher,
    DegreeOfMatch,
    Reasoner,
    b2b_ontology,
    ontology_to_xml,
)
from repro.p2p import PeerGroupId, SemanticAdvertisement
from repro.wsdl import definitions_to_xml, student_management_wsdl


def build_advertisements():
    def adv(name, action, inputs, outputs):
        return SemanticAdvertisement(
            group_id=PeerGroupId.from_name(name), name=name,
            action=action, inputs=tuple(inputs), outputs=tuple(outputs),
        )

    return [
        adv("uma-students", SM["StudentInformation"],
            [SM["StudentID"]], [SM["StudentInfo"]]),
        adv("registry-students (synonyms)", SM["StudentInformation"],
            [SM["StudentNumber"]], [SM["StudentRecord"]]),
        adv("legacy-marketing (homonym trap)", LEGACY["StudentInformation"],
            [LEGACY["StudentID"]], [LEGACY["StudentInfo"]]),
        adv("insurance-claims", B2B["ProcessClaim"],
            [B2B["ClaimID"]], [B2B["AssessmentReport"]]),
    ]


def main() -> None:
    ontology = b2b_ontology()
    definitions = student_management_wsdl()
    sws = SemanticWebService(definitions, ontology)

    print("=== 1. The WSDL-S document (§3.1) ===\n")
    wsdl_xml = definitions_to_xml(definitions)
    print("\n".join(wsdl_xml.splitlines()[:20]))
    print("  ...\n")

    annotation = sws.annotation("StudentInformation")
    print("semantic annotation extracted by the proxy:")
    print(f"  action : {annotation.action}")
    print(f"  inputs : {list(annotation.inputs)}")
    print(f"  outputs: {list(annotation.outputs)}\n")

    print("=== 2. The shared OWL ontology ===\n")
    reasoner = Reasoner(ontology)
    print(f"ontology: {ontology.uri} ({len(ontology)} concepts)")
    print(f"  StudentID ≡ StudentNumber : "
          f"{reasoner.equivalent(SM['StudentID'], SM['StudentNumber'])}")
    print(f"  StudentInfo ≡ StudentRecord: "
          f"{reasoner.equivalent(SM['StudentInfo'], SM['StudentRecord'])}")
    print(f"  sm:StudentInformation vs legacy:StudentInformation related: "
          f"{reasoner.is_subsumed_by(LEGACY['StudentInformation'], SM['StudentInformation'])}")
    owl_xml = ontology_to_xml(ontology)
    print(f"  (serialises to {len(owl_xml):,} bytes of OWL RDF/XML)\n")

    print("=== 3. Advertisements on the JXTA network (§4.3) ===\n")
    advertisements = build_advertisements()
    for advertisement in advertisements:
        print(f"  {advertisement.name:<32} action={advertisement.action}")
    print()

    print("=== 4. findPeerGroupAdv (§3.2): semantic vs syntactic ===\n")
    semantic = SemanticGroupMatcher(
        ConceptMatcher(reasoner), min_degree=DegreeOfMatch.EXACT
    )
    syntactic = SyntacticGroupMatcher()
    for label, matcher in (("semantic", semantic), ("syntactic", syntactic)):
        matches = matcher.find_all(annotation, advertisements)
        names = [match.advertisement.name for match in matches]
        print(f"  {label:>9} matcher selects: {names}")
    print(
        "\nThe syntactic matcher is fooled by the homonym trap and misses\n"
        "the synonym-annotated group — §3.1's 'high recall and low\n"
        "precision'. The semantic matcher gets both right."
    )


if __name__ == "__main__":
    main()
