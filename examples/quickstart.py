#!/usr/bin/env python3
"""Quickstart: the paper's running scenario, end to end.

Deploys the §3 StudentManagement service — a semantic Web service whose
implementation lives on a JXTA-like b-peer group — issues a few SOAP
calls, then crashes the group's coordinator mid-workload and shows Whisper
failing over transparently (at the §5 worst-case latency of a few
seconds).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ScenarioConfig, WhisperSystem


def main() -> None:
    print("=== Whisper quickstart: the StudentManagement scenario (§3) ===\n")

    # One simulated LAN: a rendezvous, a web server (service + SWS-proxy),
    # and four b-peers with alternating operational-DB / data-warehouse
    # backends.  Every deployment knob lives on one ScenarioConfig.
    system = WhisperSystem(ScenarioConfig(seed=1, replicas=4))
    service = system.deploy_student_service()
    system.settle(6.0)

    coordinator = service.group.coordinator_peer()
    print(f"b-peer group: {service.group.name}")
    print(f"  members    : {[peer.name for peer in service.group.peers]}")
    print(f"  coordinator: {coordinator.name} ({coordinator.implementation.name})")
    print(f"  semantic advertisement action: {service.group.advertisement.action}\n")

    node, client = system.add_client("laptop")
    log = []

    def workload():
        # Three ordinary calls...
        for student in ("S00001", "S00002", "S00003"):
            started = system.env.now
            value = yield from client.call(
                service.address, service.path, "StudentInformation",
                {"ID": student}, timeout=60.0,
            )
            log.append((student, value, system.env.now - started))
        # ...then the coordinator's host dies, silently (§1's system
        # failure: no <soap:fault>, just a dead machine).
        service.group.crash_coordinator()
        for student in ("S00004", "S00005"):
            started = system.env.now
            value = yield from client.call(
                service.address, service.path, "StudentInformation",
                {"ID": student}, timeout=60.0,
            )
            log.append((student, value, system.env.now - started))

    system.env.run(until=node.spawn(workload()))

    print(f"{'student':>8}  {'name':<20} {'served from':<16} {'rtt':>10}")
    print("-" * 62)
    for student, value, elapsed in log:
        print(
            f"{student:>8}  {value['name']:<20} {value['source']:<16} "
            f"{elapsed * 1000:>8.1f}ms"
        )

    # In-process callers get the typed invocation API: an InvokeResult
    # carrying the payload plus how the call went (outcome, attempts,
    # duration, trace id) — `.value` is the bare payload.
    result = system.run_process(
        service.invoke("StudentInformation", {"ID": "S00006"}),
        node=service.proxy.node,
    )
    print(
        f"\ntyped invoke: {result.value['studentId']} -> outcome "
        f"{result.outcome.value}, {result.attempts} attempt(s), "
        f"{result.duration * 1000:.1f}ms, trace #{result.trace_id}"
    )

    new_coordinator = service.group.coordinator_peer()
    stats = service.proxy.stats
    print(f"\ncoordinator failed over -> {new_coordinator.name}")
    print(
        f"proxy: {stats.invocations} invocations, {stats.timeouts} timeouts "
        f"masked, {stats.rebinds} re-binds"
    )
    print(
        "\nNote the single multi-second RTT: detection + Bully election + "
        "proxy re-binding (§5's worst case). Every call still succeeded."
    )


if __name__ == "__main__":
    main()
