#!/usr/bin/env python3
"""An operator's day: monitoring, rolling maintenance, trace export.

Shows the operational surface a downstream user of this library gets on
top of the paper's architecture: a structured health report, graceful
b-peer shutdown for planned maintenance (sub-second handoff instead of a
multi-second failover), and CSV export of the network trace for offline
analysis.

Run:  python examples/operations.py
"""

from __future__ import annotations

from repro.core import ScenarioConfig, WhisperSystem


def _print_status(system: WhisperSystem, heading: str) -> None:
    report = system.status_report()
    print(f"--- {heading} (t={report['time']:.1f}s) ---")
    print(f"hosts up: {report['hosts']['up']}/{report['hosts']['total']}   "
          f"network: {report['network']['sent']} messages sent")
    for name, service in report["services"].items():
        for operation, group in service["groups"].items():
            print(f"  {name}.{operation}: {group['alive']}/{group['replicas']} "
                  f"replicas, coordinator={group['coordinator']}")
            for replica, qos in group["replica_qos"].items():
                print(f"      {replica}: executed={qos['executed']} "
                      f"mean={qos['mean_time'] * 1000:.1f}ms "
                      f"reliability={qos['reliability']:.3f}")
    print()


def main() -> None:
    print("=== Whisper operations walk-through ===\n")
    system = WhisperSystem(
        ScenarioConfig(seed=6, record_trace_details=True, replicas=3)
    )
    service = system.deploy_student_service()
    system.settle(6.0)

    node, client = system.add_client("ops-client")

    def some_traffic(count, offset=0):
        def loop():
            for index in range(count):
                yield from client.call(
                    service.address, service.path, "StudentInformation",
                    {"ID": f"S{offset + index + 1:05d}"}, timeout=60.0,
                )
                yield system.env.timeout(0.2)

        system.env.run(until=node.spawn(loop()))

    some_traffic(5)
    _print_status(system, "steady state")

    # Rolling maintenance: gracefully drain the current coordinator.
    victim = service.group.coordinator_peer()
    print(f"draining {victim.name} for maintenance (graceful shutdown)...")
    before = system.env.now
    victim.shutdown()
    system.settle(2.0)
    some_traffic(5, offset=5)
    print(f"handoff + 5 more requests completed in "
          f"{system.env.now - before:.2f}s simulated\n")
    _print_status(system, "after maintenance drain")

    # Bring it back.
    victim.start(system.rendezvous)
    system.settle(6.0)
    _print_status(system, "replica back in rotation")

    # Export the trace for offline analysis.
    csv = system.trace.records_to_csv()
    lines = csv.count("\n") - 1
    print(f"trace export: {lines} message records as CSV; first rows:")
    for row in csv.splitlines()[:4]:
        print(f"  {row}")


if __name__ == "__main__":
    main()
