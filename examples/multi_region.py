#!/usr/bin/env python3
"""Multi-region deployment: nearest-region binding and WAN failover.

Declares a three-region WAN topology with the fluent ``Topology``
builder, deploys the §3 StudentInformation service *replicated per
region* (one b-peer group in each, discovered across regions by the
gossip layer), then:

1. shows the SWS-proxy binding to its home region's group (single-digit
   millisecond RTTs, no WAN hop on the request path);
2. crashes every replica in the home region and shows the proxy failing
   over to the nearest surviving region — correct, one WAN RTT slower.

Run:  python examples/multi_region.py
"""

from __future__ import annotations

from repro.core import ScenarioConfig, WhisperSystem
from repro.core.topology import Topology


def main() -> None:
    print("=== Whisper multi-region: 3 regions, gossip discovery ===\n")

    # The whole network shape is one declarative value: per-region LANs,
    # asymmetric WAN links with jitter, and the gossip tuning that
    # spreads advertisements between the regions' rendezvous peers.
    topology = (
        Topology.builder()
        .region("eu", latency="lan")
        .region("us", latency="lan")
        .region("ap", latency="lan")
        .link("eu", "us", latency="lognormal:40ms±15ms")
        .link("eu", "ap", latency="lognormal:120ms±30ms",
              latency_back="lognormal:140ms±30ms")
        .link("us", "ap", latency="lognormal:90ms±20ms")
        .gossip(fanout=2, interval=0.5)
        .home("eu")
        .build()
    )
    system = WhisperSystem(ScenarioConfig(seed=7, replicas=2, topology=topology))
    service = system.deploy_student_service()
    system.settle(10.0)

    print(f"home region : {system.topology.home}")
    for region in system.topology.region_names():
        group = service.region_group_for("StudentInformation", region)
        gossip = system.gossip[region]
        print(
            f"  {region}: group {group.name} "
            f"({len(group.peers)} replicas), "
            f"{len(gossip.entries)} gossiped advertisements"
        )
    print()

    log = []

    def call(student):
        started = system.env.now
        result = yield from service.invoke(
            "StudentInformation", {"ID": student}, timeout=8.0, budget=30.0
        )
        log.append((student, result.value["name"], system.env.now - started))

    def workload():
        # Three calls served from the home region...
        for student in ("S00001", "S00002", "S00003"):
            yield from call(student)
        # ...then the whole home region's replica set dies.
        home_group = service.region_group_for(
            "StudentInformation", system.topology.home
        )
        for peer in home_group.peers:
            system.failures.crash_at(system.env.now, peer.node.name)
        yield system.env.timeout(2.0)
        for student in ("S00004", "S00005"):
            yield from call(student)

    system.run_process(workload(), node=service.proxy.node)

    print(f"{'student':>8}  {'name':<20} {'rtt':>10}")
    print("-" * 44)
    for index, (student, name, rtt) in enumerate(log):
        marker = "   <- home region crashed" if index == 3 else ""
        print(f"{student:>8}  {name:<20} {rtt * 1000:>8.1f}ms{marker}")

    stats = service.proxy.stats
    print(
        f"\nnearest-region binds: {stats.region_preferred}, "
        f"cross-region failovers: {stats.region_failovers}"
    )


if __name__ == "__main__":
    main()
