#!/usr/bin/env python3
"""Regenerate the paper's Figure 4 from the command line.

Sweeps the number of b-peers and reports the number of messages exchanged
in a fixed steady-state window, with a least-squares check of the paper's
linearity claim and an ASCII rendering of the figure.

Run:  python examples/figure4.py [max_peers]
"""

from __future__ import annotations

import sys

from repro.bench import (
    ClosedLoopWorkload,
    ascii_plot,
    format_sweep,
    linear_fit,
    run_sweep,
)
from repro.core import ScenarioConfig, WhisperSystem

WINDOW_SECONDS = 20.0


def measure(replicas: int) -> dict:
    system = WhisperSystem(ScenarioConfig(seed=42, replicas=replicas))
    service = system.deploy_student_service()
    system.settle(6.0)
    workload = ClosedLoopWorkload(
        system, service.address, service.path, "StudentInformation",
        clients=2, think_time=0.1, requests_per_client=10,
    )
    workload.run()
    system.run_until(system.env.now + 5.0)  # quiesce startup elections
    system.reset_counters()
    system.run_until(system.env.now + WINDOW_SECONDS)
    return {
        "messages": system.trace.sent_total,
        "bytes": system.trace.bytes_total,
    }


def main() -> None:
    max_peers = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    counts = [n for n in (2, 4, 6, 8, 10, 12, 16, 20, 24) if n <= max_peers]
    print(
        "Figure 4 — variation of the number of messages exchanged as the "
        "number of b-peers increases\n"
    )
    sweep = run_sweep("Figure 4", "b-peers", counts, measure)
    print(format_sweep(sweep))
    xs = [float(n) for n in sweep.parameters()]
    ys = [float(v) for v in sweep.series("messages")]
    print()
    print(ascii_plot(xs, ys, x_label="b-peers", y_label="messages"))
    fit = linear_fit(xs, ys)
    print(
        f"\nleast squares: messages = {fit.slope:.1f} x peers "
        f"{fit.intercept:+.1f}   r² = {fit.r_squared:.5f}"
    )
    verdict = "LINEAR" if fit.r_squared > 0.98 else "NOT linear"
    print(f"=> {verdict}: matches the paper's 'predictable linear increase'.")


if __name__ == "__main__":
    main()
