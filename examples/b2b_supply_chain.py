#!/usr/bin/env python3
"""A B2B process across the paper's §1 motivating domains.

Deploys three Whisper services — insurance claim assessment, bank loan
approval, and patient record retrieval — on one LAN, composes them into a
small B2B process (an insurance settlement touching all three partners),
predicts the process QoS with the §2.4 aggregation model, runs it, and
then demonstrates that a backend outage at one partner ("the consequences
of failures can ripple across multiple organizations", §1) is absorbed by
b-peer delegation instead of stalling the supply chain.

Run:  python examples/b2b_supply_chain.py
"""

from __future__ import annotations

from repro.backend import (
    claim_assessment,
    claims_database,
    loan_approval,
    loans_database,
    patient_record_retrieval,
    patients_database,
)
from repro.core import ScenarioConfig, WhisperSystem
from repro.qos import QosMetrics, sequence
from repro.wsdl import bank_loans_wsdl, healthcare_wsdl, insurance_claims_wsdl


def main() -> None:
    print("=== B2B supply chain across three organizations (§1) ===\n")
    system = WhisperSystem(ScenarioConfig(seed=4))

    claims = system.deploy_service(
        insurance_claims_wsdl(),
        [claim_assessment(claims_database()) for _ in range(3)],
        group_name="grp-claims",
    )
    loans = system.deploy_service(
        bank_loans_wsdl(),
        [loan_approval(loans_database()) for _ in range(3)],
        group_name="grp-loans",
    )
    healthcare = system.deploy_service(
        healthcare_wsdl(),
        [patient_record_retrieval(patients_database()) for _ in range(3)],
        group_name="grp-health",
    )
    system.settle(6.0)
    print("deployed partners:")
    for deployed in (claims, loans, healthcare):
        print(f"  {deployed.sws.name:<16} group={deployed.group.name} "
              f"replicas={len(deployed.group.peers)}")

    # --- QoS prediction for the composed process (§2.4 / reference [11]).
    step = lambda t: QosMetrics(time=t, cost=1.0, reliability=0.999)
    predicted = sequence([step(0.005), step(0.004), step(0.003)])
    print(f"\npredicted process QoS (sequence of 3 steps): "
          f"time≈{predicted.time * 1000:.1f}ms "
          f"reliability≈{predicted.reliability:.4f}\n")

    node, client = system.add_client("insurer-portal")
    settlements = []

    def settle_claim(claim_id, patient_id, loan_id):
        started = system.env.now
        record = yield from client.call(
            healthcare.address, healthcare.path, "RetrievePatientRecord",
            {"request": patient_id}, timeout=60.0,
        )
        assessment = yield from client.call(
            claims.address, claims.path, "ProcessClaim",
            {"request": claim_id}, timeout=60.0,
        )
        decision = yield from client.call(
            loans.address, loans.path, "ApproveLoan",
            {"request": loan_id}, timeout=60.0,
        )
        settlements.append({
            "claim": assessment["claimId"],
            "assessment": assessment["assessment"],
            "patient": record["name"],
            "bridge_loan": decision["approved"],
            "elapsed_ms": (system.env.now - started) * 1000,
        })

    def process():
        yield from settle_claim("C00001", "H00001", "L00001")
        yield from settle_claim("C00002", "H00002", "L00002")
        # A partner's operational database goes down mid-stream: the claim
        # group's coordinator can no longer serve...
        coordinator = claims.group.coordinator_peer()
        coordinator.implementation.backend.fail()
        print("!! claims coordinator's database just went down\n")
        yield from settle_claim("C00003", "H00003", "L00003")

    system.env.run(until=node.spawn(process()))

    print(f"{'claim':>7} {'assessment':<10} {'patient':<18} "
          f"{'bridge loan':<11} {'elapsed':>9}")
    print("-" * 62)
    for row in settlements:
        print(f"{row['claim']:>7} {row['assessment']:<10} {row['patient']:<18} "
              f"{str(row['bridge_loan']):<11} {row['elapsed_ms']:>7.1f}ms")

    coordinator = claims.group.coordinator_peer()
    print(
        f"\nthe third settlement still completed: the claims coordinator "
        f"delegated {coordinator.requests_delegated} request(s) to a "
        f"semantically equivalent b-peer (§4.1)."
    )


if __name__ == "__main__":
    main()
