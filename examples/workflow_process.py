#!/usr/bin/env python3
"""A composed B2B workflow with QoS prediction (§1 + §2.4 / ref [11]).

Builds the insurance-settlement process as a *workflow tree* — parallel
record retrieval and claim assessment, then a conditional bridge loan —
predicts its end-to-end QoS with the Cardoso aggregation model, executes
it on live Whisper services, and compares prediction with measurement.

Run:  python examples/workflow_process.py
"""

from __future__ import annotations

from repro.backend import (
    claim_assessment,
    claims_database,
    loan_approval,
    loans_database,
    patient_record_retrieval,
    patients_database,
)
from repro.core import ScenarioConfig, WhisperSystem
from repro.qos import QosMetrics
from repro.workflow import (
    ExclusiveChoice,
    ParallelFlow,
    SequenceFlow,
    ServiceTask,
    WorkflowEngine,
    predict_qos,
)
from repro.wsdl import bank_loans_wsdl, healthcare_wsdl, insurance_claims_wsdl


def main() -> None:
    print("=== A composed B2B workflow over Whisper services ===\n")
    system = WhisperSystem(ScenarioConfig(seed=8))
    claims = system.deploy_service(
        insurance_claims_wsdl(),
        [claim_assessment(claims_database()) for _ in range(2)],
        group_name="wfex-claims",
    )
    loans = system.deploy_service(
        bank_loans_wsdl(),
        [loan_approval(loans_database()) for _ in range(2)],
        group_name="wfex-loans",
    )
    health = system.deploy_service(
        healthcare_wsdl(),
        [patient_record_retrieval(patients_database()) for _ in range(2)],
        group_name="wfex-health",
    )
    system.settle(6.0)

    workflow = SequenceFlow([
        ParallelFlow([
            ServiceTask(
                name="fetch-record",
                address=health.address, path=health.path,
                operation="RetrievePatientRecord",
                input_mapping=lambda ctx: {"request": ctx["patient_id"]},
                output_key="record",
            ),
            ServiceTask(
                name="assess-claim",
                address=claims.address, path=claims.path,
                operation="ProcessClaim",
                input_mapping=lambda ctx: {"request": ctx["claim_id"]},
                output_key="assessment",
            ),
        ]),
        ExclusiveChoice(
            branches=[
                (
                    lambda ctx: ctx["assessment"]["assessment"] in ("approve", "escalate"),
                    0.8,
                    ServiceTask(
                        name="bridge-loan",
                        address=loans.address, path=loans.path,
                        operation="ApproveLoan",
                        input_mapping=lambda ctx: {"request": ctx["loan_id"]},
                        output_key="loan",
                    ),
                ),
            ],
            otherwise=SequenceFlow([
                ServiceTask(
                    name="re-check-record",
                    address=health.address, path=health.path,
                    operation="RetrievePatientRecord",
                    input_mapping=lambda ctx: {"request": ctx["patient_id"]},
                    output_key="record",
                ),
            ]),
        ),
    ])

    # --- §2.4 prediction from per-task QoS estimates.
    per_task = {
        "fetch-record": QosMetrics(time=0.006, cost=0.5, reliability=0.999),
        "assess-claim": QosMetrics(time=0.008, cost=1.0, reliability=0.999),
        "bridge-loan": QosMetrics(time=0.007, cost=2.0, reliability=0.995),
        "re-check-record": QosMetrics(time=0.006, cost=0.5, reliability=0.999),
    }
    predicted = predict_qos(workflow, per_task)
    print("predicted end-to-end QoS:")
    print(f"  time        ≈ {predicted.time * 1000:.1f} ms")
    print(f"  cost        ≈ {predicted.cost:.2f} units")
    print(f"  reliability ≈ {predicted.reliability:.4f}\n")

    # --- execute three instances.
    node = system.network.add_host("workflow-host")
    engine = WorkflowEngine(node)
    print(f"{'claim':>7} {'outcome':<10} {'tasks':<40} {'elapsed':>9}")
    print("-" * 72)
    for index in (1, 4, 10):  # one 'closed' claim, one escalation, one approval
        context = {
            "claim_id": f"C{index:05d}",
            "patient_id": f"H{index:05d}",
            "loan_id": f"L{index:05d}",
        }
        result = engine.run(workflow, context)
        tasks = ",".join(record.task for record in result.records)
        outcome = "ok" if result.succeeded else "FAILED"
        print(f"{context['claim_id']:>7} {outcome:<10} {tasks:<40} "
              f"{result.elapsed * 1000:>7.1f}ms")

    print(
        "\nParallel tasks overlap (elapsed < sum of task times); the choice\n"
        "branch follows the live assessment. Prediction and measurement\n"
        "agree to within transport overheads."
    )


if __name__ == "__main__":
    main()
