"""SOAP endpoints on the server side.

A :class:`SoapServer` mounts *dispatchers* on HTTP paths.  A dispatcher
receives ``(operation, arguments, headers)`` and returns the result value —
either directly or as a generator that performs simulated work first (the
Whisper web service's dispatcher forwards to the SWS-proxy and the P2P
network before returning).  Exceptions become ``<soap:fault>`` responses;
:class:`~repro.soap.fault.SoapFault` passes through with its code intact.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Generator

from ..simnet.node import Node
from .envelope import Envelope, EnvelopeError
from .fault import SoapFault
from .http import HttpRequest, HttpResponse, HttpServer

__all__ = ["SoapServer", "Dispatcher"]

#: (operation, arguments, headers) -> value | generator-returning-value
Dispatcher = Callable[[str, Dict[str, Any], Dict[str, str]], Any]


class SoapServer:
    """SOAP-over-HTTP endpoints for one node."""

    def __init__(self, node: Node, port: int = 80):
        self.node = node
        self.http = HttpServer(node, port=port)
        self._dispatchers: Dict[str, Dispatcher] = {}
        self.calls_handled = 0
        self.faults_returned = 0

    @property
    def port(self) -> int:
        return self.http.port

    def mount(self, path: str, dispatcher: Dispatcher) -> None:
        """Expose ``dispatcher`` at ``path``."""
        self._dispatchers[path] = dispatcher
        self.http.route(path, self._make_handler(dispatcher))

    def _make_handler(self, dispatcher: Dispatcher):
        def handle(request: HttpRequest) -> Generator:
            try:
                envelope = Envelope.from_xml(request.body)
            except EnvelopeError as error:
                fault = SoapFault.client(f"unparseable envelope: {error}")
                return self._fault_response(fault)
            if envelope.kind != "call":
                fault = SoapFault.client(f"expected a call, got {envelope.kind}")
                return self._fault_response(fault)
            return self._invoke(dispatcher, envelope)

        return handle

    def _invoke(self, dispatcher: Dispatcher, envelope: Envelope) -> Generator:
        try:
            outcome = dispatcher(
                envelope.operation, envelope.arguments, envelope.headers
            )
            if inspect.isgenerator(outcome):
                outcome = yield from outcome
        except SoapFault as fault:
            return self._fault_response(fault)
        except Exception as error:  # application bug -> Server fault
            return self._fault_response(
                SoapFault.server(f"{type(error).__name__}: {error}")
            )
        self.calls_handled += 1
        reply = Envelope.result(envelope.operation, outcome)
        return HttpResponse(status=200, body=reply.to_xml())

    def _fault_response(self, fault: SoapFault) -> HttpResponse:
        self.faults_returned += 1
        envelope = Envelope.from_fault(fault)
        return HttpResponse(status=500, body=envelope.to_xml())
