"""SOAP messaging over simulated HTTP.

Implements the client-facing half of Whisper's stack: SOAP 1.1-style
envelopes with ``<soap:fault>`` error reporting (§1), a self-describing
value encoding, an HTTP request/response layer over the simulated LAN, and
client/server endpoints.  Crucially, *system* failures (crashed hosts)
surface as :class:`~repro.soap.http.RequestTimeout`, not faults — the gap
in the Web-service stack that motivates Whisper.
"""

from .client import SoapClient
from .encoding import EncodingError, element_to_value, value_to_element
from .envelope import SOAP_ENV_NS, Envelope, EnvelopeError
from .fault import FaultCode, SoapFault
from .http import HttpRequest, HttpResponse, HttpServer, RequestTimeout, http_request
from .server import SoapServer

__all__ = [
    "EncodingError",
    "Envelope",
    "EnvelopeError",
    "FaultCode",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "RequestTimeout",
    "SOAP_ENV_NS",
    "SoapClient",
    "SoapFault",
    "SoapServer",
    "element_to_value",
    "http_request",
    "value_to_element",
]
