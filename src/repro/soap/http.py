"""Simulated HTTP over the datagram transport.

Enough of HTTP for SOAP-over-HTTP: a request with method/path/body, a
response with status/body, request/response correlation, per-request
server-side handler processes, and client-side timeouts.

A *timeout* here is semantically important: when a host crashes, SOAP
produces no ``<soap:fault>`` — the client just never hears back.  That is
the "system failure" class of §1 that WSDL/SOAP cannot express and that
Whisper masks.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator

from ..simnet.events import AnyOf, Interrupt
from ..simnet.message import Address
from ..simnet.node import Node

__all__ = ["HttpRequest", "HttpResponse", "HttpServer", "RequestTimeout", "http_request"]


class RequestTimeout(Exception):
    """No response arrived in time — the silent system-failure mode of §1."""

    def __init__(self, address: Address, path: str, timeout: float):
        super().__init__(f"no response from {address[0]}:{address[1]}{path} "
                         f"within {timeout}s")
        self.address = address
        self.path = path
        self.timeout = timeout


@dataclass
class HttpRequest:
    method: str
    path: str
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    def size_bytes(self) -> int:
        overhead = 128 + sum(len(k) + len(str(v)) for k, v in self.headers.items())
        return overhead + len(self.body.encode())


@dataclass
class HttpResponse:
    status: int = 200
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def size_bytes(self) -> int:
        overhead = 128 + sum(len(k) + len(str(v)) for k, v in self.headers.items())
        return overhead + len(self.body.encode())


#: A handler takes the request and returns a response — directly or as a
#: generator that yields simulation events before returning the response.
Handler = Callable[[HttpRequest], Any]


class HttpServer:
    """An HTTP listener on one node, dispatching by request path."""

    def __init__(self, node: Node, port: int = 80, category: str = "soap"):
        self.node = node
        self.port = port
        self.category = category
        self._handlers: Dict[str, Handler] = {}
        self._socket = None
        self.requests_served = 0
        self.start()
        node.on_crash(lambda _node: self._teardown())
        node.on_restart(lambda _node: self.start())

    def route(self, path: str, handler: Handler) -> None:
        """Register ``handler`` for requests to ``path``."""
        self._handlers[path] = handler

    def start(self) -> None:
        """(Re)bind the port and start the accept loop."""
        if self._socket is not None and not self._socket.closed:
            return
        self._socket = self.node.transport.bind(self.port)
        self.node.spawn(self._accept_loop(), name=f"http:{self.node.name}:{self.port}")

    def _teardown(self) -> None:
        """Release the port immediately on crash (the accept loop's
        interrupt is delivered asynchronously, too late for a synchronous
        crash+restart sequence)."""
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def _accept_loop(self) -> Generator:
        socket = self._socket
        try:
            while True:
                message = yield socket.recv()
                request = message.payload
                if not isinstance(request, HttpRequest):
                    continue
                self.node.spawn(
                    self._serve(message, request),
                    name=f"http-req:{self.node.name}",
                )
        except Interrupt:
            socket.close()
            if self._socket is socket:
                self._socket = None

    def _serve(self, message, request: HttpRequest) -> Generator:
        handler = self._handlers.get(request.path)
        if handler is None:
            response = HttpResponse(status=404, body=f"no handler for {request.path}")
        else:
            try:
                outcome = handler(request)
                if inspect.isgenerator(outcome):
                    outcome = yield from outcome
                response = outcome
            except Interrupt:
                return  # host crashed mid-request: silence, not a fault
            except Exception as error:  # handler bug -> 500
                response = HttpResponse(status=500, body=f"{type(error).__name__}: {error}")
        if not isinstance(response, HttpResponse):
            response = HttpResponse(status=500, body="handler returned a non-response")
        self.requests_served += 1
        if self._socket is not None and not self._socket.closed:
            self._socket.send(
                message.src,
                payload=response,
                category=self.category,
                size_bytes=response.size_bytes(),
                correlation_id=message.correlation_id or message.msg_id,
            )


def http_request(
    node: Node,
    address: Address,
    request: HttpRequest,
    timeout: float = 5.0,
    category: str = "soap",
) -> Generator:
    """Issue a request and wait for the response (or time out).

    A generator meant for ``yield from`` inside a simulated process.  Binds
    an ephemeral port so concurrent calls from the same node never mix up
    responses.
    """
    env = node.env
    socket = node.transport.bind()
    try:
        socket.send(
            address,
            payload=request,
            category=category,
            size_bytes=request.size_bytes(),
        )
        receive = socket.recv()
        timer = env.timeout(timeout)
        outcome = yield AnyOf(env, [receive, timer])
        if receive in outcome:
            message = outcome[receive]
            response = message.payload
            if not isinstance(response, HttpResponse):
                raise RequestTimeout(address, request.path, timeout)
            return response
        raise RequestTimeout(address, request.path, timeout)
    finally:
        socket.close()
