"""Encoding Python values as XML element trees and back.

SOAP bodies carry structured values.  We use a small self-describing
encoding: every element gets a ``type`` attribute (string, int, float,
bool, null, struct, list) so round-tripping is loss-free without needing a
schema at the decoding side.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import Any

__all__ = ["value_to_element", "element_to_value", "EncodingError"]


class EncodingError(Exception):
    """Raised when a value cannot be encoded or decoded."""


#: Characters XML 1.0 cannot carry (anywhere — text or attributes).
_XML_INVALID = re.compile(
    "[^\x09\x0a\x0d\x20-퟿-�\U00010000-\U0010ffff]"
)


def _check_xml_text(text: str, what: str) -> str:
    """Reject strings XML 1.0 cannot transport (e.g. control characters).

    SOAP is an XML protocol: such strings cannot appear on the wire, so we
    fail loudly at encode time instead of producing an unparseable message.
    """
    match = _XML_INVALID.search(text)
    if match is not None:
        raise EncodingError(
            f"{what} contains an XML-invalid character {match.group()!r} "
            f"at index {match.start()}"
        )
    return text


def value_to_element(tag: str, value: Any) -> ET.Element:
    """Encode ``value`` into an element named ``tag``."""
    element = ET.Element(tag)
    if value is None:
        element.set("type", "null")
    elif isinstance(value, bool):
        element.set("type", "bool")
        element.text = "true" if value else "false"
    elif isinstance(value, int):
        element.set("type", "int")
        element.text = str(value)
    elif isinstance(value, float):
        element.set("type", "float")
        element.text = repr(value)
    elif isinstance(value, str):
        element.set("type", "string")
        element.text = _check_xml_text(value, "string value")
    elif isinstance(value, (list, tuple)):
        element.set("type", "list")
        for entry in value:
            element.append(value_to_element("item", entry))
    elif isinstance(value, dict):
        element.set("type", "struct")
        for key in value:
            if not isinstance(key, str):
                raise EncodingError(f"struct keys must be strings, got {key!r}")
            member = value_to_element("member", value[key])
            member.set("name", _check_xml_text(key, "struct key"))
            element.append(member)
    else:
        raise EncodingError(f"cannot encode value of type {type(value).__name__}")
    return element


def element_to_value(element: ET.Element) -> Any:
    """Decode an element produced by :func:`value_to_element`."""
    kind = element.get("type", "string")
    if kind == "null":
        return None
    if kind == "bool":
        return element.text == "true"
    if kind == "int":
        try:
            return int(element.text or "0")
        except ValueError as error:
            raise EncodingError(f"bad int payload {element.text!r}") from error
    if kind == "float":
        try:
            return float(element.text or "0")
        except ValueError as error:
            raise EncodingError(f"bad float payload {element.text!r}") from error
    if kind == "string":
        return element.text or ""
    if kind == "list":
        return [element_to_value(child) for child in element]
    if kind == "struct":
        result = {}
        for child in element:
            name = child.get("name")
            if name is None:
                raise EncodingError("struct member lacks a name")
            result[name] = element_to_value(child)
        return result
    raise EncodingError(f"unknown encoded type {kind!r}")
