"""SOAP 1.1-style envelopes.

An envelope carries either an operation *call*, an operation *result*, or a
*fault*.  Envelopes serialise to XML; their byte length is used as the
simulated message size, so bigger payloads genuinely cost more simulated
transmission time.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .encoding import element_to_value, value_to_element
from .fault import SoapFault

__all__ = ["Envelope", "EnvelopeError", "SOAP_ENV_NS"]

SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"

_ENVELOPE = f"{{{SOAP_ENV_NS}}}Envelope"
_HEADER = f"{{{SOAP_ENV_NS}}}Header"
_BODY = f"{{{SOAP_ENV_NS}}}Body"
_FAULT = f"{{{SOAP_ENV_NS}}}Fault"


class EnvelopeError(Exception):
    """Raised when an envelope cannot be parsed."""


@dataclass
class Envelope:
    """One SOAP message.

    Exactly one of the following holds:

    * ``kind == "call"``   — ``operation`` and ``arguments`` are set;
    * ``kind == "result"`` — ``operation`` and ``value`` are set;
    * ``kind == "fault"``  — ``fault`` is set.
    """

    kind: str
    operation: Optional[str] = None
    arguments: Dict[str, Any] = field(default_factory=dict)
    value: Any = None
    fault: Optional[SoapFault] = None
    headers: Dict[str, str] = field(default_factory=dict)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def call(
        cls,
        operation: str,
        arguments: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Envelope":
        return cls(
            kind="call",
            operation=operation,
            arguments=dict(arguments or {}),
            headers=dict(headers or {}),
        )

    @classmethod
    def result(cls, operation: str, value: Any) -> "Envelope":
        return cls(kind="result", operation=operation, value=value)

    @classmethod
    def from_fault(cls, fault: SoapFault) -> "Envelope":
        return cls(kind="fault", fault=fault)

    @property
    def is_fault(self) -> bool:
        return self.kind == "fault"

    def raise_if_fault(self) -> None:
        """Re-raise the carried fault, if any."""
        if self.fault is not None:
            raise self.fault

    # -- XML ------------------------------------------------------------------------

    def to_xml(self) -> str:
        ET.register_namespace("soapenv", SOAP_ENV_NS)
        root = ET.Element(_ENVELOPE)
        if self.headers:
            header_el = ET.SubElement(root, _HEADER)
            for name, value in sorted(self.headers.items()):
                entry = ET.SubElement(header_el, "header", {"name": name})
                entry.text = str(value)
        body = ET.SubElement(root, _BODY)

        if self.kind == "call":
            call_el = ET.SubElement(body, "call", {"operation": self.operation or ""})
            for name, value in self.arguments.items():
                argument = value_to_element("argument", value)
                argument.set("name", name)
                call_el.append(argument)
        elif self.kind == "result":
            result_el = ET.SubElement(
                body, "result", {"operation": self.operation or ""}
            )
            result_el.append(value_to_element("return", self.value))
        elif self.kind == "fault":
            fault = self.fault
            fault_el = ET.SubElement(body, _FAULT)
            ET.SubElement(fault_el, "faultcode").text = fault.faultcode
            ET.SubElement(fault_el, "faultstring").text = fault.faultstring
            if fault.faultactor:
                ET.SubElement(fault_el, "faultactor").text = fault.faultactor
            if fault.detail is not None:
                detail_el = ET.SubElement(fault_el, "detail")
                detail_el.append(value_to_element("value", fault.detail))
        else:
            raise EnvelopeError(f"unknown envelope kind {self.kind!r}")
        return ET.tostring(root, encoding="unicode", xml_declaration=True)

    @classmethod
    def from_xml(cls, document: str) -> "Envelope":
        try:
            root = ET.fromstring(document)
        except ET.ParseError as error:
            raise EnvelopeError(f"malformed SOAP XML: {error}") from error
        if root.tag != _ENVELOPE:
            raise EnvelopeError(f"expected soap Envelope, found {root.tag}")

        headers: Dict[str, str] = {}
        header_el = root.find(_HEADER)
        if header_el is not None:
            for entry in header_el.findall("header"):
                name = entry.get("name")
                if name:
                    headers[name] = entry.text or ""

        body = root.find(_BODY)
        if body is None:
            raise EnvelopeError("envelope has no Body")

        fault_el = body.find(_FAULT)
        if fault_el is not None:
            detail_value = None
            detail_el = fault_el.find("detail")
            if detail_el is not None and len(detail_el):
                detail_value = element_to_value(detail_el[0])
            actor_el = fault_el.find("faultactor")
            fault = SoapFault(
                faultcode=fault_el.findtext("faultcode", "Server"),
                faultstring=fault_el.findtext("faultstring", ""),
                detail=detail_value,
                faultactor=actor_el.text if actor_el is not None else None,
            )
            return cls(kind="fault", fault=fault, headers=headers)

        call_el = body.find("call")
        if call_el is not None:
            arguments = {}
            for argument in call_el.findall("argument"):
                name = argument.get("name")
                if name is None:
                    raise EnvelopeError("call argument lacks a name")
                arguments[name] = element_to_value(argument)
            return cls(
                kind="call",
                operation=call_el.get("operation", ""),
                arguments=arguments,
                headers=headers,
            )

        result_el = body.find("result")
        if result_el is not None:
            return_el = result_el.find("return")
            value = element_to_value(return_el) if return_el is not None else None
            return cls(
                kind="result",
                operation=result_el.get("operation", ""),
                value=value,
                headers=headers,
            )

        raise EnvelopeError("envelope body holds neither call, result, nor fault")

    def size_bytes(self) -> int:
        """Encoded size, used as the simulated wire size."""
        return len(self.to_xml().encode())
