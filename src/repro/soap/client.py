"""The SOAP client used by B2B applications.

``call`` is a generator for use inside simulated processes: it serialises
the call envelope, performs the HTTP exchange, and either returns the
result value, raises the server's :class:`SoapFault`, or raises
:class:`RequestTimeout` when the service silently fails (§1's system
failures).  Round trips are time-stamped on the network trace exactly like
the paper's RTT monitor (§5).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, Optional

from ..simnet.message import Address
from ..simnet.node import Node
from .envelope import Envelope, EnvelopeError
from .fault import SoapFault
from .http import HttpRequest, RequestTimeout, http_request

__all__ = ["SoapClient"]

_CALL_IDS = itertools.count(1)


class SoapClient:
    """Issues SOAP calls from one node."""

    def __init__(self, node: Node, default_timeout: float = 5.0):
        self.node = node
        self.default_timeout = default_timeout
        self.calls_sent = 0
        self.faults_received = 0
        self.timeouts = 0

    def call(
        self,
        address: Address,
        path: str,
        operation: str,
        arguments: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
        retries: int = 0,
    ) -> Generator:
        """Invoke ``operation`` at ``address``/``path`` (use with ``yield from``).

        ``retries`` re-issues the request after a timeout (the reliability
        a real HTTP client gets from TCP retransmission; our simulated
        transport is a datagram, so lossy-network scenarios opt in here).
        Each attempt gets the full ``timeout``.
        """
        env = self.node.env
        trace = self.node.network.trace
        effective_timeout = timeout if timeout is not None else self.default_timeout

        envelope = Envelope.call(operation, arguments, headers)
        request = HttpRequest(
            method="POST",
            path=path,
            body=envelope.to_xml(),
            headers={"SOAPAction": operation},
        )

        call_id = next(_CALL_IDS)
        correlation = hash((self.node.name, "soap-call", call_id)) & 0x7FFFFFFF
        trace.stamp_request(correlation, env.now)
        self.calls_sent += 1
        response = None
        for attempt in range(retries + 1):
            try:
                response = yield from http_request(
                    self.node, address, request, timeout=effective_timeout
                )
                break
            except RequestTimeout:
                self.timeouts += 1
                if attempt == retries:
                    raise
        trace.stamp_reply(correlation, env.now)

        try:
            reply = Envelope.from_xml(response.body)
        except EnvelopeError as error:
            raise SoapFault.server(f"unparseable response: {error}") from error
        if reply.is_fault:
            self.faults_received += 1
            reply.raise_if_fault()
        return reply.value
