"""SOAP faults.

The paper's point of departure (§1): "At the SOAP messaging layer, the
``<soap:fault>`` tag is provided to inform a client about errors
encountered while processing an invocation message" — but *system*
failures (a crashed host) produce no fault at all, just silence.  Our
:class:`SoapFault` models the former; the latter shows up as client-side
timeouts, which is exactly the failure mode Whisper exists to mask.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["SoapFault", "FaultCode"]


class FaultCode:
    """Standard SOAP 1.1 fault codes."""

    VERSION_MISMATCH = "VersionMismatch"
    MUST_UNDERSTAND = "MustUnderstand"
    CLIENT = "Client"
    SERVER = "Server"
    #: Dotted subcode (SOAP 1.1 idiom): the server is up but shedding
    #: load; the fault detail carries a retry-after hint in seconds.
    SERVER_BUSY = "Server.Busy"


class SoapFault(Exception):
    """An application-level error carried in a ``<soap:fault>`` element."""

    def __init__(
        self,
        faultcode: str,
        faultstring: str,
        detail: Any = None,
        faultactor: Optional[str] = None,
    ):
        super().__init__(f"{faultcode}: {faultstring}")
        self.faultcode = faultcode
        self.faultstring = faultstring
        self.detail = detail
        self.faultactor = faultactor

    @classmethod
    def client(cls, message: str, detail: Any = None) -> "SoapFault":
        return cls(FaultCode.CLIENT, message, detail)

    @classmethod
    def server(cls, message: str, detail: Any = None) -> "SoapFault":
        return cls(FaultCode.SERVER, message, detail)

    @classmethod
    def server_busy(
        cls, message: str, retry_after: Optional[float] = None
    ) -> "SoapFault":
        """An overload shed: retryable, with an optional ETA hint."""
        detail = {"retry_after": retry_after} if retry_after is not None else None
        return cls(FaultCode.SERVER_BUSY, message, detail)

    @property
    def is_busy(self) -> bool:
        """True for overload sheds (``Server.Busy`` and subcodes of it)."""
        return self.faultcode == FaultCode.SERVER_BUSY or self.faultcode.startswith(
            FaultCode.SERVER_BUSY + "."
        )

    @property
    def retry_after(self) -> Optional[float]:
        """The shed's retry-after hint in seconds, when present."""
        if isinstance(self.detail, dict):
            hint = self.detail.get("retry_after")
            if isinstance(hint, (int, float)):
                return float(hint)
        return None

    def __repr__(self) -> str:
        return f"SoapFault({self.faultcode!r}, {self.faultstring!r})"
