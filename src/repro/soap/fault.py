"""SOAP faults.

The paper's point of departure (§1): "At the SOAP messaging layer, the
``<soap:fault>`` tag is provided to inform a client about errors
encountered while processing an invocation message" — but *system*
failures (a crashed host) produce no fault at all, just silence.  Our
:class:`SoapFault` models the former; the latter shows up as client-side
timeouts, which is exactly the failure mode Whisper exists to mask.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["SoapFault", "FaultCode"]


class FaultCode:
    """Standard SOAP 1.1 fault codes."""

    VERSION_MISMATCH = "VersionMismatch"
    MUST_UNDERSTAND = "MustUnderstand"
    CLIENT = "Client"
    SERVER = "Server"


class SoapFault(Exception):
    """An application-level error carried in a ``<soap:fault>`` element."""

    def __init__(
        self,
        faultcode: str,
        faultstring: str,
        detail: Any = None,
        faultactor: Optional[str] = None,
    ):
        super().__init__(f"{faultcode}: {faultstring}")
        self.faultcode = faultcode
        self.faultstring = faultstring
        self.detail = detail
        self.faultactor = faultactor

    @classmethod
    def client(cls, message: str, detail: Any = None) -> "SoapFault":
        return cls(FaultCode.CLIENT, message, detail)

    @classmethod
    def server(cls, message: str, detail: Any = None) -> "SoapFault":
        return cls(FaultCode.SERVER, message, detail)

    def __repr__(self) -> str:
        return f"SoapFault({self.faultcode!r}, {self.faultstring!r})"
