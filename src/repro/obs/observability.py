"""The observability facade: request traces + metrics behind one switch.

One :class:`Observability` instance lives on the
:class:`~repro.simnet.network.Network` (mirroring how
:class:`~repro.simnet.trace.MessageTrace` is the network-wide message
monitor), so every component — proxies, b-peers, electors — reaches it
via ``node.network.obs`` without extra constructor plumbing.

Disabled (the default for a bare :class:`Network`), every entry point is
a near-zero-cost no-op and nothing is retained, so instrumented hot
paths behave byte-identically to uninstrumented ones.  Enabled (the
default for :class:`~repro.core.system.WhisperSystem`), it keeps a
bounded ring of recent :class:`~repro.obs.span.RequestTrace` trees and
aggregates every phase duration into per-phase latency histograms.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Union

from .metrics import MetricsRegistry
from .span import NULL_TRACE, PHASES, NullRequestTrace, RequestTrace

__all__ = ["Observability"]


class Observability:
    """Request tracing and metrics for one simulated deployment.

    ``sample_rate`` makes span tracing *opt-in per request*: at 1.0 (the
    default) every request gets a full span tree, exactly as before; at
    ``r < 1`` a deterministic systematic sampler traces every ``1/r``-th
    request and the rest pay only two counter increments.  Sampled
    request durations additionally land in a fixed-capacity
    :class:`~repro.obs.metrics.RingBuffer` (``request.duration.recent``),
    so recent-tail reporting needs no per-request allocation.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_traces: int = 512,
        sample_rate: float = 1.0,
        ring_capacity: int = 1024,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate {sample_rate} outside [0, 1]")
        self.enabled = enabled
        self.sample_rate = sample_rate
        self.ring_capacity = ring_capacity
        self.metrics = MetricsRegistry(enabled=enabled)
        #: Recent completed-or-in-flight request traces, oldest evicted.
        self.traces: Deque[RequestTrace] = deque(maxlen=max_traces)
        #: Systematic-sampling accumulator: deterministic (no RNG), and
        #: spreads sampled requests evenly instead of in bursts.
        self._sample_acc = 1.0 if sample_rate > 0 else 0.0
        #: Cached phase-histogram handles — the hot fold path skips the
        #: per-observation f-string + registry lookup.
        self._phase_hists: Dict[str, Any] = {}
        #: Reused per-request phase accumulator (cleared, never rebuilt).
        self._phase_accum: Dict[str, float] = {}

    # -- request lifecycle ------------------------------------------------------

    def request_trace(
        self, operation: str, request_id: int, now: float
    ) -> Union[RequestTrace, NullRequestTrace]:
        """Open a trace for one proxy invocation.

        Returns the null trace when disabled, and for requests the
        sampler skips — those still count toward the request counters at
        :meth:`finish_request`, they just carry no span tree.
        """
        if not self.enabled:
            return NULL_TRACE
        if self.sample_rate < 1.0:
            self._sample_acc += self.sample_rate
            if self._sample_acc < 1.0:
                return NULL_TRACE
            self._sample_acc -= 1.0
        trace = RequestTrace(operation, request_id, now)
        self.traces.append(trace)
        return trace

    def finish_request(
        self,
        trace: Union[RequestTrace, NullRequestTrace],
        now: float,
        status: str = "ok",
    ) -> None:
        """Close ``trace`` and fold its phase durations into the metrics.

        Unsampled requests (null trace while enabled) still increment the
        request counters so throughput accounting stays exact; only the
        span/latency detail is sampled.
        """
        if not self.enabled:
            return
        self.metrics.inc("requests.total")
        self.metrics.inc("requests.ok" if status == "ok" else "requests.failed")
        if trace is NULL_TRACE or isinstance(trace, NullRequestTrace):
            return
        trace.finish(now, status=status)
        duration = trace.duration
        if duration is not None:
            self.metrics.observe("request.duration", duration)
            self.metrics.record(
                "request.duration.recent", duration, self.ring_capacity
            )
        accum = self._phase_accum
        accum.clear()
        root = trace.root
        for span in root.walk():
            if span is root or span.end is None:
                continue
            accum[span.name] = accum.get(span.name, 0.0) + (span.end - span.start)
        for phase, seconds in accum.items():
            histogram = self._phase_hists.get(phase)
            if histogram is None:
                histogram = self._phase_hists[phase] = self.metrics.histogram(
                    f"phase.{phase}"
                )
            histogram.observe(seconds)

    def observe_phase(self, phase: str, seconds: float) -> None:
        """Record a phase duration outside any request trace (e.g. ``elect``)."""
        if not self.enabled:
            return
        self.metrics.observe(f"phase.{phase}", seconds)

    # -- aggregation -------------------------------------------------------------

    def phase_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-phase latency statistics, always covering every canonical phase.

        Phases with no samples report ``count == 0`` (all other fields
        ``None``) so reports and tests can rely on the keys being present.
        """
        empty = {
            "count": 0, "mean": None, "p50": None, "p95": None,
            "p99": None, "min": None, "max": None,
        }
        summary: Dict[str, Dict[str, Any]] = {}
        for phase in PHASES:
            histogram = self.metrics.histograms.get(f"phase.{phase}")
            summary[phase] = histogram.snapshot() if histogram else dict(empty)
        # Ad-hoc phases recorded beyond the canonical set still show up.
        for name, histogram in sorted(self.metrics.histograms.items()):
            phase = name[len("phase."):]
            if name.startswith("phase.") and phase not in summary:
                summary[phase] = histogram.snapshot()
        return summary

    # -- export -------------------------------------------------------------------

    def recent_traces(self, limit: Optional[int] = None) -> List[RequestTrace]:
        traces = list(self.traces)
        if limit is not None:
            traces = traces[-limit:]
        return traces

    def traces_to_json(
        self, limit: Optional[int] = None, indent: Optional[int] = None
    ) -> str:
        payload = [trace.to_dict() for trace in self.recent_traces(limit)]
        return json.dumps(payload, indent=indent)

    def phases_to_csv(self) -> str:
        """Phase breakdown as CSV, consumable by offline plotting."""
        lines = ["phase,count,mean,p50,p95,p99,min,max"]
        for phase, stats in self.phase_summary().items():
            cells = [phase] + [
                "" if stats[key] is None else repr(stats[key])
                for key in ("count", "mean", "p50", "p95", "p99", "min", "max")
            ]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def to_json(self, indent: Optional[int] = None) -> str:
        """Phases + full metrics registry as one JSON document."""
        payload = {
            "phases": self.phase_summary(),
            "metrics": json.loads(self.metrics.to_json()),
        }
        return json.dumps(payload, indent=indent)

    def reset(self) -> None:
        """Drop all traces and metrics (e.g. after a warm-up phase)."""
        self.traces.clear()
        self.metrics.reset()
        self._phase_hists.clear()
