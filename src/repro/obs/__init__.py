"""Request-scoped observability: phase spans, latency histograms, export.

The paper's evaluation (§5, Figure 4) is entirely observational —
message counts, mean RTT, and worst cases attributed to specific request
phases.  This package provides the machinery to make those attributions
first-class: :class:`Span`/:class:`RequestTrace` record one request's
phase timeline on the simulated clock, :class:`MetricsRegistry`
aggregates counters and fixed-bucket latency histograms, and
:class:`Observability` ties both together behind a single
enabled/disabled switch (disabled = near-zero cost, nothing retained).
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    RingBuffer,
)
from .observability import Observability
from .span import (
    NULL_SPAN,
    NULL_TRACE,
    PHASES,
    NullRequestTrace,
    NullSpan,
    RequestTrace,
    Span,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACE",
    "NullRequestTrace",
    "NullSpan",
    "Observability",
    "PHASES",
    "RequestTrace",
    "RingBuffer",
    "Span",
]
