"""A lightweight metrics registry: counters and fixed-bucket histograms.

This is the aggregation half of the observability layer: spans measure
*one* request; the registry accumulates *all* of them (plus the message
counters :class:`~repro.simnet.trace.MessageTrace` and the proxy/election
stats feed in) into a form benchmarks can report — "p99 RTT is
bind-phase dominated" instead of a single number.

Histograms use fixed upper-bound buckets (Prometheus-style) so that
recording is O(log buckets) with zero allocation, and quantiles are
estimated by linear interpolation inside the owning bucket.  A disabled
registry turns :meth:`MetricsRegistry.inc` / :meth:`MetricsRegistry.observe`
into near-zero-cost no-ops.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Histogram",
    "RingBuffer",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Upper bounds (seconds) spanning the paper's observed range: sub-ms
#: failure-free RTTs (§5: "approximately 0.5 milliseconds") up to the
#: multi-second worst cases after a coordinator crash.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """A fixed-bucket latency histogram (upper-bound buckets + overflow)."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bounds must be sorted and non-empty")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        #: One slot per bound plus the overflow (> last bound) slot.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample (seconds)."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    # -- statistics ------------------------------------------------------------

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0 ≤ q ≤ 1) from the buckets.

        Linear interpolation inside the owning bucket; the overflow bucket
        reports the observed maximum (no upper bound to interpolate to).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index == len(self.bounds):
                    return self.max
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                # The interpolated estimate can overshoot the observed
                # range when samples cluster at a bucket's edge; clamp it.
                return max(self.min, min(self.max, estimate))
            cumulative += bucket_count
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        """Headline statistics for reporting."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "min": self.min,
            "max": self.max,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full export, including per-bucket counts."""
        data = self.snapshot()
        data["buckets"] = [
            {"le": bound, "count": count}
            for bound, count in zip(self.bounds, self.bucket_counts)
        ]
        data["buckets"].append({"le": None, "count": self.bucket_counts[-1]})
        return data

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class RingBuffer:
    """A fixed-capacity ring of recent samples: bounded memory, no churn.

    Recording overwrites the oldest slot of a preallocated list — no
    allocation, no dict growth — so it is safe to leave on in hot loops.
    Statistics (:meth:`snapshot`) are *exact* over the retained window
    (unlike :class:`Histogram`'s bucket interpolation) at the cost of a
    sort at snapshot time, which is a reporting-path operation.
    """

    __slots__ = ("name", "capacity", "_slots", "_index", "count", "total")

    def __init__(self, name: str, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError(f"ring {name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._slots: List[float] = [0.0] * capacity
        self._index = 0
        #: Lifetime sample count (window holds the last ``capacity``).
        self.count = 0
        #: Lifetime sum (mean over everything ever recorded).
        self.total = 0.0

    def record(self, value: float) -> None:
        """Record one sample, overwriting the oldest when full."""
        self._slots[self._index] = value
        self._index += 1
        if self._index == self.capacity:
            self._index = 0
        self.count += 1
        self.total += value

    def window(self) -> List[float]:
        """The retained samples, oldest first."""
        if self.count >= self.capacity:
            return self._slots[self._index:] + self._slots[: self._index]
        return self._slots[: self._index]

    def snapshot(self) -> Dict[str, Any]:
        """Exact statistics over the retained window."""
        window = sorted(self.window())
        if not window:
            return {
                "count": 0, "window": 0, "mean": None, "p50": None,
                "p95": None, "p99": None, "min": None, "max": None,
            }

        def pick(q: float) -> float:
            return window[min(len(window) - 1, int(q * len(window)))]

        return {
            "count": self.count,
            "window": len(window),
            "mean": sum(window) / len(window),
            "p50": pick(0.50),
            "p95": pick(0.95),
            "p99": pick(0.99),
            "min": window[0],
            "max": window[-1],
        }

    def __repr__(self) -> str:
        return f"<RingBuffer {self.name} n={self.count}/{self.capacity}>"


class MetricsRegistry:
    """Named counters, histograms, and rings behind one enable switch."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.rings: Dict[str, RingBuffer] = {}

    # -- recording ----------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.counter(name).inc(amount)

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        """Record one histogram sample (no-op when disabled)."""
        if not self.enabled:
            return
        self.histogram(name, bounds).observe(value)

    def ring(self, name: str, capacity: int = 1024) -> RingBuffer:
        ring = self.rings.get(name)
        if ring is None:
            ring = self.rings[name] = RingBuffer(name, capacity)
        return ring

    def record(self, name: str, value: float, capacity: int = 1024) -> None:
        """Record one ring-buffer sample (no-op when disabled)."""
        if not self.enabled:
            return
        self.ring(name, capacity).record(value)

    # -- export -----------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        snap = {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self.histograms.items())
            },
        }
        if self.rings:
            snap["rings"] = {
                name: r.snapshot() for name, r in sorted(self.rings.items())
            }
        return snap

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }
        if self.rings:
            payload["rings"] = {
                name: r.snapshot() for name, r in sorted(self.rings.items())
            }
        return json.dumps(payload, indent=indent)

    def counters_to_csv(self) -> str:
        lines = ["name,value"]
        lines.extend(f"{name},{c.value}" for name, c in sorted(self.counters.items()))
        return "\n".join(lines) + "\n"

    def histograms_to_csv(self) -> str:
        lines = ["name,count,mean,p50,p95,p99,min,max"]
        for name, histogram in sorted(self.histograms.items()):
            stats = histogram.snapshot()
            cells = [name] + [
                "" if stats[key] is None else repr(stats[key])
                for key in ("count", "mean", "p50", "p95", "p99", "min", "max")
            ]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every counter, histogram, and ring (e.g. after warm-up)."""
        self.counters.clear()
        self.histograms.clear()
        self.rings.clear()
