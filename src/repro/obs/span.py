"""Request-scoped tracing: spans on the simulated clock.

The paper's §5 evaluation attributes multi-second worst-case RTTs to
*specific phases* of a request — remote discovery, coordinator re-bind
after a crash — not to the request as a whole.  A :class:`Span` is one
timed phase (``discover``, ``bind``, ``invoke``, ``recover``, ``elect``,
``execute``); a :class:`RequestTrace` is the tree of spans for one
proxy invocation, rooted at a synthetic ``request`` span.

Everything is stamped with the *simulation* clock (callers pass
``env.now``), so traces are deterministic and comparable across runs.
When observability is disabled the null objects (:data:`NULL_SPAN`,
:data:`NULL_TRACE`) make every tracing call a near-zero-cost no-op.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "PHASES",
    "Span",
    "RequestTrace",
    "NullSpan",
    "NullRequestTrace",
    "NULL_SPAN",
    "NULL_TRACE",
]

#: The canonical phase names of one Whisper request's lifecycle.
PHASES = ("discover", "bind", "invoke", "recover", "elect", "execute")


class Span:
    """One timed phase of a request (or of group maintenance).

    A span starts when created and ends when :meth:`finish` is called;
    both instants are simulated time.  Spans nest: :meth:`child` opens a
    sub-span, so e.g. a ``recover`` span can contain the ``bind`` and
    ``invoke`` retries it covers.
    """

    __slots__ = ("name", "start", "end", "parent", "tags", "children")

    def __init__(
        self,
        name: str,
        start: float,
        parent: Optional["Span"] = None,
        tags: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.children: List["Span"] = []

    # -- lifecycle ------------------------------------------------------------

    def child(self, name: str, now: float, **tags: Any) -> "Span":
        """Open a nested span starting at ``now``."""
        span = Span(name, now, parent=self, tags=tags or None)
        self.children.append(span)
        return span

    def finish(self, now: float, **tags: Any) -> "Span":
        """Close the span at ``now`` (idempotent); merge ``tags`` in."""
        if self.end is None:
            self.end = now
        if tags:
            self.tags.update(tags)
        return self

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        """Elapsed simulated seconds, or ``None`` while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    # -- traversal / export ------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.tags:
            data["tags"] = dict(self.tags)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    def format(self, indent: int = 0) -> str:
        """A one-span-per-line tree rendering (durations in ms)."""
        if self.duration is None:
            timing = f"@{self.start:.6f}s (open)"
        else:
            timing = f"@{self.start:.6f}s {self.duration * 1000:.3f}ms"
        tags = ""
        if self.tags:
            tags = " " + " ".join(f"{k}={v}" for k, v in sorted(self.tags.items()))
        lines = [f"{'  ' * indent}{self.name} {timing}{tags}"]
        lines.extend(child.format(indent + 1) for child in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = f"{self.duration * 1000:.3f}ms" if self.finished else "open"
        return f"<Span {self.name} {state}>"


class RequestTrace:
    """The span tree of one proxy invocation.

    The root span is named ``request`` and tagged with the operation; the
    proxy opens phase spans under it via :meth:`begin`.  ``recover`` spans
    may *overlap* sibling ``bind``/``invoke`` spans: recovery is defined as
    the interval from the first failure signal to request completion
    (matching ``ProxyStats.failover_durations``), during which re-bind and
    retry phases keep their own spans.
    """

    __slots__ = ("operation", "request_id", "root", "status")

    def __init__(self, operation: str, request_id: int, now: float):
        self.operation = operation
        self.request_id = request_id
        self.root = Span(
            "request", now, tags={"operation": operation, "request_id": request_id}
        )
        self.status: Optional[str] = None

    # -- recording -----------------------------------------------------------

    def begin(
        self, phase: str, now: float, parent: Optional[Span] = None, **tags: Any
    ) -> Span:
        """Open a phase span under ``parent`` (default: the root)."""
        return (parent or self.root).child(phase, now, **tags)

    def finish(self, now: float, status: str = "ok") -> None:
        """Close the trace: force-close any open span, stamp the outcome."""
        for span in self.root.walk():
            if not span.finished:
                span.finish(now)
        self.status = status
        self.root.tags["status"] = status

    @property
    def done(self) -> bool:
        return self.root.finished

    @property
    def duration(self) -> Optional[float]:
        return self.root.duration

    # -- aggregation / export -----------------------------------------------------

    def spans(self) -> List[Span]:
        """Every span below the root, in depth-first order."""
        return [span for span in self.root.walk() if span is not self.root]

    def phase_durations(self) -> Dict[str, float]:
        """Total finished-span seconds per phase name (root excluded)."""
        totals: Dict[str, float] = {}
        for span in self.spans():
            if span.duration is not None:
                totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def to_dict(self) -> Dict[str, Any]:
        return {
            "operation": self.operation,
            "request_id": self.request_id,
            "status": self.status,
            "root": self.root.to_dict(),
        }

    def format(self) -> str:
        return self.root.format()

    def __repr__(self) -> str:
        return (
            f"<RequestTrace {self.operation}#{self.request_id} "
            f"{self.status or 'in-flight'}>"
        )


class NullSpan:
    """No-op stand-in for :class:`Span` when observability is disabled.

    The class attributes are shared by every disabled call site through
    the :data:`NULL_SPAN` singleton, so they must be *immutable*: a
    read-only mapping and a tuple.  An accidental write through the
    singleton (``span.tags["k"] = v`` on a disabled path) raises instead
    of silently polluting every other disabled call site.
    """

    __slots__ = ()

    name = "null"
    start = 0.0
    end: Optional[float] = 0.0
    parent = None
    tags: Mapping[str, Any] = MappingProxyType({})
    children: Tuple[Span, ...] = ()
    finished = True
    duration: Optional[float] = 0.0

    def child(self, name: str, now: float, **tags: Any) -> "NullSpan":
        return self

    def finish(self, now: float, **tags: Any) -> "NullSpan":
        return self

    def walk(self):
        return iter(())

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def format(self, indent: int = 0) -> str:
        return ""


class NullRequestTrace:
    """No-op stand-in for :class:`RequestTrace` when disabled."""

    __slots__ = ()

    operation = ""
    request_id = 0
    status: Optional[str] = None
    done = True
    duration: Optional[float] = 0.0

    def begin(self, phase: str, now: float, parent=None, **tags: Any) -> NullSpan:
        return NULL_SPAN

    def finish(self, now: float, status: str = "ok") -> None:
        return None

    def spans(self) -> List[Span]:
        return []

    def phase_durations(self) -> Dict[str, float]:
        return {}

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def format(self) -> str:
        return ""


#: Shared singletons: every disabled code path funnels through these, so
#: tracing a request costs one attribute lookup and a method call.
NULL_SPAN = NullSpan()
NULL_TRACE = NullRequestTrace()
