"""Deterministic synthetic datasets for the paper's domains.

The original testbed queried a real student-records database we do not
have; these generators produce the synthetic equivalent (DESIGN.md's
substitution table): seeded, reproducible records for students (§3's
running scenario), insurance claims, bank loans, and patients (§1).
"""

from __future__ import annotations

import random

from .store import Database

__all__ = [
    "student_database",
    "claims_database",
    "loans_database",
    "patients_database",
]

_FIRST_NAMES = [
    "Ana", "Bruno", "Carla", "Diogo", "Elsa", "Fábio", "Graça", "Hugo",
    "Inês", "João", "Katia", "Luís", "Marta", "Nuno", "Olga", "Pedro",
    "Rita", "Sérgio", "Teresa", "Vasco",
]
_LAST_NAMES = [
    "Silva", "Santos", "Ferreira", "Pereira", "Oliveira", "Costa",
    "Rodrigues", "Martins", "Jesus", "Sousa", "Fernandes", "Gonçalves",
]
_DEGREES = ["Mathematics", "Engineering", "Informatics", "Biology", "Economics"]
_COURSES = ["M101", "E204", "I310", "B120", "EC210", "M202", "I405"]


def student_database(count: int = 200, seed: int = 7) -> Database:
    """Student records keyed by student ID (the §3 scenario's data)."""
    rng = random.Random(seed)
    database = Database("students-operational")
    table = database.create_table("students", primary_key="student_id")
    for index in range(count):
        student_id = f"S{index + 1:05d}"
        table.insert(
            {
                "student_id": student_id,
                "name": f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}",
                "degree": rng.choice(_DEGREES),
                "email": f"{student_id.lower()}@uma.pt",
                "enrolled_courses": sorted(
                    rng.sample(_COURSES, k=rng.randint(1, 4))
                ),
                "year": rng.randint(1, 5),
            }
        )
    return database


def claims_database(count: int = 150, seed: int = 11) -> Database:
    """Insurance claims keyed by claim ID (§1's first domain)."""
    rng = random.Random(seed)
    database = Database("claims-operational")
    table = database.create_table("claims", primary_key="claim_id")
    statuses = ["filed", "under-assessment", "approved", "rejected", "settled"]
    for index in range(count):
        claim_id = f"C{index + 1:05d}"
        table.insert(
            {
                "claim_id": claim_id,
                "policy_number": f"P{rng.randint(1, 40):04d}",
                "amount": round(rng.uniform(100.0, 25000.0), 2),
                "status": rng.choice(statuses),
                "description": f"Claim {claim_id} for policy damage",
            }
        )
    return database


def loans_database(count: int = 120, seed: int = 13) -> Database:
    """Loan applications keyed by loan ID (§1's second domain)."""
    rng = random.Random(seed)
    database = Database("loans-operational")
    table = database.create_table("loans", primary_key="loan_id")
    for index in range(count):
        loan_id = f"L{index + 1:05d}"
        amount = round(rng.uniform(1000.0, 300000.0), 2)
        score = rng.randint(300, 850)
        table.insert(
            {
                "loan_id": loan_id,
                "customer_id": f"K{rng.randint(1, 60):04d}",
                "amount": amount,
                "credit_score": score,
                "approved": score >= 620 and amount < 250000.0,
            }
        )
    return database


def patients_database(count: int = 100, seed: int = 17) -> Database:
    """Patient records keyed by patient ID (§1's third domain)."""
    rng = random.Random(seed)
    database = Database("patients-operational")
    table = database.create_table("patients", primary_key="patient_id")
    conditions = ["hypertension", "diabetes", "asthma", "fracture", "allergy"]
    for index in range(count):
        patient_id = f"H{index + 1:05d}"
        table.insert(
            {
                "patient_id": patient_id,
                "name": f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}",
                "conditions": sorted(rng.sample(conditions, k=rng.randint(1, 3))),
                "next_treatment": f"2026-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
            }
        )
    return database
