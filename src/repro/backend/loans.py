"""The loan-solvency pipeline: backends for the saga benchmark.

Three services mirror the classic CRUD → business-logic → orchestration
tiering of a B2B loan process (ROADMAP item 4):

* **LoanDesk** (CRUD) — ``RegisterLoan`` / ``CancelLoan`` over a loan
  applications table;
* **SolvencyEngine** (business logic) — ``ReserveFunds`` /
  ``ReleaseFunds`` against per-applicant credit limits; an insolvent
  applicant *fails the forward operation*, which is the saga's designed
  compensation trigger;
* **LoanBooking** (orchestration) — ``BookLoan`` / ``UnbookLoan``
  finalising the approved loan.

Compensation handlers are deliberately **tolerant of an absent forward
effect**: a saga may compensate an in-doubt step whose forward call
never applied, and in that case the handler returns without touching
the store — no backend write, hence no ``effect_log`` entry, so the
atomicity audit never sees a phantom compensation.  When the forward
effect *is* present, the compensation performs exactly one status
write, which (under its logged idempotency key) the audit pairs with
the forward effect.
"""

from __future__ import annotations

from typing import Any, Dict

from .services import ServiceImplementation, _require
from .store import Database

__all__ = [
    "loan_desk_database",
    "solvency_database",
    "loan_booking_database",
    "register_loan",
    "cancel_loan",
    "reserve_funds",
    "release_funds",
    "book_loan",
    "unbook_loan",
]

#: Per-applicant credit limit tiers, cycled over applicant indices.
#: ``amount > limit`` fails ``ReserveFunds`` — applicants on the lowest
#: tier are the benchmark's deterministic insolvency cases.
_CREDIT_TIERS = (5_000.0, 25_000.0, 50_000.0, 100_000.0)


def loan_desk_database() -> Database:
    """The CRUD tier's store: one table of loan applications."""
    database = Database("loan-desk")
    database.create_table("loan_applications", primary_key="loan_id")
    return database


def solvency_database(applicants: int = 32) -> Database:
    """The solvency tier's store: accounts with credit limits + reservations."""
    database = Database("solvency")
    accounts = database.create_table("accounts", primary_key="applicant_id")
    database.create_table("reservations", primary_key="loan_id")
    for index in range(applicants):
        accounts.insert(
            {
                "applicant_id": f"APP-{index:04d}",
                "credit_limit": _CREDIT_TIERS[index % len(_CREDIT_TIERS)],
                "reserved": 0.0,
            }
        )
    return database


def loan_booking_database() -> Database:
    """The orchestration tier's store: finalised bookings."""
    database = Database("loan-booking")
    database.create_table("bookings", primary_key="loan_id")
    return database


# -- LoanDesk (CRUD) ---------------------------------------------------------------------


def register_loan(database: Database) -> ServiceImplementation:
    """Open a loan application (``b2b:RegisterLoan``)."""

    def handler(arguments: Dict[str, Any]) -> Any:
        loan_id = _require(arguments, "loanId")
        applicant = _require(arguments, "applicant")
        amount = float(_require(arguments, "amount"))
        database.write(
            "loan_applications",
            {
                "loan_id": loan_id,
                "applicant": applicant,
                "amount": amount,
                "status": "registered",
            },
        )
        return {"loanId": loan_id, "status": "registered"}

    return ServiceImplementation(
        name="loan-desk/register",
        handler=handler,
        backend=database,
        service_time=0.003,
        mutating=True,
    )


def cancel_loan(database: Database) -> ServiceImplementation:
    """Compensate ``RegisterLoan``: mark the application cancelled.

    A no-op (no write, no effect entry) when the application was never
    registered or is already cancelled — safe to run in doubt.
    """

    def handler(arguments: Dict[str, Any]) -> Any:
        loan_id = _require(arguments, "loanId")
        table = database.table("loan_applications")
        if not table.contains(loan_id):
            return {"loanId": loan_id, "status": "absent"}
        if table.get(loan_id)["status"] == "cancelled":
            return {"loanId": loan_id, "status": "cancelled"}
        database.update("loan_applications", loan_id, {"status": "cancelled"})
        return {"loanId": loan_id, "status": "cancelled"}

    return ServiceImplementation(
        name="loan-desk/cancel",
        handler=handler,
        backend=database,
        service_time=0.003,
        mutating=True,
    )


# -- SolvencyEngine (business logic) -----------------------------------------------------


def reserve_funds(database: Database) -> ServiceImplementation:
    """Reserve ``amount`` against the applicant's credit limit.

    Raises (→ SOAP fault) when the applicant is unknown or the amount
    exceeds the remaining limit — the saga's business-level abort.
    """

    def handler(arguments: Dict[str, Any]) -> Any:
        loan_id = _require(arguments, "loanId")
        applicant = _require(arguments, "applicant")
        amount = float(_require(arguments, "amount"))
        account = database.read("accounts", applicant)
        available = account["credit_limit"] - account["reserved"]
        if amount > available:
            raise ValueError(
                f"applicant {applicant} is insolvent: requested {amount:.0f}, "
                f"available {available:.0f}"
            )
        database.update(
            "accounts", applicant, {"reserved": account["reserved"] + amount}
        )
        database.write(
            "reservations",
            {
                "loan_id": loan_id,
                "applicant": applicant,
                "amount": amount,
                "status": "reserved",
            },
        )
        return {"loanId": loan_id, "reserved": amount, "status": "reserved"}

    return ServiceImplementation(
        name="solvency/reserve",
        handler=handler,
        backend=database,
        service_time=0.004,
        mutating=True,
    )


def release_funds(database: Database) -> ServiceImplementation:
    """Compensate ``ReserveFunds``: return the reserved amount.

    A no-op when no active reservation exists for the loan (forward
    never applied, or already released).
    """

    def handler(arguments: Dict[str, Any]) -> Any:
        loan_id = _require(arguments, "loanId")
        reservations = database.table("reservations")
        if not reservations.contains(loan_id):
            return {"loanId": loan_id, "status": "absent"}
        reservation = reservations.get(loan_id)
        if reservation["status"] == "released":
            return {"loanId": loan_id, "status": "released"}
        account = database.read("accounts", reservation["applicant"])
        database.update(
            "accounts",
            reservation["applicant"],
            {"reserved": max(0.0, account["reserved"] - reservation["amount"])},
        )
        database.update("reservations", loan_id, {"status": "released"})
        return {"loanId": loan_id, "status": "released"}

    return ServiceImplementation(
        name="solvency/release",
        handler=handler,
        backend=database,
        service_time=0.004,
        mutating=True,
    )


# -- LoanBooking (orchestration) ---------------------------------------------------------


def book_loan(database: Database) -> ServiceImplementation:
    """Finalise the loan (``b2b:BookLoan``)."""

    def handler(arguments: Dict[str, Any]) -> Any:
        loan_id = _require(arguments, "loanId")
        amount = float(_require(arguments, "amount"))
        database.write(
            "bookings",
            {"loan_id": loan_id, "amount": amount, "status": "booked"},
        )
        return {"loanId": loan_id, "status": "booked"}

    return ServiceImplementation(
        name="booking/book",
        handler=handler,
        backend=database,
        service_time=0.003,
        mutating=True,
    )


def unbook_loan(database: Database) -> ServiceImplementation:
    """Compensate ``BookLoan``: void the booking (no-op when absent)."""

    def handler(arguments: Dict[str, Any]) -> Any:
        loan_id = _require(arguments, "loanId")
        table = database.table("bookings")
        if not table.contains(loan_id):
            return {"loanId": loan_id, "status": "absent"}
        if table.get(loan_id)["status"] == "voided":
            return {"loanId": loan_id, "status": "voided"}
        database.update("bookings", loan_id, {"status": "voided"})
        return {"loanId": loan_id, "status": "voided"}

    return ServiceImplementation(
        name="booking/unbook",
        handler=handler,
        backend=database,
        service_time=0.003,
        mutating=True,
    )
