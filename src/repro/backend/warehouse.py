"""The data warehouse: a differently-shaped replica of operational data.

§4.1's failover scenario: "In response to a Web service request, a peer
accesses student information from an operational database ... If the
operational database is unavailable, a semantically equivalent peer can
automatically and transparently handle the service request by retrieving
the same information from a data warehouse."

The warehouse stores the same facts in a star-schema-flavoured layout
(dimension attributes flattened, measures precomputed), so the b-peer that
serves from it genuinely implements the functionality "in a different
way" (§4.1) while remaining semantically equivalent.
"""

from __future__ import annotations

from typing import Any, Dict

from .store import Database, RecordNotFound

__all__ = ["build_warehouse", "WAREHOUSE_TABLE_PREFIX"]

WAREHOUSE_TABLE_PREFIX = "dw_"


def build_warehouse(operational: Database) -> Database:
    """ETL: snapshot an operational database into warehouse layout.

    Each operational table becomes ``dw_<table>`` with denormalised rows:
    keys prefixed with ``dim_``, lists flattened to pipe-joined strings,
    and a row-level ``fact_source`` marker.  The transformation is loss-
    free for the fields service implementations need.
    """
    warehouse = Database(operational.name.replace("operational", "warehouse"))
    for table_name in list(operational._tables):  # snapshot, read-only use
        source = operational._tables[table_name]
        target = warehouse.create_table(
            WAREHOUSE_TABLE_PREFIX + table_name,
            primary_key="dim_" + source.primary_key,
        )
        for row in source:
            target.insert(_to_warehouse_row(row, operational.name))
    return warehouse


def _to_warehouse_row(row: Dict[str, Any], source_name: str) -> Dict[str, Any]:
    transformed: Dict[str, Any] = {"fact_source": source_name}
    for key, value in row.items():
        if isinstance(value, list):
            transformed["lst_" + key] = "|".join(str(item) for item in value)
        else:
            transformed["dim_" + key] = value
    return transformed


def warehouse_lookup(
    warehouse: Database, table_name: str, key: Any
) -> Dict[str, Any]:
    """Read one warehouse row and restore the operational field shape.

    Raises :class:`RecordNotFound` / ``BackendUnavailable`` like a direct
    operational read would.
    """
    row = warehouse.read(WAREHOUSE_TABLE_PREFIX + table_name, key)
    restored: Dict[str, Any] = {}
    for field, value in row.items():
        if field == "fact_source":
            continue
        if field.startswith("lst_"):
            restored[field[len("lst_"):]] = value.split("|") if value else []
        elif field.startswith("dim_"):
            restored[field[len("dim_"):]] = value
        else:
            restored[field] = value
    return restored
