"""In-memory operational data stores.

B-peers "implement a specific functionality, such as accessing a database
to retrieve students data" (§4.2).  This module provides that database: a
keyed table store with simple queries and — importantly — an availability
switch, because the paper's motivating failover is an *unavailable
operational database* (§4.1) whose requests a semantically equivalent peer
then serves from a data warehouse.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Iterator, List, Tuple

__all__ = ["Table", "Database", "BackendUnavailable", "RecordNotFound"]


class BackendUnavailable(Exception):
    """The backing store is down (injected failure)."""


class RecordNotFound(Exception):
    """No record with the requested key."""


class Table:
    """One keyed table."""

    def __init__(self, name: str, primary_key: str):
        self.name = name
        self.primary_key = primary_key
        self._rows: Dict[Any, Dict[str, Any]] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(list(self._rows.values()))

    def insert(self, row: Dict[str, Any]) -> None:
        """Insert or replace a row (keyed by its primary-key field)."""
        if self.primary_key not in row:
            raise ValueError(
                f"row lacks primary key {self.primary_key!r}: {sorted(row)}"
            )
        self._rows[row[self.primary_key]] = dict(row)

    def get(self, key: Any) -> Dict[str, Any]:
        try:
            return dict(self._rows[key])
        except KeyError:
            raise RecordNotFound(f"{self.name}[{key!r}]") from None

    def contains(self, key: Any) -> bool:
        return key in self._rows

    def delete(self, key: Any) -> bool:
        return self._rows.pop(key, None) is not None

    def select(self, predicate: Callable[[Dict[str, Any]], bool]) -> List[Dict[str, Any]]:
        return [dict(row) for row in self._rows.values() if predicate(row)]

    def update(self, key: Any, changes: Dict[str, Any]) -> Dict[str, Any]:
        row = self._rows.get(key)
        if row is None:
            raise RecordNotFound(f"{self.name}[{key!r}]")
        row.update(changes)
        return dict(row)


class Database:
    """A named collection of tables with an availability switch."""

    def __init__(self, name: str):
        self.name = name
        self.available = True
        self._tables: Dict[str, Table] = {}
        self.reads = 0
        self.writes = 0
        #: Side-effect ledger for the duplicate-execution audit: one
        #: ``(invocation_id, applied_by)`` record per mutating execution
        #: that ran under an idempotency key (see
        #: :meth:`record_effect`).  Exactly-once means no invocation id
        #: appears here more than once, across *all* backends.
        self.effect_log: List[Tuple[str, str]] = []

    def create_table(self, name: str, primary_key: str) -> Table:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists in {self.name!r}")
        table = Table(name, primary_key)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        self._check_available()
        try:
            return self._tables[name]
        except KeyError:
            raise RecordNotFound(f"no table {name!r} in {self.name!r}") from None

    def read(self, table_name: str, key: Any) -> Dict[str, Any]:
        """Availability-checked point read."""
        self._check_available()
        self.reads += 1
        return self.table(table_name).get(key)

    def write(self, table_name: str, row: Dict[str, Any]) -> None:
        """Availability-checked insert/replace."""
        self._check_available()
        self.writes += 1
        self.table(table_name).insert(row)

    def update(self, table_name: str, key: Any, changes: Dict[str, Any]) -> Dict[str, Any]:
        """Availability-checked partial update (counts as a write)."""
        self._check_available()
        self.writes += 1
        return self.table(table_name).update(key, changes)

    # -- duplicate-execution audit ---------------------------------------------------

    def record_effect(self, invocation_id: str, applied_by: str) -> None:
        """Ledger one mutating execution under an idempotency key."""
        self.effect_log.append((invocation_id, applied_by))

    def effect_counts(self) -> "Counter[str]":
        """Applications per invocation id (audit: every count must be 1)."""
        return Counter(invocation_id for invocation_id, _ in self.effect_log)

    def duplicate_effects(self) -> Dict[str, int]:
        """Invocation ids applied more than once on *this* backend."""
        return {
            invocation_id: count
            for invocation_id, count in self.effect_counts().items()
            if count > 1
        }

    # -- failure injection ---------------------------------------------------------

    def fail(self) -> None:
        """Take the store offline; reads/writes raise until restored."""
        self.available = False

    def restore(self) -> None:
        self.available = True

    def _check_available(self) -> None:
        if not self.available:
            raise BackendUnavailable(f"database {self.name!r} is down")
