"""Service backends: operational stores, the data warehouse, datasets.

The substrate behind b-peers.  Substitutes the paper's real student-records
database with deterministic synthetic datasets (see DESIGN.md), and
provides the §4.1 failover pair: an operational :class:`Database` that can
be failed, and a :func:`build_warehouse` replica that a semantically
equivalent b-peer serves from instead.  :mod:`~repro.backend.loans` adds
the loan-solvency saga pipeline (forward + compensating operation pairs).
"""

from .datasets import (
    claims_database,
    loans_database,
    patients_database,
    student_database,
)
from .loans import (
    book_loan,
    cancel_loan,
    loan_booking_database,
    loan_desk_database,
    register_loan,
    release_funds,
    reserve_funds,
    solvency_database,
    unbook_loan,
)
from .services import (
    ServiceImplementation,
    claim_assessment,
    loan_approval,
    patient_record_retrieval,
    student_enrollment,
    student_lookup_operational,
    student_lookup_warehouse,
)
from .store import BackendUnavailable, Database, RecordNotFound, Table
from .warehouse import build_warehouse, warehouse_lookup

__all__ = [
    "BackendUnavailable",
    "Database",
    "RecordNotFound",
    "ServiceImplementation",
    "Table",
    "book_loan",
    "build_warehouse",
    "cancel_loan",
    "claim_assessment",
    "claims_database",
    "loan_approval",
    "loan_booking_database",
    "loan_desk_database",
    "loans_database",
    "patient_record_retrieval",
    "patients_database",
    "register_loan",
    "release_funds",
    "reserve_funds",
    "solvency_database",
    "student_database",
    "student_enrollment",
    "student_lookup_operational",
    "student_lookup_warehouse",
    "unbook_loan",
]
