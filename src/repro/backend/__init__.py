"""Service backends: operational stores, the data warehouse, datasets.

The substrate behind b-peers.  Substitutes the paper's real student-records
database with deterministic synthetic datasets (see DESIGN.md), and
provides the §4.1 failover pair: an operational :class:`Database` that can
be failed, and a :func:`build_warehouse` replica that a semantically
equivalent b-peer serves from instead.
"""

from .datasets import (
    claims_database,
    loans_database,
    patients_database,
    student_database,
)
from .services import (
    ServiceImplementation,
    claim_assessment,
    loan_approval,
    patient_record_retrieval,
    student_enrollment,
    student_lookup_operational,
    student_lookup_warehouse,
)
from .store import BackendUnavailable, Database, RecordNotFound, Table
from .warehouse import build_warehouse, warehouse_lookup

__all__ = [
    "BackendUnavailable",
    "Database",
    "RecordNotFound",
    "ServiceImplementation",
    "Table",
    "build_warehouse",
    "claim_assessment",
    "claims_database",
    "loan_approval",
    "loans_database",
    "patient_record_retrieval",
    "patients_database",
    "student_database",
    "student_enrollment",
    "student_lookup_operational",
    "student_lookup_warehouse",
    "warehouse_lookup",
]
