"""Service implementations that b-peers execute.

A :class:`ServiceImplementation` is the unit of business logic a b-peer
hosts: a handler from SOAP-style arguments to a result value, backed by a
store, plus a simulated compute time.  The same logical service can have
several implementations ("the b-peers of the same semantic b-peer group
implement the same functionality service, but possibly in a different
way", §4.1) — here, operational-database and data-warehouse flavours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from .store import Database
from .warehouse import warehouse_lookup

__all__ = [
    "ServiceImplementation",
    "student_lookup_operational",
    "student_lookup_warehouse",
    "student_enrollment",
    "claim_assessment",
    "loan_approval",
    "patient_record_retrieval",
]

#: Handler signature: arguments dict -> result value.
Handler = Callable[[Dict[str, Any]], Any]


@dataclass
class ServiceImplementation:
    """One way of realising a service's functionality."""

    name: str
    handler: Handler
    backend: Database
    flavour: str = "operational"
    #: Simulated compute time per invocation, seconds.
    service_time: float = 0.002
    #: True when the handler has side effects (writes to the backend):
    #: re-executing it under a retried invocation id is a *duplicate
    #: application*, so b-peers journal + eagerly replicate its results
    #: and the campaign audits its effect ledger.
    mutating: bool = False
    invocations: int = field(default=0, init=False)

    def invoke(self, arguments: Dict[str, Any]) -> Any:
        """Run the business logic (raises backend exceptions unchanged)."""
        self.invocations += 1
        return self.handler(arguments)


def _require(arguments: Dict[str, Any], key: str) -> Any:
    if key not in arguments:
        raise ValueError(f"missing argument {key!r}")
    return arguments[key]


# -- student management (§3 running scenario) ------------------------------------------


def student_lookup_operational(database: Database) -> ServiceImplementation:
    """Serve ``StudentInformation`` from the operational database."""

    def handler(arguments: Dict[str, Any]) -> Any:
        student_id = _require(arguments, "ID")
        row = database.read("students", student_id)
        return {
            "studentId": row["student_id"],
            "name": row["name"],
            "degree": row["degree"],
            "email": row["email"],
            "enrolledCourses": row["enrolled_courses"],
            "source": "operational-db",
        }

    return ServiceImplementation(
        name="student-lookup/operational",
        handler=handler,
        backend=database,
        flavour="operational",
        service_time=0.002,
    )


def student_lookup_warehouse(warehouse: Database) -> ServiceImplementation:
    """Serve ``StudentInformation`` from the data warehouse (§4.1 failover)."""

    def handler(arguments: Dict[str, Any]) -> Any:
        student_id = _require(arguments, "ID")
        row = warehouse_lookup(warehouse, "students", student_id)
        return {
            "studentId": row["student_id"],
            "name": row["name"],
            "degree": row["degree"],
            "email": row["email"],
            "enrolledCourses": row["enrolled_courses"],
            "source": "data-warehouse",
        }

    return ServiceImplementation(
        name="student-lookup/warehouse",
        handler=handler,
        backend=warehouse,
        flavour="warehouse",
        # Warehouse scans are a little slower than keyed operational reads.
        service_time=0.005,
    )


def student_enrollment(database: Database) -> ServiceImplementation:
    """Enroll a student in a course (the ``sm:EnrollStudent`` action)."""

    def handler(arguments: Dict[str, Any]) -> Any:
        student_id = _require(arguments, "ID")
        course = _require(arguments, "course")
        row = database.read("students", student_id)
        courses = sorted(set(row["enrolled_courses"]) | {course})
        database.update("students", student_id, {"enrolled_courses": courses})
        return {
            "studentId": student_id,
            "name": row["name"],
            "degree": row["degree"],
            "email": row["email"],
            "enrolledCourses": courses,
            "source": "operational-db",
        }

    return ServiceImplementation(
        name="student-enrollment",
        handler=handler,
        backend=database,
        service_time=0.003,
        mutating=True,
    )


# -- B2B domains (§1) ---------------------------------------------------------------------


def claim_assessment(database: Database) -> ServiceImplementation:
    """Assess an insurance claim: amount- and status-based decision."""

    def handler(arguments: Dict[str, Any]) -> Any:
        claim_id = _require(arguments, "request")
        row = database.read("claims", claim_id)
        assessment = "approve" if row["amount"] < 10000.0 else "escalate"
        if row["status"] in ("rejected", "settled"):
            assessment = "closed"
        return {
            "claimId": row["claim_id"],
            "policyNumber": row["policy_number"],
            "amount": row["amount"],
            "assessment": assessment,
        }

    return ServiceImplementation(
        name="claim-assessment",
        handler=handler,
        backend=database,
        service_time=0.004,
    )


def loan_approval(database: Database) -> ServiceImplementation:
    """Decide a loan application from the stored credit score."""

    def handler(arguments: Dict[str, Any]) -> Any:
        loan_id = _require(arguments, "request")
        row = database.read("loans", loan_id)
        return {
            "loanId": row["loan_id"],
            "customerId": row["customer_id"],
            "approved": row["approved"],
            "creditScore": row["credit_score"],
        }

    return ServiceImplementation(
        name="loan-approval",
        handler=handler,
        backend=database,
        service_time=0.003,
    )


def patient_record_retrieval(database: Database) -> ServiceImplementation:
    """Fetch a patient's record (§1: treatment must not wait on downtime)."""

    def handler(arguments: Dict[str, Any]) -> Any:
        patient_id = _require(arguments, "request")
        row = database.read("patients", patient_id)
        return {
            "patientId": row["patient_id"],
            "name": row["name"],
            "conditions": row["conditions"],
            "nextTreatment": row["next_treatment"],
        }

    return ServiceImplementation(
        name="patient-record",
        handler=handler,
        backend=database,
        service_time=0.002,
    )
