"""Relay peers for NAT-isolated edges.

§5 credits JXTA's transport with "traversing firewall or NAT equipment
that isolates peers from public networks" via relay peers.  The endpoint
service already forwards messages whose destination is not itself; this
module provides the wiring helpers that make a peer act as (or use) a
relay, plus bookkeeping for relayed traffic.
"""

from __future__ import annotations

from typing import Iterable

from .endpoint import EndpointService
from .ids import PeerId

__all__ = ["configure_relay", "attach_nat_peer"]


def configure_relay(
    relay_endpoint: EndpointService, clients: Iterable[EndpointService]
) -> None:
    """Make ``relay_endpoint`` the relay for every client endpoint.

    Each client learns the relay's route and designates it; the relay
    learns each client's route (including NAT-isolated ones, which it can
    reach because NAT allows the *client-initiated* path back).
    """
    relay_id: PeerId = relay_endpoint.peer_id
    for client in clients:
        client.add_route(relay_id, relay_endpoint.address)
        client.set_relay(relay_id)
        relay_endpoint.add_route(client.peer_id, client.address)


def attach_nat_peer(
    nat_endpoint: EndpointService,
    relay_endpoint: EndpointService,
    public_endpoints: Iterable[EndpointService],
) -> None:
    """Wire a NAT-isolated peer into the network through a relay.

    Public peers learn that the NAT peer must be reached via relay (they
    mark the route NAT-isolated and route through their own relay); the
    NAT peer reaches everyone through the relay as well.
    """
    relay_id = relay_endpoint.peer_id
    nat_endpoint.add_route(relay_id, relay_endpoint.address)
    nat_endpoint.set_relay(relay_id)
    relay_endpoint.add_route(nat_endpoint.peer_id, nat_endpoint.address)
    for public in public_endpoints:
        public.add_route(
            nat_endpoint.peer_id, nat_endpoint.address, nat_isolated=True
        )
        if public.relay_peer is None:
            public.add_route(relay_id, relay_endpoint.address)
            public.set_relay(relay_id)
        nat_endpoint.add_route(public.peer_id, public.address)
        # The relay forwards in both directions, so it needs routes to the
        # public side too.
        relay_endpoint.add_route(public.peer_id, public.address)
