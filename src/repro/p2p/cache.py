"""The local advertisement cache (JXTA's "CM").

Each peer keeps discovered advertisements locally with an expiration time
(publication time + advertisement lifetime).  Discovery's
``getLocalAdvertisements`` queries run against this cache; expired entries
are purged lazily on access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Type

from .advertisement import Advertisement

__all__ = ["AdvertisementCache"]


@dataclass
class _Entry:
    advertisement: Advertisement
    expires_at: float


class AdvertisementCache:
    """Expiring store of advertisements, queryable by type and attribute.

    When handed a metrics registry, the cache emits exactly one
    ``discovery.cache_hit`` or ``discovery.cache_miss`` per lookup
    (``get`` and ``query`` alike — a query that matches ten
    advertisements is still *one* hit, and an empty result is a miss),
    plus ``discovery.cache_expired`` per entry purged past its lifetime
    and ``discovery.cache_flushed`` per live entry dropped by
    ``clear()``.  Campaign reports use these to correlate
    stale-advertisement windows (e.g. after a partition) with discovery
    misses and dedup journal misses.
    """

    def __init__(self, clock: Callable[[], float], metrics: Optional[Any] = None):
        self._clock = clock
        self._metrics = metrics
        self._entries: Dict[str, _Entry] = {}

    def _inc(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None and amount:
            self._metrics.inc(name, amount)

    def __len__(self) -> int:
        self._purge()
        return len(self._entries)

    def publish(self, advertisement: Advertisement, lifetime: Optional[float] = None) -> None:
        """Insert or refresh an advertisement.

        Re-publishing an advertisement with the same key replaces the old
        copy and extends its expiration.
        """
        effective = lifetime if lifetime is not None else advertisement.lifetime
        self._entries[advertisement.key()] = _Entry(
            advertisement=advertisement,
            expires_at=self._clock() + effective,
        )

    def remove(self, key: str) -> bool:
        """Flush one advertisement; returns True if it was present."""
        return self._entries.pop(key, None) is not None

    def get(self, key: str) -> Optional[Advertisement]:
        entry = self._entries.get(key)
        if entry is None:
            self._inc("discovery.cache_miss")
            return None
        if entry.expires_at <= self._clock():
            del self._entries[key]
            self._inc("discovery.cache_expired")
            self._inc("discovery.cache_miss")
            return None
        self._inc("discovery.cache_hit")
        return entry.advertisement

    def query(
        self,
        adv_type: Optional[Type[Advertisement]] = None,
        attribute: Optional[str] = None,
        value: Optional[str] = None,
    ) -> List[Advertisement]:
        """All live advertisements matching the JXTA-style query triple.

        ``adv_type`` restricts the advertisement class; ``attribute`` /
        ``value`` match against :meth:`Advertisement.attributes`.  A ``*``
        suffix on ``value`` performs a prefix match (JXTA wildcard style).
        """
        self._purge()
        results: List[Advertisement] = []
        for entry in self._entries.values():
            advertisement = entry.advertisement
            if adv_type is not None and not isinstance(advertisement, adv_type):
                continue
            if attribute is not None:
                actual = advertisement.attributes().get(attribute)
                if actual is None:
                    continue
                if value is not None and not _match_value(actual, value):
                    continue
            results.append(advertisement)
        results.sort(key=lambda adv: adv.key())
        if results:
            self._inc("discovery.cache_hit")
        else:
            self._inc("discovery.cache_miss")
        return results

    def keys(self) -> List[str]:
        self._purge()
        return sorted(self._entries)

    def clear(self) -> None:
        """Drop everything, keeping the expired/flushed accounting honest.

        Entries already past their lifetime count toward
        ``discovery.cache_expired`` (they would have been purged on the
        next lookup anyway); still-live entries count toward
        ``discovery.cache_flushed``.
        """
        now = self._clock()
        expired = sum(1 for entry in self._entries.values() if entry.expires_at <= now)
        self._inc("discovery.cache_expired", expired)
        self._inc("discovery.cache_flushed", len(self._entries) - expired)
        self._entries.clear()

    def _purge(self) -> None:
        now = self._clock()
        expired = [key for key, entry in self._entries.items() if entry.expires_at <= now]
        for key in expired:
            del self._entries[key]
        self._inc("discovery.cache_expired", len(expired))


def _match_value(actual: str, pattern: str) -> bool:
    if pattern.endswith("*"):
        return actual.startswith(pattern[:-1])
    return actual == pattern
