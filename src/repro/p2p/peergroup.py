"""Peer groups: logical clusters of peers implementing one service.

"Peers are self-organized into b-peer groups which are logical rather than
physical entities" (§4.1).  The group service tracks, per peer, which
groups it belongs to and who the other members are.  Membership converges
through three complementary mechanisms, all with *linear* aggregate
message cost (this is one of the levers behind Figure 4's linear shape):

1. a one-time *join* announcement propagated through the rendezvous, to
   which existing members respond with a *member-sync* roster unicast;
2. a periodic *membership renewal* each member sends to its rendezvous,
   which maintains an expiring membership index per group (the same
   pattern as JXTA's SRDI advertisement index);
3. a periodic *roster query* each member issues against that index,
   repairing any view divergence within one period.

In multi-region deployments a rendezvous forwards each renewal it applies
to its federated peers once, so every region's membership index converges
on the full roster.  Without this, roster repair is region-local: a peer
that restarts and loses its view could only ever re-learn members leased
in its own region, and its coordinator announcements would silently skip
the rest of the group.  Single-region deployments have no federation
links, so the seed's message sequence is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..simnet.events import Interrupt
from ..simnet.message import Address
from .advertisement import Advertisement
from .endpoint import EndpointMessage, EndpointService, UnresolvablePeerError
from .ids import PeerGroupId, PeerId
from .rendezvous import RendezvousService
from .resolver import ResolverQuery, ResolverService

__all__ = ["GroupService", "PeerGroupView", "PROTOCOL", "ANNOUNCE_PERIOD"]

PROTOCOL = "whisper:group"
ROSTER_HANDLER = "whisper:group-roster"

#: Period of membership renewals and roster refreshes.
ANNOUNCE_PERIOD = 5.0

#: How many periods a membership-index entry survives without renewal.
RENEWAL_GRACE = 2.5


@dataclass
class PeerGroupView:
    """One peer's view of a group it belongs to (or observes)."""

    group_id: PeerGroupId
    name: str
    members: Set[PeerId] = field(default_factory=set)
    advertisement: Optional[Advertisement] = None

    def sorted_members(self) -> List[PeerId]:
        return sorted(self.members, key=lambda pid: pid.uuid_hex)


@dataclass
class _JoinAnnouncement:
    group_id: PeerGroupId
    group_name: str
    peer_id: PeerId
    address: Address


@dataclass
class _MemberSync:
    group_id: PeerGroupId
    members: List[Tuple[PeerId, Address]]


@dataclass
class _LeaveAnnouncement:
    group_id: PeerGroupId
    peer_id: PeerId


@dataclass
class _Renewal:
    group_id: PeerGroupId
    peer_id: PeerId
    address: Address


#: Group message listeners: ``listener(payload, src_peer, group_id)``.
GroupListener = Callable[[Any, PeerId, PeerGroupId], None]


class GroupService:
    """Manages group membership and intra-group messaging for one peer."""

    def __init__(
        self,
        endpoint: EndpointService,
        rendezvous: RendezvousService,
        resolver: ResolverService,
    ):
        self.endpoint = endpoint
        self.rendezvous = rendezvous
        self.resolver = resolver
        self.groups: Dict[PeerGroupId, PeerGroupView] = {}
        #: Rendezvous side: group -> peer -> (address, expiry).
        self._registry: Dict[PeerGroupId, Dict[PeerId, Tuple[Address, float]]] = {}
        self._listeners: Dict[str, GroupListener] = {}
        self._membership_listeners: List[Callable[[PeerGroupId, PeerId, str], None]] = []
        self._maintainer = None
        endpoint.register_listener(PROTOCOL, self._on_direct)
        rendezvous.register_propagate_listener(PROTOCOL, self._on_propagated)
        resolver.register_handler(ROSTER_HANDLER, self._on_roster_query)
        endpoint.node.on_crash(lambda _node: self._on_crash())

    # -- membership -----------------------------------------------------------------

    def join(
        self,
        group_id: PeerGroupId,
        name: str,
        advertisement: Optional[Advertisement] = None,
    ) -> PeerGroupView:
        """Join (creating if necessary) a group and announce it."""
        view = self.groups.get(group_id)
        if view is None:
            view = PeerGroupView(group_id=group_id, name=name)
            self.groups[group_id] = view
        view.members.add(self.endpoint.peer_id)
        if advertisement is not None:
            view.advertisement = advertisement
        announcement = _JoinAnnouncement(
            group_id=group_id,
            group_name=name,
            peer_id=self.endpoint.peer_id,
            address=self.endpoint.address,
        )
        self.rendezvous.propagate(PROTOCOL, ("join", announcement), size_bytes=256)
        self._renew(group_id)
        self._request_roster(group_id)
        if self._maintainer is None or not self._maintainer.is_alive:
            self._maintainer = self.endpoint.node.spawn(
                self._maintenance_loop(),
                name=f"group-maintain:{self.endpoint.node.name}",
            )
        return view

    def leave(self, group_id: PeerGroupId) -> None:
        """Leave a group and announce the departure."""
        view = self.groups.get(group_id)
        if view is None:
            return
        view.members.discard(self.endpoint.peer_id)
        announcement = _LeaveAnnouncement(group_id=group_id, peer_id=self.endpoint.peer_id)
        self.rendezvous.propagate(PROTOCOL, ("leave", announcement), size_bytes=128)
        del self.groups[group_id]
        # Local observers (e.g. the elector) see the departure too.
        self._notify_membership(group_id, self.endpoint.peer_id, "left")

    def members(self, group_id: PeerGroupId) -> Set[PeerId]:
        view = self.groups.get(group_id)
        return set(view.members) if view is not None else set()

    def is_member(self, group_id: PeerGroupId) -> bool:
        view = self.groups.get(group_id)
        return view is not None and self.endpoint.peer_id in view.members

    def remove_member(self, group_id: PeerGroupId, peer_id: PeerId) -> None:
        """Locally drop a member believed dead (failure detector outcome)."""
        view = self.groups.get(group_id)
        if view is not None and peer_id in view.members:
            view.members.discard(peer_id)
            self._notify_membership(group_id, peer_id, "removed")

    def on_membership_change(
        self, listener: Callable[[PeerGroupId, PeerId, str], None]
    ) -> None:
        """Observe joins/leaves/removals: ``listener(group, peer, change)``."""
        self._membership_listeners.append(listener)

    # -- periodic maintenance (renewals + roster refresh) -----------------------------

    def _maintenance_loop(self):
        env = self.endpoint.node.env
        try:
            while True:
                yield env.timeout(ANNOUNCE_PERIOD)
                for view in list(self.groups.values()):
                    if self.endpoint.peer_id in view.members:
                        self._renew(view.group_id)
                        self._request_roster(view.group_id)
        except Interrupt:
            return

    def _renew(self, group_id: PeerGroupId) -> None:
        """Refresh our entry in the rendezvous' membership index."""
        renewal = _Renewal(
            group_id=group_id,
            peer_id=self.endpoint.peer_id,
            address=self.endpoint.address,
        )
        if self.rendezvous.is_rendezvous:
            self._apply_renewal(renewal)
            return
        if self.rendezvous.connected_to is None:
            return
        try:
            self.endpoint.send(
                self.rendezvous.connected_to,
                PROTOCOL,
                ("renew", renewal),
                category="group-renew",
                size_bytes=128,
            )
        except UnresolvablePeerError:
            pass

    def _request_roster(self, group_id: PeerGroupId) -> None:
        """Ask the rendezvous' membership index for the current roster."""

        def on_response(response) -> None:
            self._apply_member_sync(response.payload)

        target = (
            None
            if self.rendezvous.is_rendezvous
            else self.rendezvous.connected_to
        )
        if target is None and not self.rendezvous.is_rendezvous:
            return
        self.resolver.send_query(
            ROSTER_HANDLER,
            group_id,
            on_response=on_response,
            dst_peer=target,
            size_bytes=128,
        )

    def _on_roster_query(self, query: ResolverQuery) -> Optional[Any]:
        group_id: PeerGroupId = query.payload
        entries = self._registry.get(group_id)
        if not entries:
            return None
        now = self.endpoint.node.env.now
        alive = [
            (peer, address)
            for peer, (address, expiry) in sorted(
                entries.items(), key=lambda item: item[0].uuid_hex
            )
            if expiry > now
        ]
        if not alive:
            return None
        return _MemberSync(group_id=group_id, members=alive)

    def _apply_renewal(self, renewal: _Renewal) -> None:
        entries = self._registry.setdefault(renewal.group_id, {})
        expiry = self.endpoint.node.env.now + ANNOUNCE_PERIOD * RENEWAL_GRACE
        entries[renewal.peer_id] = (renewal.address, expiry)
        self.endpoint.add_route(renewal.peer_id, renewal.address)

    def _forward_renewal_federated(self, renewal: _Renewal) -> None:
        """Replicate a locally-applied renewal to federated rendezvous.

        Keeps every region's membership index authoritative for the whole
        group, so a restarted peer's roster query repairs its view even
        when the surviving members are leased in other regions.
        """
        if not (self.rendezvous.is_rendezvous and self.rendezvous.federated):
            return
        for peer_id in sorted(
            self.rendezvous.federated, key=lambda pid: pid.uuid_hex
        ):
            try:
                self.endpoint.send(
                    peer_id,
                    PROTOCOL,
                    ("renew-fed", renewal),
                    category="group-renew-fed",
                    size_bytes=128,
                )
            except UnresolvablePeerError:
                continue

    # -- group messaging -----------------------------------------------------------------

    def register_group_listener(self, protocol: str, listener: GroupListener) -> None:
        """Receive group datagrams sent under ``protocol``."""
        self._listeners[protocol] = listener

    def send_to_member(
        self,
        group_id: PeerGroupId,
        peer_id: PeerId,
        protocol: str,
        payload: Any,
        category: Optional[str] = None,
        size_bytes: int = 512,
    ) -> None:
        """Unicast a group datagram to one member."""
        datagram = ("msg", (group_id, protocol, payload))
        self.endpoint.send(
            peer_id,
            PROTOCOL,
            datagram,
            category=category or protocol,
            size_bytes=size_bytes,
        )

    def propagate_to_group(
        self,
        group_id: PeerGroupId,
        protocol: str,
        payload: Any,
        category: Optional[str] = None,
        size_bytes: int = 512,
        include_self: bool = True,
    ) -> int:
        """Unicast a datagram to every member; returns how many were sent.

        This is the JXTA propagate-pipe pattern scoped to a group; its cost
        is linear in the member count.
        """
        view = self.groups.get(group_id)
        if view is None:
            return 0
        sent = 0
        for member in view.sorted_members():
            if member == self.endpoint.peer_id:
                continue
            try:
                self.send_to_member(
                    group_id, member, protocol, payload, category, size_bytes
                )
                sent += 1
            except UnresolvablePeerError:
                continue
        if include_self:
            listener = self._listeners.get(protocol)
            if listener is not None:
                listener(payload, self.endpoint.peer_id, group_id)
        return sent

    # -- inbound ----------------------------------------------------------------------------

    def _on_direct(self, message: EndpointMessage) -> None:
        kind, body = message.payload
        if kind == "msg":
            group_id, protocol, payload = body
            listener = self._listeners.get(protocol)
            if listener is not None:
                listener(payload, message.src_peer, group_id)
        elif kind == "member-sync":
            self._apply_member_sync(body)
        elif kind == "renew":
            self._apply_renewal(body)
            self._forward_renewal_federated(body)
        elif kind == "renew-fed":
            # A federated rendezvous replicated a remote member's renewal:
            # index it, never re-forward (the federation mesh is complete).
            self._apply_renewal(body)
        elif kind == "join":
            self._apply_join(body, direct=True)

    def _on_propagated(self, payload: Any, _origin: PeerId) -> None:
        kind, body = payload
        if kind == "join":
            self._apply_join(body, direct=False)
        elif kind == "leave":
            self._apply_leave(body)

    def _apply_join(self, announcement: _JoinAnnouncement, direct: bool) -> None:
        self.endpoint.add_route(announcement.peer_id, announcement.address)
        view = self.groups.get(announcement.group_id)
        if view is None:
            # Not our group: remember nothing (membership is group-scoped).
            return
        if announcement.peer_id in view.members:
            return
        view.members.add(announcement.peer_id)
        self._notify_membership(announcement.group_id, announcement.peer_id, "joined")
        if not direct and announcement.peer_id != self.endpoint.peer_id:
            # Existing member: sync the roster back to the newcomer.
            roster = [
                (member, self._route_or_own(member))
                for member in view.sorted_members()
                if self._route_or_own(member) is not None
            ]
            sync = _MemberSync(group_id=announcement.group_id, members=roster)
            try:
                self.endpoint.send(
                    announcement.peer_id,
                    PROTOCOL,
                    ("member-sync", sync),
                    category="group-sync",
                    size_bytes=128 + 64 * len(roster),
                )
            except UnresolvablePeerError:
                pass

    def _route_or_own(self, member: PeerId) -> Optional[Address]:
        if member == self.endpoint.peer_id:
            return self.endpoint.address
        return self.endpoint.route_for(member)

    def _apply_member_sync(self, sync: _MemberSync) -> None:
        view = self.groups.get(sync.group_id)
        if view is None:
            return
        for peer_id, address in sync.members:
            self.endpoint.add_route(peer_id, address)
            if peer_id not in view.members:
                view.members.add(peer_id)
                self._notify_membership(sync.group_id, peer_id, "joined")

    def _apply_leave(self, announcement: _LeaveAnnouncement) -> None:
        view = self.groups.get(announcement.group_id)
        if view is not None and announcement.peer_id in view.members:
            view.members.discard(announcement.peer_id)
            self._notify_membership(announcement.group_id, announcement.peer_id, "left")
        entries = self._registry.get(announcement.group_id)
        if entries is not None:
            entries.pop(announcement.peer_id, None)

    def _notify_membership(
        self, group_id: PeerGroupId, peer_id: PeerId, change: str
    ) -> None:
        for listener in self._membership_listeners:
            listener(group_id, peer_id, change)

    def _on_crash(self) -> None:
        self.groups.clear()
        self._registry.clear()
        self._maintainer = None
