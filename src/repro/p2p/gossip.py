"""Cross-region gossip discovery: rumor spreading + anti-entropy.

The paper's discovery floods every advertisement to every peer, which is
fine on one switched LAN but quadratic across regions: each b-peer
republishes its advertisements every ``REPUBLISH_PERIOD`` seconds, and a
flood-federated rendezvous would forward every one of those refreshes to
every other region forever.  This module replaces that cross-region flood
with the classic epidemic pair:

* **rumor mongering** — a rendezvous that learns a *new or changed*
  advertisement pushes it to ``fanout`` random federated rendezvous every
  ``interval`` seconds, for ``rumor_rounds`` rounds; receivers re-rumor
  what was news to them.  With fanout >= 2 a fresh advertisement reaches
  all R regions in O(log R) rounds.
* **anti-entropy** — every ``anti_entropy_interval`` seconds each
  rendezvous sends one random federated peer a *digest* (its per-origin
  version vector).  The peer replies only on a diff, with the entries the
  digester lacks plus its own vector; the digester pushes back what the
  peer lacks.  This repairs anything rumor mongering missed (e.g. a
  region that was partitioned while a rumor was hot).

Unchanged periodic republications are recognised by content and spread
no rumor at all — that is the asymptotic win over the flood baseline,
which :class:`GossipService` also implements (``mode="flood"``) so the
WAN bench can measure both under identical workloads.

Entries are versioned ``(origin_region, seq)`` with a monotone per-origin
sequence; a per-service version vector (``origin_region -> max seq``)
summarises what a rendezvous holds.  Applied entries are written straight
into the local rendezvous' SRDI index, so discovery and the SWS-proxy
find remote-region groups through exactly the paper's lookup path.
Gossiped :class:`~repro.p2p.advertisement.PeerAdvertisement`\\ s also feed
the endpoint routing table, which is what lets a federated rendezvous
relay responses toward peers leased in another region.

Intra-region discovery is untouched: on a single-region topology no
GossipService exists and the wire traffic is byte-identical to the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..simnet.events import Interrupt
from .advertisement import Advertisement, PeerAdvertisement, advertisement_from_xml
from .ids import PeerId

__all__ = ["GossipService", "GossipEntry", "GOSSIP_PROTOCOL"]

GOSSIP_PROTOCOL = "whisper:gossip"

#: Fixed per-message overhead (headers, vector framing), bytes.
_OVERHEAD = 128


@dataclass
class GossipEntry:
    """One versioned advertisement travelling between regions."""

    key: str
    origin: str  #: region that first saw this version
    seq: int  #: per-origin monotone sequence number
    document: str  #: advertisement XML
    publisher: PeerId  #: the edge peer that pushed it into SRDI

    def size_bytes(self) -> int:
        return len(self.document.encode()) + 64


@dataclass
class GossipStats:
    """Message/convergence counters, reset with the trace counters."""

    rumors_sent: int = 0
    digests_sent: int = 0
    deltas_sent: int = 0
    floods_sent: int = 0
    entries_applied: int = 0
    refreshes_suppressed: int = 0
    rounds: int = 0


class GossipService:
    """The gossip side of one region's rendezvous peer."""

    def __init__(
        self,
        peer,
        region: str,
        rng: random.Random,
        fanout: int = 2,
        interval: float = 0.5,
        anti_entropy_interval: float = 5.0,
        rumor_rounds: int = 2,
        mode: str = "gossip",
    ):
        self.peer = peer
        self.endpoint = peer.endpoint
        self.rendezvous = peer.rendezvous
        self.env = peer.node.env
        self.region = region
        self.rng = rng
        self.fanout = fanout
        self.interval = interval
        self.anti_entropy_interval = anti_entropy_interval
        self.rumor_rounds = rumor_rounds
        self.mode = mode
        #: federated gossip peers: rendezvous peer id -> its region name.
        self.peers: Dict[PeerId, str] = {}
        #: everything this rendezvous holds, by advertisement key.
        self.entries: Dict[str, GossipEntry] = {}
        #: per-origin version vector: region name -> max sequence seen.
        self.vector: Dict[str, int] = {}
        #: rumors still hot: key -> remaining rounds to forward.
        self._hot: Dict[str, int] = {}
        self._seq = 0
        #: simulated time each key was first applied here (convergence probe).
        self.seen_at: Dict[str, float] = {}
        self.stats = GossipStats()
        self.endpoint.register_listener(GOSSIP_PROTOCOL, self._on_message)
        self.rendezvous.on_srdi_push.append(self._on_local_srdi)
        self._start_loops()
        peer.node.on_crash(lambda _node: self._on_crash())
        peer.node.on_restart(lambda _node: self._start_loops())

    # -- wiring ------------------------------------------------------------------------

    def add_peer(self, peer_id: PeerId, region: str) -> None:
        """Register a federated rendezvous (route comes from federate_with)."""
        if peer_id != self.endpoint.peer_id:
            self.peers[peer_id] = region

    def _start_loops(self) -> None:
        if self.mode != "gossip":
            return  # flood mode forwards eagerly; no periodic machinery
        self.peer.node.spawn(self._rumor_loop(), name=f"gossip-rumor:{self.region}")
        self.peer.node.spawn(
            self._anti_entropy_loop(), name=f"gossip-ae:{self.region}"
        )

    def _on_crash(self) -> None:
        # The SRDI index dies with the rendezvous; so does our store.  The
        # sequence counter survives so post-restart updates never look
        # older than what other regions already hold from us.
        self.entries.clear()
        self.vector.clear()
        self._hot.clear()

    # -- local updates (from this region's SRDI pushes) ----------------------------------

    def _on_local_srdi(
        self, key: str, origin: PeerId, advertisement: Advertisement, document: str
    ) -> None:
        existing = self.entries.get(key)
        if self.mode == "flood":
            # The baseline federates every push, including the periodic
            # keep-alive republications — that is precisely its cost.
            self._seq += 1
            entry = GossipEntry(key, self.region, self._seq, document, origin)
            self._remember(entry)
            for peer_id in sorted(self.peers, key=lambda pid: pid.uuid_hex):
                self._send(peer_id, ("rumor", [entry]), "gossip-flood", entry.size_bytes())
                self.stats.floods_sent += 1
            return
        if existing is not None and existing.document == document:
            # Periodic republication of unchanged content: nothing to spread.
            self.stats.refreshes_suppressed += 1
            return
        self._seq += 1
        entry = GossipEntry(key, self.region, self._seq, document, origin)
        self._remember(entry)
        self._hot[key] = self.rumor_rounds

    # -- epidemic machinery --------------------------------------------------------------

    def _rumor_loop(self):
        try:
            while True:
                yield self.env.timeout(self.interval)
                self.stats.rounds += 1
                if not self._hot or not self.peers:
                    continue
                entries = [self.entries[key] for key in sorted(self._hot)]
                size = sum(entry.size_bytes() for entry in entries) + _OVERHEAD
                for peer_id in self._pick_peers(self.fanout):
                    self._send(peer_id, ("rumor", entries), "gossip-rumor", size)
                    self.stats.rumors_sent += 1
                for key in list(self._hot):
                    self._hot[key] -= 1
                    if self._hot[key] <= 0:
                        del self._hot[key]
        except Interrupt:
            return

    def _anti_entropy_loop(self):
        try:
            while True:
                yield self.env.timeout(self.anti_entropy_interval)
                if not self.peers:
                    continue
                peer_id = self._pick_peers(1)[0]
                size = _OVERHEAD + 24 * max(1, len(self.vector))
                self._send(peer_id, ("digest", dict(self.vector)), "gossip-digest", size)
                self.stats.digests_sent += 1
        except Interrupt:
            return

    def _pick_peers(self, count: int) -> List[PeerId]:
        ordered = sorted(self.peers, key=lambda pid: pid.uuid_hex)
        if count >= len(ordered):
            return ordered
        return self.rng.sample(ordered, count)

    # -- message handling ----------------------------------------------------------------

    def _on_message(self, message) -> None:
        kind, body = message.payload
        if kind == "rumor":
            self._apply_batch(body, re_rumor=self.mode == "gossip")
        elif kind == "digest":
            self._on_digest(body, message.src_peer)
        elif kind == "delta":
            entries, their_vector = body
            self._apply_batch(entries, re_rumor=True)
            final = self._missing_for(their_vector)
            if final:
                size = sum(e.size_bytes() for e in final) + _OVERHEAD
                self._send(message.src_peer, ("delta-final", final), "gossip-delta", size)
                self.stats.deltas_sent += 1
        elif kind == "delta-final":
            self._apply_batch(body, re_rumor=True)

    def _on_digest(self, their_vector: Dict[str, int], src_peer: PeerId) -> None:
        missing = self._missing_for(their_vector)
        they_have_more = any(
            seq > self.vector.get(origin, 0) for origin, seq in their_vector.items()
        )
        if not missing and not they_have_more:
            return  # in sync: the digest is the whole exchange
        size = sum(e.size_bytes() for e in missing) + _OVERHEAD + 24 * max(
            1, len(self.vector)
        )
        self._send(src_peer, ("delta", (missing, dict(self.vector))), "gossip-delta", size)
        self.stats.deltas_sent += 1

    def _missing_for(self, their_vector: Dict[str, int]) -> List[GossipEntry]:
        return [
            entry
            for key, entry in sorted(self.entries.items())
            if entry.seq > their_vector.get(entry.origin, 0)
        ]

    def _apply_batch(self, entries: List[GossipEntry], re_rumor: bool) -> None:
        for entry in entries:
            if not self._is_newer(entry):
                continue
            self._remember(entry)
            self._install(entry)
            self.stats.entries_applied += 1
            if re_rumor:
                self._hot[entry.key] = self.rumor_rounds

    def _is_newer(self, entry: GossipEntry) -> bool:
        existing = self.entries.get(entry.key)
        if existing is None:
            return True
        if existing.document == entry.document:
            return False
        if existing.origin == entry.origin:
            return entry.seq > existing.seq
        # Same key updated from two regions (e.g. a span-placed group's
        # replicas republishing from both sides): deterministic total order.
        return (entry.seq, entry.origin) > (existing.seq, existing.origin)

    def _remember(self, entry: GossipEntry) -> None:
        self.entries[entry.key] = entry
        if entry.seq > self.vector.get(entry.origin, 0):
            self.vector[entry.origin] = entry.seq
        self.seen_at.setdefault(entry.key, self.env.now)

    def _install(self, entry: GossipEntry) -> None:
        """Make a remote entry discoverable exactly like a local SRDI push."""
        advertisement = advertisement_from_xml(entry.document)
        self.rendezvous.srdi[entry.key] = (entry.publisher, advertisement)
        if isinstance(advertisement, PeerAdvertisement):
            # Remote peers become routable, so this rendezvous can relay
            # responses (and forward queries) toward their region directly.
            self.endpoint.add_route(advertisement.peer_id, advertisement.address)

    def _send(self, peer_id: PeerId, payload, category: str, size_bytes: int) -> None:
        try:
            self.endpoint.send(
                peer_id,
                GOSSIP_PROTOCOL,
                payload,
                category=category,
                size_bytes=size_bytes,
            )
        except Exception:
            # A federated peer with no route yet (or mid-crash) is a normal
            # epidemic condition: some other round will repair it.
            pass

    # -- reporting -----------------------------------------------------------------------

    def convergence_times(self) -> Dict[str, float]:
        """key -> simulated time this rendezvous first learned it."""
        return dict(self.seen_at)
