"""The peer: one participant on the JXTA-like network.

A :class:`Peer` stacks the protocol services on one simulated host:
endpoint → (rendezvous, resolver) → discovery / groups / pipes /
membership.  B-peers (:mod:`repro.core.bpeer`) build on this class.
"""

from __future__ import annotations

from typing import Optional

from ..simnet.network import Network
from ..simnet.node import Node
from .advertisement import PeerAdvertisement
from .cache import AdvertisementCache
from .discovery import DiscoveryService
from .endpoint import ENDPOINT_PORT, EndpointService
from .ids import PeerId
from .membership import MembershipService
from .peergroup import GroupService
from .pipes import PipeService
from .rendezvous import RendezvousService
from .resolver import ResolverService

__all__ = ["Peer"]


class Peer:
    """A full JXTA-like protocol stack on one host."""

    def __init__(
        self,
        node: Node,
        name: Optional[str] = None,
        is_rendezvous: bool = False,
        nat_isolated: bool = False,
        port: int = ENDPOINT_PORT,
    ):
        self.node = node
        self.env = node.env
        self.name = name or node.name
        self.peer_id = PeerId.from_name(self.name)
        self.endpoint = EndpointService(
            node, self.peer_id, port=port, nat_isolated=nat_isolated
        )
        self.cache = AdvertisementCache(
            clock=lambda: self.env.now, metrics=node.network.obs.metrics
        )
        self.rendezvous = RendezvousService(self.endpoint, is_rendezvous=is_rendezvous)
        self.resolver = ResolverService(self.endpoint, self.rendezvous)
        self.discovery = DiscoveryService(self.resolver, self.cache, self.rendezvous)
        self.groups = GroupService(self.endpoint, self.rendezvous, self.resolver)
        self.pipes = PipeService(self.endpoint, self.resolver, self.rendezvous)
        self.membership = MembershipService(self.peer_id, clock=lambda: self.env.now)

    # -- convenience -----------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self.node.up

    def advertisement(self) -> PeerAdvertisement:
        """This peer's own peer advertisement."""
        return PeerAdvertisement(
            peer_id=self.peer_id,
            name=self.name,
            host=self.node.name,
            port=self.endpoint.port,
        )

    def publish_self(self, remote: bool = True) -> PeerAdvertisement:
        """Publish this peer's advertisement (locally, and via SRDI)."""
        advertisement = self.advertisement()
        self.discovery.publish(advertisement, remote=remote)
        return advertisement

    def attach_to(self, rendezvous_peer: "Peer") -> None:
        """Connect to a rendezvous peer (lease + route setup)."""
        self.endpoint.add_route(
            rendezvous_peer.peer_id, rendezvous_peer.endpoint.address
        )
        self.rendezvous.connect(rendezvous_peer.peer_id)

    def learn_route_to(self, other: "Peer") -> None:
        """Directly learn another peer's address (same-LAN shortcut)."""
        self.endpoint.add_route(other.peer_id, other.endpoint.address)

    def __repr__(self) -> str:
        role = "rdv" if self.rendezvous.is_rendezvous else "edge"
        return f"<Peer {self.name} ({role}) on {self.node.name}>"


def create_peer_network(
    network: Network,
    edge_count: int,
    rendezvous_name: str = "rdv0",
    edge_prefix: str = "peer",
) -> tuple:
    """Convenience: one rendezvous + N edges, all attached and published.

    Returns ``(rendezvous_peer, [edge_peers])``.
    """
    rdv_node = network.add_host(rendezvous_name)
    rendezvous = Peer(rdv_node, is_rendezvous=True)
    rendezvous.publish_self(remote=False)
    edges = []
    for index in range(edge_count):
        node = network.add_host(f"{edge_prefix}{index}")
        peer = Peer(node)
        peer.attach_to(rendezvous)
        peer.publish_self(remote=True)
        edges.append(peer)
    return rendezvous, edges
