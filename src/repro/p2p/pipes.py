"""JXTA pipes: unicast and propagate virtual channels.

A pipe decouples *what* you talk to (a pipe ID from a pipe advertisement)
from *where* it lives (whichever peer currently binds an input pipe for
that ID).  Binding an output pipe resolves the current host through the
resolver — the same indirection Whisper's proxy uses to survive b-peer
failover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from ..simnet.events import AnyOf
from ..simnet.queues import Store
from .advertisement import PipeAdvertisement
from .endpoint import EndpointMessage, EndpointService, UnresolvablePeerError
from .ids import PeerId, PipeId
from .rendezvous import RendezvousService
from .resolver import ResolverQuery, ResolverService

__all__ = [
    "PipeService",
    "InputPipe",
    "OutputPipe",
    "PropagatePipe",
    "PipeBindError",
]

PROTOCOL = "jxta:pipe"
PROPAGATE_PROTOCOL = "jxta:pipe-propagate"
BINDING_HANDLER = "jxta:pipe-binding"


class PipeBindError(Exception):
    """No peer answered the pipe-binding resolution in time."""


@dataclass
class _PipeDatagram:
    pipe_id: PipeId
    payload: Any
    src_peer: PeerId


class InputPipe:
    """The receiving end of a pipe, bound on one peer."""

    def __init__(self, service: "PipeService", advertisement: PipeAdvertisement):
        self._service = service
        self.advertisement = advertisement
        self.inbox: Store = Store(service.endpoint.node.env)
        self.closed = False

    @property
    def pipe_id(self) -> PipeId:
        return self.advertisement.pipe_id

    def recv(self):
        """Event yielding the next :class:`_PipeDatagram` payload."""
        return self.inbox.get()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._service._input_pipes.pop(self.pipe_id, None)


class OutputPipe:
    """The sending end, resolved to whichever peer binds the input pipe."""

    def __init__(
        self,
        service: "PipeService",
        advertisement: PipeAdvertisement,
        remote_peer: PeerId,
    ):
        self._service = service
        self.advertisement = advertisement
        self.remote_peer = remote_peer

    def send(self, payload: Any, size_bytes: int = 512) -> None:
        datagram = _PipeDatagram(
            pipe_id=self.advertisement.pipe_id,
            payload=payload,
            src_peer=self._service.endpoint.peer_id,
        )
        endpoint = self._service.endpoint
        try:
            endpoint.send(
                self.remote_peer,
                PROTOCOL,
                datagram,
                category="pipe",
                size_bytes=size_bytes,
            )
        except UnresolvablePeerError:
            # No direct route to the binder: relay through the rendezvous.
            rendezvous = self._service.rendezvous
            if rendezvous is None or rendezvous.connected_to is None:
                raise
            endpoint.send_via(
                rendezvous.connected_to,
                self.remote_peer,
                PROTOCOL,
                datagram,
                category="pipe",
                size_bytes=size_bytes,
            )


class PropagatePipe:
    """A one-to-many pipe (JXTA's ``JxtaPropagate`` type).

    Every peer that opens the same propagate-pipe advertisement receives
    each message sent into it; delivery rides the rendezvous propagation
    path, so the sender does not need to know the listeners.
    """

    def __init__(self, service: "PipeService", advertisement: PipeAdvertisement):
        if advertisement.pipe_type != PipeAdvertisement.PROPAGATE:
            raise ValueError(
                f"advertisement {advertisement.name!r} is not a propagate pipe"
            )
        self._service = service
        self.advertisement = advertisement
        self.inbox: Store = Store(service.endpoint.node.env)
        self.closed = False
        service._propagate_pipes.setdefault(advertisement.pipe_id, []).append(self)

    @property
    def pipe_id(self) -> PipeId:
        return self.advertisement.pipe_id

    def send(self, payload: Any, size_bytes: int = 512) -> None:
        """Deliver ``payload`` to every open copy of this pipe."""
        if self._service.rendezvous is None:
            raise PipeBindError("propagate pipes require a rendezvous service")
        datagram = _PipeDatagram(
            pipe_id=self.pipe_id,
            payload=payload,
            src_peer=self._service.endpoint.peer_id,
        )
        self._service.rendezvous.propagate(
            PROPAGATE_PROTOCOL, datagram, size_bytes=size_bytes
        )

    def recv(self):
        """Event yielding the next inbound :class:`_PipeDatagram`."""
        return self.inbox.get()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            pipes = self._service._propagate_pipes.get(self.pipe_id, [])
            if self in pipes:
                pipes.remove(self)


class PipeService:
    """Pipe creation, binding resolution, and inbound dispatch for one peer."""

    def __init__(
        self,
        endpoint: EndpointService,
        resolver: ResolverService,
        rendezvous: Optional[RendezvousService] = None,
    ):
        self.endpoint = endpoint
        self.resolver = resolver
        self.rendezvous = rendezvous
        self.env = endpoint.node.env
        self._input_pipes: Dict[PipeId, InputPipe] = {}
        self._propagate_pipes: Dict[PipeId, List[PropagatePipe]] = {}
        endpoint.register_listener(PROTOCOL, self._on_message)
        resolver.register_handler(BINDING_HANDLER, self._handle_binding_query)
        if rendezvous is not None:
            rendezvous.register_propagate_listener(
                PROPAGATE_PROTOCOL, self._on_propagated
            )
        endpoint.node.on_crash(lambda _node: self._on_crash())

    # -- input side --------------------------------------------------------------------

    def create_input_pipe(self, advertisement: PipeAdvertisement) -> InputPipe:
        """Bind the receiving end of ``advertisement`` on this peer."""
        pipe = InputPipe(self, advertisement)
        self._input_pipes[advertisement.pipe_id] = pipe
        return pipe

    def open_propagate_pipe(self, advertisement: PipeAdvertisement) -> PropagatePipe:
        """Open (join) a one-to-many propagate pipe on this peer."""
        return PropagatePipe(self, advertisement)

    # -- output side -----------------------------------------------------------------------

    def bind_output_pipe(
        self, advertisement: PipeAdvertisement, timeout: float = 1.0
    ) -> Generator:
        """Resolve who binds the input pipe and return an :class:`OutputPipe`.

        A generator (``yield from``); raises :class:`PipeBindError` when no
        binder answers within ``timeout``.
        """
        answers: List[PeerId] = []
        done = self.env.event()

        def on_response(response) -> None:
            answers.append(response.payload)
            if not done.triggered:
                done.succeed()

        query_id = self.resolver.send_query(
            BINDING_HANDLER,
            advertisement.pipe_id,
            on_response=on_response,
            size_bytes=128,
        )
        timer = self.env.timeout(timeout)
        yield AnyOf(self.env, [done, timer])
        self.resolver.cancel_query(query_id)
        if not answers:
            raise PipeBindError(
                f"no peer binds pipe {advertisement.name!r} ({advertisement.pipe_id})"
            )
        return OutputPipe(self, advertisement, answers[0])

    # -- inbound -------------------------------------------------------------------------------

    def _on_message(self, message: EndpointMessage) -> None:
        datagram: _PipeDatagram = message.payload
        pipe = self._input_pipes.get(datagram.pipe_id)
        if pipe is not None and not pipe.closed:
            pipe.inbox.put(datagram)

    def _on_propagated(self, payload: Any, _origin: PeerId) -> None:
        datagram: _PipeDatagram = payload
        for pipe in self._propagate_pipes.get(datagram.pipe_id, []):
            if not pipe.closed:
                pipe.inbox.put(datagram)

    def _handle_binding_query(self, query: ResolverQuery) -> Optional[PeerId]:
        pipe_id: PipeId = query.payload
        if pipe_id in self._input_pipes:
            return self.endpoint.peer_id
        return None

    def _on_crash(self) -> None:
        self._input_pipes.clear()
        self._propagate_pipes.clear()
