"""JXTA advertisements, including Whisper's *semantic advertisements*.

"All resources in JXTA networks are represented by a metadata XML document
called an advertisement" (§4.3).  We implement the standard kinds (peer,
peer group, pipe) plus the paper's contribution: an *extendable*
advertisement carrying the semantic signature (action / input / output
ontology concepts) of a b-peer group, so that discovery can match on
semantics instead of names.

Every advertisement serialises to an XML document and back; the XML length
is the advertisement's simulated wire size.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Tuple, Type

from .ids import PeerGroupId, PeerId, PipeId

__all__ = [
    "Advertisement",
    "PeerAdvertisement",
    "PeerGroupAdvertisement",
    "PipeAdvertisement",
    "SemanticAdvertisement",
    "AdvParseError",
    "advertisement_from_xml",
    "DEFAULT_LIFETIME",
]

#: Default advertisement lifetime in seconds (JXTA defaults are hours; we
#: scale to simulation runs).
DEFAULT_LIFETIME = 3600.0


class AdvParseError(Exception):
    """Raised when an advertisement document cannot be interpreted."""


_REGISTRY: Dict[str, Type["Advertisement"]] = {}

#: When True (the default) each advertisement renders its XML at most
#: once and serves the cached document/size afterwards.  Discovery and
#: rendezvous answer paths re-serialise the same advertisements for every
#: query, so rendering lazily-once removes an O(matches) XML build from
#: each response.  The perf harness flips this off to measure the eager
#: seed behaviour.
CACHE_XML = True


@dataclass
class Advertisement:
    """Base class: a typed, self-describing XML metadata document."""

    ADV_TYPE: ClassVar[str] = "jxta:Adv"

    lifetime: float = DEFAULT_LIFETIME

    # Plain class attributes (no annotation, so not dataclass fields):
    # per-instance caches shadow them on first render.
    _xml_cache = None
    _size_cache = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        _REGISTRY[cls.ADV_TYPE] = cls

    # -- identity ------------------------------------------------------------------

    def key(self) -> str:
        """Unique cache key (same key = same logical advertisement)."""
        raise NotImplementedError

    @property
    def adv_type(self) -> str:
        return self.ADV_TYPE

    # -- attributes for discovery queries -------------------------------------------

    def attributes(self) -> Dict[str, str]:
        """Flat attribute view used by discovery's attribute/value queries."""
        raise NotImplementedError

    # -- XML --------------------------------------------------------------------------

    def _body_elements(self) -> List[ET.Element]:
        raise NotImplementedError

    def to_xml(self) -> str:
        """Serialise (lazily: the rendered document is cached).

        Advertisements are value objects — built once, then matched and
        re-sent many times — so the first render is remembered.  Code
        that mutates an advertisement after rendering must call
        :meth:`invalidate_xml_cache`.
        """
        cached = self._xml_cache
        if cached is not None:
            return cached
        document = self._render_xml()
        if CACHE_XML:
            self._xml_cache = document
        return document

    def _render_xml(self) -> str:
        root = ET.Element(self.ADV_TYPE.replace(":", "_"))
        root.set("type", self.ADV_TYPE)
        root.set("lifetime", repr(self.lifetime))
        for element in self._body_elements():
            root.append(element)
        return ET.tostring(root, encoding="unicode", xml_declaration=True)

    def invalidate_xml_cache(self) -> None:
        """Drop the cached rendering after a field mutation."""
        self._xml_cache = None
        self._size_cache = None

    @classmethod
    def _from_element(cls, root: ET.Element) -> "Advertisement":
        raise NotImplementedError

    def size_bytes(self) -> int:
        cached = self._size_cache
        if cached is not None:
            return cached
        size = len(self.to_xml().encode())
        if CACHE_XML:
            self._size_cache = size
        return size


def advertisement_from_xml(document: str) -> Advertisement:
    """Parse any registered advertisement type from its XML form."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as error:
        raise AdvParseError(f"malformed advertisement XML: {error}") from error
    adv_type = root.get("type", "")
    cls = _REGISTRY.get(adv_type)
    if cls is None:
        raise AdvParseError(f"unknown advertisement type {adv_type!r}")
    advertisement = cls._from_element(root)
    lifetime = root.get("lifetime")
    if lifetime is not None:
        advertisement.lifetime = float(lifetime)
    return advertisement


def _text_element(tag: str, text: str) -> ET.Element:
    element = ET.Element(tag)
    element.text = text
    return element


def _required_text(root: ET.Element, tag: str) -> str:
    text = root.findtext(tag)
    if text is None:
        raise AdvParseError(f"advertisement lacks <{tag}>")
    return text


@dataclass
class PeerAdvertisement(Advertisement):
    """Announces a peer and its endpoint address."""

    ADV_TYPE: ClassVar[str] = "jxta:PA"

    peer_id: PeerId = None
    name: str = ""
    host: str = ""
    port: int = 0

    def key(self) -> str:
        return f"PA:{self.peer_id.urn}"

    def attributes(self) -> Dict[str, str]:
        return {"Name": self.name, "PID": self.peer_id.urn}

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def _body_elements(self) -> List[ET.Element]:
        return [
            _text_element("PID", self.peer_id.urn),
            _text_element("Name", self.name),
            _text_element("Host", self.host),
            _text_element("Port", str(self.port)),
        ]

    @classmethod
    def _from_element(cls, root: ET.Element) -> "PeerAdvertisement":
        return cls(
            peer_id=PeerId.from_urn(_required_text(root, "PID")),
            name=_required_text(root, "Name"),
            host=_required_text(root, "Host"),
            port=int(_required_text(root, "Port")),
        )


@dataclass
class PeerGroupAdvertisement(Advertisement):
    """Announces a peer group."""

    ADV_TYPE: ClassVar[str] = "jxta:PGA"

    group_id: PeerGroupId = None
    name: str = ""
    description: str = ""

    def key(self) -> str:
        return f"PGA:{self.group_id.urn}"

    def attributes(self) -> Dict[str, str]:
        return {"Name": self.name, "GID": self.group_id.urn}

    def _body_elements(self) -> List[ET.Element]:
        return [
            _text_element("GID", self.group_id.urn),
            _text_element("Name", self.name),
            _text_element("Desc", self.description),
        ]

    @classmethod
    def _from_element(cls, root: ET.Element) -> "PeerGroupAdvertisement":
        return cls(
            group_id=PeerGroupId.from_urn(_required_text(root, "GID")),
            name=_required_text(root, "Name"),
            description=root.findtext("Desc", ""),
        )


@dataclass
class PipeAdvertisement(Advertisement):
    """Announces a communication pipe."""

    ADV_TYPE: ClassVar[str] = "jxta:PipeAdv"

    UNICAST: ClassVar[str] = "JxtaUnicast"
    PROPAGATE: ClassVar[str] = "JxtaPropagate"

    pipe_id: PipeId = None
    name: str = ""
    pipe_type: str = "JxtaUnicast"

    def key(self) -> str:
        return f"Pipe:{self.pipe_id.urn}"

    def attributes(self) -> Dict[str, str]:
        return {"Name": self.name, "PipeID": self.pipe_id.urn, "Type": self.pipe_type}

    def _body_elements(self) -> List[ET.Element]:
        return [
            _text_element("PipeID", self.pipe_id.urn),
            _text_element("Name", self.name),
            _text_element("Type", self.pipe_type),
        ]

    @classmethod
    def _from_element(cls, root: ET.Element) -> "PipeAdvertisement":
        return cls(
            pipe_id=PipeId.from_urn(_required_text(root, "PipeID")),
            name=_required_text(root, "Name"),
            pipe_type=_required_text(root, "Type"),
        )


@dataclass
class SemanticAdvertisement(Advertisement):
    """Whisper's new advertisement kind (§4.3).

    Extends a peer-group advertisement with the group's semantic signature:
    the *action* concept (functional semantics, §2.3) and the *input* /
    *output* concepts (data semantics, §2.2), all URIs into a shared OWL
    ontology.  The SWS-proxy's ``findPeerGroupAdv`` (§3.2) matches against
    exactly these three fields.
    """

    ADV_TYPE: ClassVar[str] = "whisper:SemanticAdv"

    group_id: PeerGroupId = None
    name: str = ""
    action: str = ""
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    ontology_uri: str = ""
    description: str = ""
    #: Optional QoS annotations (§2.4's "semantic QoS integration", which
    #: the paper flags as the further integration dimension): the group's
    #: advertised expected response time (s), cost per invocation, and
    #: reliability in [0, 1].  ``None`` means unadvertised.
    qos_time: Optional[float] = None
    qos_cost: Optional[float] = None
    qos_reliability: Optional[float] = None
    #: Semantic-sharding annotations: this group's position in a
    #: federated shard set partitioning the service keyspace.  Both stay
    #: ``None`` for single-group deployments so unsharded advertisements
    #: (and their wire sizes) are byte-identical to the seed's.
    shard_index: Optional[int] = None
    shard_count: Optional[int] = None
    #: Home region of the advertised group in multi-region topologies
    #: (nearest-region proxy preference keys on it).  Stays ``None`` on
    #: single-region deployments — wire format byte-identical to the seed.
    region: Optional[str] = None

    def key(self) -> str:
        return f"SemAdv:{self.group_id.urn}"

    def attributes(self) -> Dict[str, str]:
        attrs = {
            "Name": self.name,
            "GID": self.group_id.urn,
            "Action": self.action,
            "Ontology": self.ontology_uri,
        }
        if self.shard_count is not None:
            attrs["Shard"] = str(self.shard_index)
            attrs["Shards"] = str(self.shard_count)
        if self.region is not None:
            attrs["Region"] = self.region
        return attrs

    @property
    def sharded(self) -> bool:
        """True when this group is one shard of a federated set."""
        return self.shard_count is not None and self.shard_count > 1

    # Accessors named after the paper's listing (§3.2).

    def get_sem_action(self) -> str:
        return self.action

    def get_sem_input(self) -> Tuple[str, ...]:
        return self.inputs

    def get_sem_output(self) -> Tuple[str, ...]:
        return self.outputs

    @property
    def has_qos(self) -> bool:
        """True when all three QoS dimensions are advertised."""
        return (
            self.qos_time is not None
            and self.qos_cost is not None
            and self.qos_reliability is not None
        )

    def _body_elements(self) -> List[ET.Element]:
        elements = [
            _text_element("GID", self.group_id.urn),
            _text_element("Name", self.name),
            _text_element("Action", self.action),
            _text_element("Ontology", self.ontology_uri),
        ]
        if self.description:
            elements.append(_text_element("Desc", self.description))
        for concept in self.inputs:
            elements.append(_text_element("Input", concept))
        for concept in self.outputs:
            elements.append(_text_element("Output", concept))
        if self.qos_time is not None:
            elements.append(_text_element("QosTime", repr(self.qos_time)))
        if self.qos_cost is not None:
            elements.append(_text_element("QosCost", repr(self.qos_cost)))
        if self.qos_reliability is not None:
            elements.append(
                _text_element("QosReliability", repr(self.qos_reliability))
            )
        if self.shard_index is not None:
            elements.append(_text_element("ShardIndex", str(self.shard_index)))
        if self.shard_count is not None:
            elements.append(_text_element("ShardCount", str(self.shard_count)))
        if self.region is not None:
            elements.append(_text_element("Region", self.region))
        return elements

    @classmethod
    def _from_element(cls, root: ET.Element) -> "SemanticAdvertisement":
        def _optional_float(tag: str) -> Optional[float]:
            text = root.findtext(tag)
            return float(text) if text is not None else None

        def _optional_int(tag: str) -> Optional[int]:
            text = root.findtext(tag)
            return int(text) if text is not None else None

        return cls(
            group_id=PeerGroupId.from_urn(_required_text(root, "GID")),
            name=_required_text(root, "Name"),
            action=_required_text(root, "Action"),
            ontology_uri=root.findtext("Ontology", ""),
            description=root.findtext("Desc", ""),
            inputs=tuple(e.text or "" for e in root.findall("Input")),
            outputs=tuple(e.text or "" for e in root.findall("Output")),
            qos_time=_optional_float("QosTime"),
            qos_cost=_optional_float("QosCost"),
            qos_reliability=_optional_float("QosReliability"),
            shard_index=_optional_int("ShardIndex"),
            shard_count=_optional_int("ShardCount"),
            region=root.findtext("Region"),
        )
