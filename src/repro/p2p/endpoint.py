"""The endpoint service: peer-ID-addressed messaging.

JXTA's endpoint service provides "an abstract network transport capable of
transporting messages between peers, either directly, or via relay peers"
(§5).  Ours does the same: peers address each other by :class:`PeerId`;
the endpoint resolves IDs to transport addresses from peer advertisements,
dispatches inbound messages to per-protocol listeners, and routes through
a relay when the destination is NAT-isolated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..simnet.events import Interrupt
from ..simnet.message import Address, Message
from ..simnet.node import Node
from .ids import PeerId

__all__ = ["EndpointService", "EndpointMessage", "UnresolvablePeerError"]

#: The well-known port every peer's endpoint listens on.
ENDPOINT_PORT = 9701


class UnresolvablePeerError(Exception):
    """The endpoint has no route (no peer advertisement) for a peer ID."""


@dataclass
class EndpointMessage:
    """The JXTA-level message carried inside a transport datagram."""

    src_peer: PeerId
    dst_peer: PeerId
    protocol: str
    payload: Any
    #: When set, the message is being relayed: deliver to ``dst_peer``.
    relayed: bool = False
    headers: Dict[str, Any] = field(default_factory=dict)


#: Listener signature: ``listener(endpoint_message)``.
Listener = Callable[[EndpointMessage], None]


class EndpointService:
    """One peer's messaging endpoint."""

    def __init__(
        self,
        node: Node,
        peer_id: PeerId,
        port: int = ENDPOINT_PORT,
        nat_isolated: bool = False,
    ):
        self.node = node
        self.peer_id = peer_id
        self.port = port
        self.nat_isolated = nat_isolated
        self._routes: Dict[PeerId, Address] = {}
        self._nat_peers: Dict[PeerId, bool] = {}
        self._listeners: Dict[str, Listener] = {}
        self.relay_peer: Optional[PeerId] = None
        #: Last-resort forwarding for relayed envelopes with no local route
        #: (federated rendezvous install one: the destination may be leased
        #: to a rendezvous in another region).  Returns True if it re-routed
        #: the envelope; the default None keeps the seed's drop behaviour.
        self.relay_fallback: Optional[
            Callable[[EndpointMessage, Message], bool]
        ] = None
        self.messages_in = 0
        self.messages_out = 0
        self._socket = None
        self.start()
        node.on_crash(lambda _node: self._teardown())
        node.on_restart(lambda _node: self.start())

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._socket is not None and not self._socket.closed:
            return
        self._socket = self.node.transport.bind(self.port)
        self.node.spawn(self._receive_loop(), name=f"endpoint:{self.node.name}")

    def _teardown(self) -> None:
        """Release the port immediately on crash (the receive loop's
        interrupt is delivered asynchronously)."""
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    @property
    def address(self) -> Address:
        return (self.node.name, self.port)

    # -- routing table ---------------------------------------------------------------

    def add_route(
        self, peer_id: PeerId, address: Address, nat_isolated: bool = False
    ) -> None:
        """Learn (typically from a peer advertisement) where a peer lives."""
        self._routes[peer_id] = address
        self._nat_peers[peer_id] = nat_isolated

    def route_for(self, peer_id: PeerId) -> Optional[Address]:
        return self._routes.get(peer_id)

    def set_relay(self, relay_peer: PeerId) -> None:
        """Use ``relay_peer`` to reach NAT-isolated destinations."""
        self.relay_peer = relay_peer

    # -- listeners --------------------------------------------------------------------

    def register_listener(self, protocol: str, listener: Listener) -> None:
        """Dispatch inbound messages for ``protocol`` to ``listener``."""
        self._listeners[protocol] = listener

    def unregister_listener(self, protocol: str) -> None:
        self._listeners.pop(protocol, None)

    # -- sending -----------------------------------------------------------------------

    def send(
        self,
        dst_peer: PeerId,
        protocol: str,
        payload: Any,
        category: Optional[str] = None,
        size_bytes: int = 512,
    ) -> None:
        """Send a message to another peer by ID.

        Raises :class:`UnresolvablePeerError` when no route is known and no
        relay can help.  Sending is fire-and-forget (datagram semantics);
        loss happens silently, exactly like a real crashed peer.
        """
        envelope = EndpointMessage(
            src_peer=self.peer_id,
            dst_peer=dst_peer,
            protocol=protocol,
            payload=payload,
        )
        self._transmit(envelope, category or protocol, size_bytes)

    def send_via(
        self,
        via_peer: PeerId,
        dst_peer: PeerId,
        protocol: str,
        payload: Any,
        category: Optional[str] = None,
        size_bytes: int = 512,
    ) -> None:
        """Send to ``dst_peer`` through ``via_peer`` (e.g. a rendezvous).

        Used when the sender has no direct route to the destination; the
        intermediate hop forwards from its own routing table.
        """
        address = self._routes.get(via_peer)
        if address is None:
            raise UnresolvablePeerError(f"no route to via-peer {via_peer}")
        envelope = EndpointMessage(
            src_peer=self.peer_id,
            dst_peer=dst_peer,
            protocol=protocol,
            payload=payload,
            relayed=True,
        )
        self.messages_out += 1
        self._socket.send(
            address, payload=envelope, category=category or protocol, size_bytes=size_bytes
        )

    def _transmit(
        self, envelope: EndpointMessage, category: str, size_bytes: int
    ) -> None:
        dst_peer = envelope.dst_peer
        address = self._routes.get(dst_peer)
        needs_relay = (
            self._nat_peers.get(dst_peer, False) or self.nat_isolated
        ) and dst_peer != self.relay_peer

        if needs_relay:
            if self.relay_peer is None:
                raise UnresolvablePeerError(
                    f"{dst_peer} is NAT-isolated and no relay is configured"
                )
            relay_address = self._routes.get(self.relay_peer)
            if relay_address is None:
                raise UnresolvablePeerError(f"no route to relay {self.relay_peer}")
            envelope.relayed = True
            self.messages_out += 1
            self._socket.send(
                relay_address,
                payload=envelope,
                category=category,
                size_bytes=size_bytes,
            )
            return

        if address is None:
            raise UnresolvablePeerError(f"no route to {dst_peer}")
        self.messages_out += 1
        self._socket.send(
            address, payload=envelope, category=category, size_bytes=size_bytes
        )

    # -- receiving ----------------------------------------------------------------------

    def _receive_loop(self):
        socket = self._socket
        try:
            while True:
                message: Message = yield socket.recv()
                envelope = message.payload
                if not isinstance(envelope, EndpointMessage):
                    continue
                if envelope.dst_peer != self.peer_id:
                    # We are acting as a relay hop: forward to the target.
                    self._relay_forward(envelope, message)
                    continue
                self.messages_in += 1
                listener = self._listeners.get(envelope.protocol)
                if listener is not None:
                    listener(envelope)
        except Interrupt:
            socket.close()
            if self._socket is socket:
                self._socket = None

    def _relay_forward(self, envelope: EndpointMessage, message: Message) -> None:
        address = self._routes.get(envelope.dst_peer)
        if address is None:
            if self.relay_fallback is not None:
                self.relay_fallback(envelope, message)
            return  # relay cannot help locally; fallback or drop
        self._socket.send(
            address,
            payload=envelope,
            category=message.category,
            size_bytes=message.size_bytes,
        )
