"""JXTA-style identifiers.

JXTA names every resource — peers, peer groups, pipes — with a URN of the
form ``urn:jxta:uuid-<hex>``.  We generate the UUID part deterministically
from the resource's kind and name (SHA-256, UUIDv5-style), which keeps
whole simulations reproducible while preserving global uniqueness across
differently named resources.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["JxtaId", "PeerId", "PeerGroupId", "PipeId", "WORLD_GROUP_ID"]


@dataclass(frozen=True, order=True)
class JxtaId:
    """Base identifier; subclasses fix the ``kind`` tag."""

    uuid_hex: str

    KIND = "generic"

    @classmethod
    def from_name(cls, name: str) -> "JxtaId":
        digest = hashlib.sha256(f"jxta:{cls.KIND}:{name}".encode()).hexdigest()
        return cls(digest[:32].upper())

    @property
    def urn(self) -> str:
        return f"urn:jxta:uuid-{self.uuid_hex}"

    @classmethod
    def from_urn(cls, urn: str) -> "JxtaId":
        prefix = "urn:jxta:uuid-"
        if not urn.startswith(prefix):
            raise ValueError(f"not a JXTA URN: {urn!r}")
        return cls(urn[len(prefix):])

    def __str__(self) -> str:
        return self.urn

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.uuid_hex[:8]}…>"


class PeerId(JxtaId):
    """Identifies one peer."""

    KIND = "peer"


class PeerGroupId(JxtaId):
    """Identifies a peer group."""

    KIND = "peergroup"


class PipeId(JxtaId):
    """Identifies a pipe."""

    KIND = "pipe"


#: The world group every peer implicitly belongs to (JXTA's NetPeerGroup).
WORLD_GROUP_ID = PeerGroupId.from_name("jxta:world")
