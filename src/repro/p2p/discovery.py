"""The discovery service.

"B-peers publish and discover advertisements representing other resources
such as b-peers and b-peer groups" (§4.3).  Discovery has two halves:

* **local** — query the peer's own advertisement cache (the paper's
  ``discovery.getLocalAdvertisements`` in the §3.2 listing);
* **remote** — propagate a resolver query through the rendezvous; every
  peer (and the rendezvous' SRDI index) answers with matching
  advertisement documents, which land in the querying peer's local cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Type

from ..simnet.events import AnyOf
from .advertisement import Advertisement, advertisement_from_xml
from .cache import AdvertisementCache
from .rendezvous import RendezvousService
from .resolver import ResolverQuery, ResolverService

__all__ = ["DiscoveryService", "DiscoveryQuery", "HANDLER_NAME"]

HANDLER_NAME = "jxta:discovery"

#: How many advertisements one response message may carry.
MAX_RESPONSES_PER_PEER = 20


@dataclass
class DiscoveryQuery:
    """The wire form of a remote discovery request."""

    adv_type: Optional[str]
    attribute: Optional[str]
    value: Optional[str]
    threshold: int = MAX_RESPONSES_PER_PEER


class DiscoveryService:
    """One peer's discovery service."""

    def __init__(
        self,
        resolver: ResolverService,
        cache: AdvertisementCache,
        rendezvous: RendezvousService,
    ):
        self.resolver = resolver
        self.cache = cache
        self.rendezvous = rendezvous
        self.env = resolver.endpoint.node.env
        self.remote_queries = 0
        resolver.register_handler(HANDLER_NAME, self._handle_query)

    # -- publishing -----------------------------------------------------------------

    def publish(self, advertisement: Advertisement, remote: bool = False) -> None:
        """Store an advertisement locally; optionally index it network-wide.

        ``remote=True`` additionally pushes the document to the connected
        rendezvous' SRDI index so other peers' remote queries can find it
        without this peer being asked.
        """
        self.cache.publish(advertisement)
        if remote:
            self.rendezvous.push_srdi([advertisement])

    def flush(self, advertisement: Advertisement) -> None:
        """Remove an advertisement from the local cache."""
        self.cache.remove(advertisement.key())

    # -- local queries (paper §3.2: getLocalAdvertisements) -----------------------------

    def get_local_advertisements(
        self,
        adv_type: Optional[Type[Advertisement]] = None,
        attribute: Optional[str] = None,
        value: Optional[str] = None,
    ) -> List[Advertisement]:
        return self.cache.query(adv_type=adv_type, attribute=attribute, value=value)

    # -- remote queries --------------------------------------------------------------------

    def get_remote_advertisements(
        self,
        adv_type: Optional[Type[Advertisement]] = None,
        attribute: Optional[str] = None,
        value: Optional[str] = None,
        timeout: float = 1.0,
        threshold: int = MAX_RESPONSES_PER_PEER,
    ) -> Generator:
        """Query the network; returns matching advertisements (``yield from``).

        Waits until ``threshold`` advertisements arrive or ``timeout``
        elapses, whichever is first.  Every received advertisement is also
        published into the local cache, so subsequent local queries hit.
        """
        self.remote_queries += 1
        query = DiscoveryQuery(
            adv_type=adv_type.ADV_TYPE if adv_type is not None else None,
            attribute=attribute,
            value=value,
            threshold=threshold,
        )
        collected: List[Advertisement] = []
        seen_keys = set()
        done = self.env.event()

        def on_response(response) -> None:
            for document in response.payload:
                advertisement = advertisement_from_xml(document)
                if advertisement.key() in seen_keys:
                    continue
                seen_keys.add(advertisement.key())
                self.cache.publish(advertisement)
                collected.append(advertisement)
            if len(collected) >= threshold and not done.triggered:
                done.succeed()

        query_id = self.resolver.send_query(
            HANDLER_NAME, query, on_response=on_response, size_bytes=256
        )
        timer = self.env.timeout(timeout)
        yield AnyOf(self.env, [done, timer])
        self.resolver.cancel_query(query_id)
        return list(collected)

    # -- answering remote queries --------------------------------------------------------------

    def _handle_query(self, query: ResolverQuery) -> Optional[Any]:
        request: DiscoveryQuery = query.payload
        matches = self._match_request(request)
        # A rendezvous additionally answers from its SRDI index, covering
        # advertisements published by edges that are not asked directly.
        if self.rendezvous.is_rendezvous and self.rendezvous.srdi:
            probe = DiscoveryQuery(
                adv_type=request.adv_type,
                attribute=request.attribute,
                value=request.value,
            )
            for advertisement in self.rendezvous.srdi_lookup(
                lambda adv: _matches(adv, probe)
            ):
                if advertisement.key() not in {m.key() for m in matches}:
                    matches.append(advertisement)
        if not matches:
            return None
        limited = matches[: request.threshold]
        return [advertisement.to_xml() for advertisement in limited]

    def _match_request(self, request: DiscoveryQuery) -> List[Advertisement]:
        return [
            advertisement
            for advertisement in self.cache.query()
            if _matches(advertisement, request)
        ]


def _matches(advertisement: Advertisement, request: DiscoveryQuery) -> bool:
    if request.adv_type is not None and advertisement.adv_type != request.adv_type:
        return False
    if request.attribute is not None:
        actual = advertisement.attributes().get(request.attribute)
        if actual is None:
            return False
        if request.value is not None:
            if request.value.endswith("*"):
                return actual.startswith(request.value[:-1])
            return actual == request.value
    return True
