"""The rendezvous service: leases, propagation, and the SRDI index.

JXTA networks scale by electing a few *rendezvous* peers that ordinary
*edge* peers connect to.  Edges hold a renewable lease with their
rendezvous; queries that need to reach "the network" are handed to the
rendezvous, which propagates them to its connected edges and consults its
Shared Resource Distributed Index (SRDI) of advertisement keys pushed by
edges.  Lease-renewal traffic is part of the per-peer message cost that
Figure 4 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..simnet.events import Interrupt
from ..simnet.message import Address
from .advertisement import Advertisement, advertisement_from_xml
from .endpoint import EndpointMessage, EndpointService
from .ids import PeerId

__all__ = ["RendezvousService", "PROTOCOL", "LEASE_DURATION"]

PROTOCOL = "jxta:rdv"

#: Default lease duration and renewal period (seconds).
LEASE_DURATION = 30.0
RENEW_PERIOD = LEASE_DURATION / 2


@dataclass
class _LeaseRequest:
    peer_id: PeerId
    address: Address
    nat_isolated: bool = False


@dataclass
class _LeaseGrant:
    rendezvous_id: PeerId
    duration: float


@dataclass
class _PropagateRequest:
    """An edge asks its rendezvous to fan a datagram out to the group."""

    protocol: str
    payload: Any
    origin: PeerId
    ttl: int = 2


@dataclass
class _SrdiPush:
    """An edge pushes advertisement XML to the rendezvous index."""

    origin: PeerId
    documents: List[str] = field(default_factory=list)


class RendezvousService:
    """Either side of the rendezvous protocol, depending on ``is_rendezvous``."""

    def __init__(
        self,
        endpoint: EndpointService,
        is_rendezvous: bool = False,
        lease_duration: float = LEASE_DURATION,
    ):
        self.endpoint = endpoint
        self.env = endpoint.node.env
        self.is_rendezvous = is_rendezvous
        self.lease_duration = lease_duration
        #: rendezvous side: connected edge peers -> lease expiry time.
        self.clients: Dict[PeerId, float] = {}
        #: edge side: the rendezvous we hold a lease with.
        self.connected_to: Optional[PeerId] = None
        self.lease_expires_at: float = 0.0
        #: rendezvous side: SRDI advertisement documents by key.
        self.srdi: Dict[str, Tuple[PeerId, Advertisement]] = {}
        #: federation links to rendezvous peers in *other* regions
        #: (``peer_id -> address``).  Empty on single-region deployments,
        #: which keeps every code path below byte-identical to the seed.
        self.federated: Dict[PeerId, Address] = {}
        #: observers of inbound SRDI pushes, ``(key, origin, adv, xml)`` —
        #: the gossip layer subscribes here to pick up fresh advertisements.
        self.on_srdi_push: List[Callable[[str, PeerId, Advertisement, str], None]] = []
        #: local dispatch for propagated datagrams: protocol -> callback.
        self._propagate_listeners: Dict[str, Callable[[Any, PeerId], None]] = {}
        self._renew_process = None
        endpoint.register_listener(PROTOCOL, self._on_message)
        endpoint.node.on_crash(lambda _node: self._on_crash())

    # -- edge side ------------------------------------------------------------------

    def connect(self, rendezvous_id: PeerId) -> None:
        """Request a lease with ``rendezvous_id`` and keep renewing it."""
        self.connected_to = rendezvous_id
        self._send_lease_request()
        if self._renew_process is None or not self._renew_process.is_alive:
            self._renew_process = self.endpoint.node.spawn(
                self._renew_loop(), name=f"rdv-renew:{self.endpoint.node.name}"
            )

    def _send_lease_request(self) -> None:
        request = _LeaseRequest(
            peer_id=self.endpoint.peer_id,
            address=self.endpoint.address,
            nat_isolated=self.endpoint.nat_isolated,
        )
        self.endpoint.send(
            self.connected_to,
            PROTOCOL,
            ("lease-request", request),
            category="rdv-lease",
            size_bytes=256,
        )

    def _renew_loop(self):
        try:
            while True:
                yield self.env.timeout(self.lease_duration / 2)
                if self.connected_to is not None:
                    self._send_lease_request()
        except Interrupt:
            return

    @property
    def has_lease(self) -> bool:
        return self.connected_to is not None and self.env.now < self.lease_expires_at

    # -- federation (multi-region) --------------------------------------------------------

    def federate_with(self, peer_id: PeerId, address: Address) -> None:
        """Link this rendezvous to a peer-region rendezvous.

        Federated rendezvous forward propagated datagrams across the WAN
        (queries keep the paper's flood semantics between regions) and act
        as a relay of last resort for responses addressed to peers leased
        in another region.
        """
        if peer_id == self.endpoint.peer_id:
            return
        self.federated[peer_id] = address
        self.endpoint.add_route(peer_id, address)
        if self.endpoint.relay_fallback is None:
            self.endpoint.relay_fallback = self._federated_relay

    def _federated_relay(self, envelope, message) -> bool:
        """Forward an unroutable relayed envelope to the other regions.

        One federated hop only (the ``fed-hop`` header stops loops): the
        region actually holding the destination's lease has a route and
        delivers; the others drop silently, like any relay without a route.
        """
        if envelope.headers.get("fed-hop"):
            return False
        envelope.headers["fed-hop"] = True
        for address in self.federated.values():
            self.endpoint._socket.send(
                address,
                payload=envelope,
                category=message.category,
                size_bytes=message.size_bytes,
            )
        return True

    def _fan_out_federated(self, request: "_PropagateRequest", size_bytes: int) -> None:
        """Forward a propagated datagram to every federated rendezvous."""
        if not self.federated or request.ttl <= 0:
            return
        forwarded = _PropagateRequest(
            protocol=request.protocol,
            payload=request.payload,
            origin=request.origin,
            ttl=request.ttl - 1,
        )
        for peer_id in sorted(self.federated, key=lambda pid: pid.uuid_hex):
            self.endpoint.send(
                peer_id,
                PROTOCOL,
                ("propagate-fed", forwarded),
                category="rdv-propagate-fed",
                size_bytes=size_bytes,
            )

    # -- propagation --------------------------------------------------------------------

    def register_propagate_listener(
        self, protocol: str, listener: Callable[[Any, PeerId], None]
    ) -> None:
        """Receive datagrams propagated under ``protocol``."""
        self._propagate_listeners[protocol] = listener

    def propagate(self, protocol: str, payload: Any, size_bytes: int = 512) -> None:
        """Deliver ``payload`` to every reachable peer in the group.

        On a rendezvous this fans out to every leased edge; on an edge it
        asks the connected rendezvous to do so.  The origin also processes
        the datagram locally (JXTA loopback semantics).
        """
        origin = self.endpoint.peer_id
        request = _PropagateRequest(protocol=protocol, payload=payload, origin=origin)
        self._dispatch_local(request)
        if self.is_rendezvous:
            self._fan_out(request, exclude={origin}, size_bytes=size_bytes)
            self._fan_out_federated(request, size_bytes=size_bytes)
        elif self.connected_to is not None:
            self.endpoint.send(
                self.connected_to,
                PROTOCOL,
                ("propagate", request),
                category="rdv-propagate",
                size_bytes=size_bytes,
            )

    def _fan_out(
        self, request: _PropagateRequest, exclude: Set[PeerId], size_bytes: int = 512
    ) -> None:
        self._expire_clients()
        for client in sorted(self.clients, key=lambda pid: pid.uuid_hex):
            if client in exclude:
                continue
            self.endpoint.send(
                client,
                PROTOCOL,
                ("propagate-deliver", request),
                category="rdv-propagate",
                size_bytes=size_bytes,
            )

    def _dispatch_local(self, request: _PropagateRequest) -> None:
        listener = self._propagate_listeners.get(request.protocol)
        if listener is not None:
            listener(request.payload, request.origin)

    # -- SRDI ------------------------------------------------------------------------------

    def push_srdi(self, advertisements: List[Advertisement]) -> None:
        """Edge side: push advertisement documents to the rendezvous index."""
        if self.connected_to is None:
            return
        push = _SrdiPush(
            origin=self.endpoint.peer_id,
            documents=[adv.to_xml() for adv in advertisements],
        )
        total = sum(len(doc.encode()) for doc in push.documents) + 128
        self.endpoint.send(
            self.connected_to,
            PROTOCOL,
            ("srdi-push", push),
            category="srdi",
            size_bytes=total,
        )

    def srdi_lookup(self, predicate: Callable[[Advertisement], bool]) -> List[Advertisement]:
        """Rendezvous side: all indexed advertisements matching ``predicate``."""
        return [adv for (_origin, adv) in self.srdi.values() if predicate(adv)]

    # -- message handling ------------------------------------------------------------------

    def _on_message(self, message: EndpointMessage) -> None:
        kind, body = message.payload
        if kind == "lease-request" and self.is_rendezvous:
            request: _LeaseRequest = body
            self.endpoint.add_route(
                request.peer_id, request.address, nat_isolated=request.nat_isolated
            )
            self.clients[request.peer_id] = self.env.now + self.lease_duration
            grant = _LeaseGrant(self.endpoint.peer_id, self.lease_duration)
            self.endpoint.send(
                request.peer_id,
                PROTOCOL,
                ("lease-grant", grant),
                category="rdv-lease",
                size_bytes=128,
            )
        elif kind == "lease-grant":
            grant: _LeaseGrant = body
            if grant.rendezvous_id == self.connected_to:
                self.lease_expires_at = self.env.now + grant.duration
        elif kind == "propagate" and self.is_rendezvous:
            request: _PropagateRequest = body
            self._dispatch_local(request)
            self._fan_out(request, exclude={request.origin, message.src_peer})
            self._fan_out_federated(request, size_bytes=512)
        elif kind == "propagate-fed" and self.is_rendezvous:
            # A peer-region rendezvous forwarded a propagated datagram:
            # deliver locally and to our own edges, but never re-federate
            # (the federation graph is complete; one WAN hop reaches all).
            request: _PropagateRequest = body
            self._dispatch_local(request)
            self._fan_out(request, exclude={request.origin, message.src_peer})
        elif kind == "propagate-deliver":
            self._dispatch_local(body)
        elif kind == "srdi-push" and self.is_rendezvous:
            push: _SrdiPush = body
            for document in push.documents:
                advertisement = advertisement_from_xml(document)
                key = advertisement.key()
                self.srdi[key] = (push.origin, advertisement)
                for hook in self.on_srdi_push:
                    hook(key, push.origin, advertisement, document)

    def _expire_clients(self) -> None:
        now = self.env.now
        expired = [peer for peer, expiry in self.clients.items() if expiry <= now]
        for peer in expired:
            del self.clients[peer]
            # Drop the dead edge's SRDI entries with it.
            stale = [
                key for key, (origin, _adv) in self.srdi.items() if origin == peer
            ]
            for key in stale:
                del self.srdi[key]

    def _on_crash(self) -> None:
        self.clients.clear()
        self.srdi.clear()
        self.connected_to = None
        self.lease_expires_at = 0.0
        self._renew_process = None
