"""The membership service: credentials for group operations.

JXTA groups gate membership through a membership service that issues
credentials.  Whisper's groups are cooperative, so we implement the
``NullMembership``-style flow: ``apply`` yields an application, ``join``
turns it into a credential naming the peer and group.  The group service
and b-peers attach credentials to sensitive operations; verification
checks the (peer, group) binding and expiry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .ids import PeerGroupId, PeerId

__all__ = ["Credential", "MembershipService", "MembershipError"]

#: Credential validity period (seconds).
CREDENTIAL_LIFETIME = 3600.0


class MembershipError(Exception):
    """Raised for invalid membership operations."""


@dataclass(frozen=True)
class Credential:
    """Proof that a peer joined a group at a given time."""

    peer_id: PeerId
    group_id: PeerGroupId
    issued_at: float
    expires_at: float

    def valid_at(self, now: float) -> bool:
        return self.issued_at <= now < self.expires_at


class MembershipService:
    """Issues and verifies group credentials for one peer."""

    def __init__(self, peer_id: PeerId, clock):
        self.peer_id = peer_id
        self._clock = clock
        self._credentials: Dict[PeerGroupId, Credential] = {}

    def apply(self, group_id: PeerGroupId) -> PeerGroupId:
        """Start an application; returns the application token (the group)."""
        return group_id

    def join(self, group_id: PeerGroupId) -> Credential:
        """Complete the join, obtaining a credential."""
        now = self._clock()
        credential = Credential(
            peer_id=self.peer_id,
            group_id=group_id,
            issued_at=now,
            expires_at=now + CREDENTIAL_LIFETIME,
        )
        self._credentials[group_id] = credential
        return credential

    def resign(self, group_id: PeerGroupId) -> None:
        """Discard the credential for a group."""
        self._credentials.pop(group_id, None)

    def current_credential(self, group_id: PeerGroupId) -> Optional[Credential]:
        credential = self._credentials.get(group_id)
        if credential is None or not credential.valid_at(self._clock()):
            return None
        return credential

    def verify(self, credential: Credential, group_id: PeerGroupId) -> None:
        """Raise :class:`MembershipError` unless the credential fits the group."""
        if credential.group_id != group_id:
            raise MembershipError(
                f"credential for {credential.group_id} presented to {group_id}"
            )
        if not credential.valid_at(self._clock()):
            raise MembershipError("credential expired")
