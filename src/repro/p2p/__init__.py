"""A JXTA-like peer-to-peer infrastructure, built from scratch.

Whisper's fault tolerance rests on "the features and characteristics of
peer-to-peer networks" (§1), concretely JXTA 2.3.  This package implements
the protocol surface Whisper uses: peer/group/pipe identifiers, XML
advertisements (including the paper's new *semantic advertisements*,
§4.3), an endpoint service with relay routing, rendezvous peers with
leases + propagation + an SRDI index, a resolver, discovery with local
caches and remote queries, logical peer groups, pipes, and membership
credentials.
"""

from .advertisement import (
    DEFAULT_LIFETIME,
    AdvParseError,
    Advertisement,
    PeerAdvertisement,
    PeerGroupAdvertisement,
    PipeAdvertisement,
    SemanticAdvertisement,
    advertisement_from_xml,
)
from .cache import AdvertisementCache
from .discovery import DiscoveryQuery, DiscoveryService
from .endpoint import (
    ENDPOINT_PORT,
    EndpointMessage,
    EndpointService,
    UnresolvablePeerError,
)
from .gossip import GOSSIP_PROTOCOL, GossipEntry, GossipService
from .ids import WORLD_GROUP_ID, JxtaId, PeerGroupId, PeerId, PipeId
from .membership import Credential, MembershipError, MembershipService
from .peer import Peer, create_peer_network
from .peergroup import GroupService, PeerGroupView
from .pipes import InputPipe, OutputPipe, PipeBindError, PipeService, PropagatePipe
from .relay import attach_nat_peer, configure_relay
from .rendezvous import RendezvousService
from .resolver import ResolverQuery, ResolverResponse, ResolverService

__all__ = [
    "AdvParseError",
    "Advertisement",
    "AdvertisementCache",
    "Credential",
    "DEFAULT_LIFETIME",
    "DiscoveryQuery",
    "DiscoveryService",
    "ENDPOINT_PORT",
    "EndpointMessage",
    "EndpointService",
    "GOSSIP_PROTOCOL",
    "GossipEntry",
    "GossipService",
    "GroupService",
    "InputPipe",
    "JxtaId",
    "MembershipError",
    "MembershipService",
    "OutputPipe",
    "Peer",
    "PeerAdvertisement",
    "PeerGroupAdvertisement",
    "PeerGroupId",
    "PeerGroupView",
    "PeerId",
    "PipeAdvertisement",
    "PipeBindError",
    "PipeId",
    "PipeService",
    "PropagatePipe",
    "RendezvousService",
    "ResolverQuery",
    "ResolverResponse",
    "ResolverService",
    "SemanticAdvertisement",
    "UnresolvablePeerError",
    "WORLD_GROUP_ID",
    "advertisement_from_xml",
    "attach_nat_peer",
    "configure_relay",
    "create_peer_network",
]
