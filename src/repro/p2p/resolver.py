"""The resolver service: generic query/response.

Higher-level JXTA services (discovery, pipe binding) are built on the
resolver: a named *handler* receives queries and may answer them.  Queries
can be sent to one peer or propagated network-wide via the rendezvous;
responses are routed back to the querying peer — through the rendezvous if
no direct route exists.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from .endpoint import EndpointMessage, EndpointService, UnresolvablePeerError
from .ids import PeerId
from .rendezvous import RendezvousService

__all__ = ["ResolverService", "ResolverQuery", "ResolverResponse", "PROTOCOL"]

PROTOCOL = "jxta:resolver"


@dataclass
class ResolverQuery:
    """A query addressed to a named handler somewhere on the network."""

    query_id: int
    handler_name: str
    src_peer: PeerId
    payload: Any


@dataclass
class ResolverResponse:
    """A response to a :class:`ResolverQuery`."""

    query_id: int
    handler_name: str
    src_peer: PeerId
    payload: Any


#: Query handlers return a response payload, or None for "no answer".
QueryHandler = Callable[[ResolverQuery], Optional[Any]]
#: Response listeners receive every response for a given query id.
ResponseListener = Callable[[ResolverResponse], None]


class ResolverService:
    """One peer's resolver."""

    def __init__(self, endpoint: EndpointService, rendezvous: RendezvousService):
        self.endpoint = endpoint
        self.rendezvous = rendezvous
        self._handlers: Dict[str, QueryHandler] = {}
        self._pending: Dict[int, ResponseListener] = {}
        self._query_ids = itertools.count(1)
        self.queries_sent = 0
        self.responses_sent = 0
        endpoint.register_listener(PROTOCOL, self._on_message)
        rendezvous.register_propagate_listener(PROTOCOL, self._on_propagated)
        endpoint.node.on_crash(lambda _node: self._pending.clear())

    # -- handler registration ---------------------------------------------------------

    def register_handler(self, name: str, handler: QueryHandler) -> None:
        """Answer queries addressed to ``name`` with ``handler``."""
        self._handlers[name] = handler

    def unregister_handler(self, name: str) -> None:
        self._handlers.pop(name, None)

    # -- querying -----------------------------------------------------------------------

    def send_query(
        self,
        handler_name: str,
        payload: Any,
        on_response: Optional[ResponseListener] = None,
        dst_peer: Optional[PeerId] = None,
        size_bytes: int = 512,
    ) -> int:
        """Send a query; returns the query id.

        With ``dst_peer`` the query goes to that peer only; otherwise it is
        propagated through the rendezvous to the whole group.
        """
        query = ResolverQuery(
            query_id=next(self._query_ids),
            handler_name=handler_name,
            src_peer=self.endpoint.peer_id,
            payload=payload,
        )
        if on_response is not None:
            self._pending[query.query_id] = on_response
        self.queries_sent += 1
        if dst_peer is not None:
            try:
                self.endpoint.send(
                    dst_peer,
                    PROTOCOL,
                    ("query", query),
                    category="resolver-query",
                    size_bytes=size_bytes,
                )
            except UnresolvablePeerError:
                # No direct route: relay the query through our rendezvous.
                if self.rendezvous.connected_to is None:
                    raise
                self.endpoint.send_via(
                    self.rendezvous.connected_to,
                    dst_peer,
                    PROTOCOL,
                    ("query", query),
                    category="resolver-query",
                    size_bytes=size_bytes,
                )
        else:
            self.rendezvous.propagate(
                PROTOCOL, ("query", query), size_bytes=size_bytes
            )
        return query.query_id

    def cancel_query(self, query_id: int) -> None:
        """Stop listening for responses to ``query_id``."""
        self._pending.pop(query_id, None)

    # -- answering -----------------------------------------------------------------------

    def _answer(self, query: ResolverQuery) -> None:
        handler = self._handlers.get(query.handler_name)
        if handler is None:
            return
        answer = handler(query)
        if answer is None:
            return
        if query.src_peer == self.endpoint.peer_id:
            # Local loopback: deliver directly.
            self._deliver_response(
                ResolverResponse(
                    query.query_id, query.handler_name, self.endpoint.peer_id, answer
                )
            )
            return
        response = ResolverResponse(
            query_id=query.query_id,
            handler_name=query.handler_name,
            src_peer=self.endpoint.peer_id,
            payload=answer,
        )
        self.responses_sent += 1
        try:
            self.endpoint.send(
                query.src_peer,
                PROTOCOL,
                ("response", response),
                category="resolver-response",
            )
        except UnresolvablePeerError:
            # No direct route: relay through our rendezvous.
            if self.rendezvous.connected_to is not None:
                self.endpoint.send_via(
                    self.rendezvous.connected_to,
                    query.src_peer,
                    PROTOCOL,
                    ("response", response),
                    category="resolver-response",
                )

    # -- inbound dispatch ----------------------------------------------------------------

    def _on_message(self, message: EndpointMessage) -> None:
        kind, body = message.payload
        if kind == "query":
            self._answer(body)
        elif kind == "response":
            self._deliver_response(body)

    def _on_propagated(self, payload: Any, _origin: PeerId) -> None:
        kind, body = payload
        if kind == "query":
            self._answer(body)

    def _deliver_response(self, response: ResolverResponse) -> None:
        listener = self._pending.get(response.query_id)
        if listener is not None:
            listener(response)
