"""The simulation environment: clock + event queue + run loop.

Two schedulers share one contract (process events in ``(time, urgency,
tiebreak, seq)`` order):

* ``"batched"`` (the default) — same-timestamp events are drained out of
  the heap once per instant into plain FIFO deques, and events scheduled
  *at the current instant* (the overwhelming majority: every
  ``Event.succeed``, process resume, and store handshake) bypass the heap
  entirely.  No per-event 5-tuple is allocated and nothing re-heapifies
  while a timestamp's run is processed.
* ``"heap"`` — the seed implementation: every event goes through one
  ``heapq`` of ``(time, priority, tiebreak, seq, event)`` tuples.

Both produce the *identical* event order (the scheduler-equivalence suite
in ``tests/simnet/test_scheduler_equivalence.py`` proves it on full
deployments), so replay files and seeded benchmarks are scheduler
agnostic.  Installing a :class:`TiebreakPolicy` routes everything through
the heap path, because a policy may rank a newly scheduled event *before*
already-drained peers.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from .events import Event, SimulationError, Timeout
from .process import Process

__all__ = [
    "Environment",
    "StopSimulation",
    "EmptySchedule",
    "TiebreakPolicy",
    "DEFAULT_SCHEDULER",
    "SCHEDULERS",
]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at ``until``."""


class EmptySchedule(Exception):
    """Raised when the event queue runs dry before ``until`` is reached."""


#: Events scheduled with ``priority=True`` (interrupts) sort before normal
#: events at the same timestamp.
_URGENT = 0
_NORMAL = 1

#: Recognised scheduler implementations.
SCHEDULERS = ("batched", "heap")

#: Process-wide default used when :class:`Environment` is built without an
#: explicit ``scheduler=``.  The equivalence suite and the perf harness
#: flip this to run whole deployments on the seed heap scheduler.
DEFAULT_SCHEDULER = "batched"


class TiebreakPolicy:
    """How same-timestamp events are ordered relative to one another.

    The default (``None`` on the environment) is FIFO: events scheduled at
    the same instant are processed in scheduling order.  A policy replaces
    that single ordering with a *chosen* one — the schedule-exploration
    checker (:mod:`repro.check`) uses seeded shuffles and adversarial
    delays to sample many legal interleavings of one scenario.  Whatever
    the policy returns, ordering stays deterministic: the key only
    reorders events within the same ``(time, urgency)`` class, and the
    scheduling sequence number remains the final tiebreaker.
    """

    def key(self, env: "Environment", urgent: bool, event: Event) -> int:
        """Sort key for one event among its same-timestamp peers."""
        raise NotImplementedError


class Environment:
    """Coordinates simulated time and event processing.

    The heap holds ``(time, priority, tiebreak, seq, event)`` tuples.
    ``seq`` is a monotonically increasing counter so that events scheduled
    at the same instant are processed in FIFO order by default, which
    makes every simulation fully deterministic.  ``tiebreak`` (0 unless a
    :class:`TiebreakPolicy` is installed) lets a checker perturb the order
    of same-timestamp events without ever reordering across timestamps.

    Under the batched scheduler, events landing at the *current* instant
    skip the heap: they append straight onto one of two FIFO deques
    (urgent / normal).  That is order-equivalent to the heap because any
    event scheduled now carries a larger ``seq`` than everything already
    queued for this instant, and deque order is append order.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        tiebreak: Optional[TiebreakPolicy] = None,
        scheduler: Optional[str] = None,
    ):
        if scheduler is None:
            scheduler = DEFAULT_SCHEDULER
        if scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {scheduler!r} (use one of {SCHEDULERS})")
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        #: Pluggable same-timestamp ordering (``None`` = FIFO).
        self.tiebreak = tiebreak
        self.scheduler = scheduler
        self._batched = scheduler == "batched"
        #: Current-instant runs, drained from the heap (or scheduled at
        #: ``now``) and processed without re-heapifying.  Urgent before
        #: normal, FIFO within each — exactly the heap's total order.
        self._now_urgent: Deque[Event] = deque()
        self._now_normal: Deque[Event] = deque()
        #: Events processed since construction (perf accounting).
        self.events_processed = 0
        #: Optional per-event hook ``(now, event) -> None``, fired just
        #: before an event's callbacks run.  The scheduler-equivalence
        #: suite records event orderings through it; ``None`` costs one
        #: pointer check per event.
        self.on_event: Optional[Callable[[float, Event], None]] = None

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    # -- event factories --------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling --------------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: bool = False) -> None:
        """Queue ``event`` to be processed ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        when = self._now + delay
        if self._batched and self.tiebreak is None and when == self._now:
            # Current-instant fast path: a new event always outranks
            # nothing and underranks everything already queued for this
            # instant (its seq would be the largest), so FIFO append is
            # the exact heap order — no tuple, no sift.
            if priority:
                self._now_urgent.append(event)
            else:
                self._now_normal.append(event)
            return
        tiebreak = 0
        if self.tiebreak is not None:
            tiebreak = self.tiebreak.key(self, priority, event)
        heapq.heappush(
            self._queue,
            (
                when,
                _URGENT if priority else _NORMAL,
                tiebreak,
                next(self._seq),
                event,
            ),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._now_urgent or self._now_normal:
            return self._now
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the single next event.

        A failed :class:`~repro.simnet.process.Process` that nothing waits
        on re-raises its exception here: a crashed background process must
        surface as a simulation error, not as a silent hang.
        """
        # Urgency classes are strict at one timestamp — every urgent event
        # precedes every normal one — so checking the urgent deque first
        # is the heap's order, even for urgents scheduled a moment ago by
        # a normal event at this same instant.
        if self._now_urgent:
            event = self._now_urgent.popleft()
        elif self._now_normal:
            event = self._now_normal.popleft()
        else:
            queue = self._queue
            if not queue:
                raise EmptySchedule()
            when, _prio, _tiebreak, _seq, event = heapq.heappop(queue)
            self._now = when
            if self._batched and self.tiebreak is None:
                # Drain this timestamp's entire run: the pops come out in
                # (priority, tiebreak, seq) order, so appending preserves
                # it, and no later insert can outrank them (any event
                # scheduled from now on carries a larger seq, and with no
                # tiebreak policy seq is the only same-class ordering).
                urgent, normal = self._now_urgent, self._now_normal
                while queue and queue[0][0] == when:
                    entry = heapq.heappop(queue)
                    if entry[1] == _URGENT:
                        urgent.append(entry[4])
                    else:
                        normal.append(entry[4])
        self.events_processed += 1
        if self.on_event is not None:
            self.on_event(self._now, event)
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not callbacks and not event._ok and not getattr(event, "defused", False):
            if isinstance(event, Process):
                raise event._value

    # -- run loop ----------------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is empty;
        * a number — run until simulated time reaches that value;
        * an :class:`Event` — run until that event is processed, returning
          its value (re-raising its exception if it failed).
        """
        stop_value: Any = None
        if until is None:
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed.
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            stop_event.add_callback(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(
                    f"until={at} lies in the past (now={self._now})"
                )
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(self._stop_callback)
            self.schedule(stop_event, delay=at - self._now, priority=True)

        step = self.step
        try:
            while True:
                step()
        except StopSimulation as stop:
            stop_value = stop.args[0] if stop.args else None
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise SimulationError(
                    "run(until=event): queue ran dry before the event fired"
                )
            return None

        if isinstance(until, Event):
            if not until._ok:
                raise until._value
            return until._value
        return stop_value

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event._value)
