"""The simulation environment: clock + event queue + run loop."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, List, Optional, Tuple

from .events import Event, SimulationError, Timeout
from .process import Process

__all__ = ["Environment", "StopSimulation", "EmptySchedule", "TiebreakPolicy"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at ``until``."""


class EmptySchedule(Exception):
    """Raised when the event queue runs dry before ``until`` is reached."""


#: Events scheduled with ``priority=True`` (interrupts) sort before normal
#: events at the same timestamp.
_URGENT = 0
_NORMAL = 1


class TiebreakPolicy:
    """How same-timestamp events are ordered relative to one another.

    The default (``None`` on the environment) is FIFO: events scheduled at
    the same instant are processed in scheduling order.  A policy replaces
    that single ordering with a *chosen* one — the schedule-exploration
    checker (:mod:`repro.check`) uses seeded shuffles and adversarial
    delays to sample many legal interleavings of one scenario.  Whatever
    the policy returns, ordering stays deterministic: the key only
    reorders events within the same ``(time, urgency)`` class, and the
    scheduling sequence number remains the final tiebreaker.
    """

    def key(self, env: "Environment", urgent: bool, event: Event) -> int:
        """Sort key for one event among its same-timestamp peers."""
        raise NotImplementedError


class Environment:
    """Coordinates simulated time and event processing.

    The environment owns a priority queue of
    ``(time, priority, tiebreak, seq, event)`` tuples.  ``seq`` is a
    monotonically increasing counter so that events scheduled at the same
    instant are processed in FIFO order by default, which makes every
    simulation fully deterministic.  ``tiebreak`` (0 unless a
    :class:`TiebreakPolicy` is installed) lets a checker perturb the order
    of same-timestamp events without ever reordering across timestamps.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        tiebreak: Optional[TiebreakPolicy] = None,
    ):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        #: Pluggable same-timestamp ordering (``None`` = FIFO).
        self.tiebreak = tiebreak

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    # -- event factories --------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling --------------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: bool = False) -> None:
        """Queue ``event`` to be processed ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        tiebreak = 0
        if self.tiebreak is not None:
            tiebreak = self.tiebreak.key(self, priority, event)
        heapq.heappush(
            self._queue,
            (
                self._now + delay,
                _URGENT if priority else _NORMAL,
                tiebreak,
                next(self._seq),
                event,
            ),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the single next event.

        A failed :class:`~repro.simnet.process.Process` that nothing waits
        on re-raises its exception here: a crashed background process must
        surface as a simulation error, not as a silent hang.
        """
        if not self._queue:
            raise EmptySchedule()
        when, _prio, _tiebreak, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not callbacks and not event._ok and not getattr(event, "defused", False):
            from .process import Process

            if isinstance(event, Process):
                raise event._value

    # -- run loop ----------------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is empty;
        * a number — run until simulated time reaches that value;
        * an :class:`Event` — run until that event is processed, returning
          its value (re-raising its exception if it failed).
        """
        stop_value: Any = None
        if until is None:
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed.
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            stop_event.add_callback(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(
                    f"until={at} lies in the past (now={self._now})"
                )
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(self._stop_callback)
            self.schedule(stop_event, delay=at - self._now, priority=True)

        try:
            while True:
                self.step()
        except StopSimulation as stop:
            stop_value = stop.args[0] if stop.args else None
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise SimulationError(
                    "run(until=event): queue ran dry before the event fired"
                )
            return None

        if isinstance(until, Event):
            if not until._ok:
                raise until._value
            return until._value
        return stop_value

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event._value)
