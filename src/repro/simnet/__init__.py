"""Discrete-event simulation kernel and network substrate.

This package replaces the paper's physical testbed (nine P4 machines on a
100 Mbit/s Ethernet LAN) with a deterministic simulator:

* :mod:`~repro.simnet.environment` / :mod:`~repro.simnet.events` /
  :mod:`~repro.simnet.process` — a from-scratch event/process kernel;
* :mod:`~repro.simnet.network` — hosts, links, latency + bandwidth delay,
  partitions;
* :mod:`~repro.simnet.failure` — fail-stop crashes, restarts, churn;
* :mod:`~repro.simnet.trace` — the message counters and RTT monitor that
  produce the paper's Figure 4 and §5 latency numbers.
"""

from .environment import EmptySchedule, Environment, StopSimulation, TiebreakPolicy
from .events import AllOf, AnyOf, Event, Interrupt, SimulationError, Timeout
from .failure import FailureEvent, FailureInjector
from .latency import (
    ConstantLatency,
    LogNormalLatency,
    UniformLatency,
    lan_latency,
    parse_latency_spec,
)
from .message import Address, Message
from .network import Link, Network, Region, UnknownHostError, lan
from .node import Node
from .process import Process
from .queues import PriorityStore, Store
from .rng import RngRegistry
from .trace import MessageTrace, RttSample, TraceRecord
from .transport import PortInUseError, Socket, Transport

__all__ = [
    "AllOf",
    "AnyOf",
    "Address",
    "ConstantLatency",
    "EmptySchedule",
    "Environment",
    "Event",
    "FailureEvent",
    "FailureInjector",
    "Interrupt",
    "Link",
    "LogNormalLatency",
    "Message",
    "MessageTrace",
    "Network",
    "Node",
    "PortInUseError",
    "PriorityStore",
    "Process",
    "Region",
    "RngRegistry",
    "RttSample",
    "SimulationError",
    "Socket",
    "StopSimulation",
    "Store",
    "TiebreakPolicy",
    "Timeout",
    "TraceRecord",
    "Transport",
    "UniformLatency",
    "UnknownHostError",
    "lan",
    "lan_latency",
    "parse_latency_spec",
]
