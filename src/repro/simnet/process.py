"""Generator-based simulated processes.

A process wraps a Python generator.  Whenever the generator yields an
:class:`~repro.simnet.events.Event`, the process suspends until that event
fires; the event's value (or exception) is sent (or thrown) back into the
generator.  A :class:`Process` is itself an event that fires when the
generator returns, which lets processes wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .events import PENDING, Event, Interrupt, SimulationError

__all__ = ["Process"]


class Process(Event):
    """A running simulated activity driven by a generator.

    The process fires (as an event) with the generator's return value when
    the generator finishes, or fails with the exception that escaped it.
    """

    __slots__ = ("_generator", "_target", "name", "_started")

    def __init__(
        self,
        env: "Environment",  # noqa: F821 - forward ref
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self._started = False
        self.name = name or getattr(generator, "__name__", "process")
        # Kick-start the process via an immediately-scheduled init event.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init)

    # -- public API ----------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process stops waiting on its current target and must handle the
        interrupt (or die with it).  Interrupting a finished process is an
        error; interrupting yourself is also an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=True)

    # -- internal ------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if not self.is_alive:
            # The process terminated while an interrupt was in flight.
            return

        exc_to_throw: Optional[BaseException] = None
        if event._ok:
            to_send = event._value
        else:
            exc_to_throw = event._value

        if exc_to_throw is not None and not self._started:
            # Interrupted before the generator ever ran (e.g. the host
            # crashed in the same instant the process was spawned).  A
            # throw would surface at the function's first line, outside any
            # try block — just terminate the never-started process.
            self._generator.close()
            self._ok = False
            self._value = exc_to_throw
            self.defused = True
            self.env.schedule(self)
            return
        self._started = True

        self.env._active_process = self

        # Detach from the old target: if this resume is an interrupt, the
        # previous target may still fire later and must not resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not self._target.callbacks:
                # Nobody else is waiting: withdraw cancellable targets
                # (store gets/puts) so they cannot later consume an item
                # on behalf of this no-longer-waiting process.
                cancel = getattr(self._target, "cancel", None)
                if cancel is not None:
                    cancel()
        self._target = None

        try:
            if exc_to_throw is not None:
                next_event = self._generator.throw(exc_to_throw)
            else:
                next_event = self._generator.send(to_send)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env.schedule(self)
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            self.env.schedule(self)
            return
        finally:
            self.env._active_process = None

        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
        if next_event.callbacks is None:
            # Already processed: resume immediately on the next step.
            immediate = Event(self.env)
            immediate._ok = next_event._ok
            immediate._value = next_event._value
            immediate.callbacks.append(self._resume)
            self.env.schedule(immediate)
            self._target = immediate
        else:
            next_event.add_callback(self._resume)
            self._target = next_event

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"
