"""Global instrumentation: message counters and packet timestamps.

The paper's benchmark (§5) measures two things:

* *the number of messages exchanged* as b-peers are added (Figure 4), and
* *round-trip times*, "the time interval from the moment at which a request
  packet is time-stamped by the monitor to the moment at which a reply
  packet is time-stamped".

:class:`MessageTrace` is the single source of truth for both.  The network
layer notifies it of every send/deliver/drop; higher layers use
:meth:`stamp_request`/:meth:`stamp_reply` to record RTT samples exactly as
the paper's monitor does.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry

__all__ = ["MessageTrace", "TraceRecord", "RttSample"]


@dataclass
class TraceRecord:
    """One message event kept when detailed recording is enabled."""

    time: float
    event: str  # "send", "deliver", or "drop"
    category: str
    src: Tuple[str, int]
    dst: Tuple[str, int]
    size_bytes: int
    msg_id: int


@dataclass
class RttSample:
    """One request/reply round trip observed by the monitor."""

    correlation_id: int
    request_at: float
    reply_at: float

    @property
    def rtt(self) -> float:
        return self.reply_at - self.request_at


@dataclass
class MessageTrace:
    """Counts and (optionally) records every message on the network."""

    record_details: bool = False
    sent_total: int = 0
    delivered_total: int = 0
    dropped_total: int = 0
    bytes_total: int = 0
    sent_by_category: Counter = field(default_factory=Counter)
    sent_by_host: Counter = field(default_factory=Counter)
    records: List[TraceRecord] = field(default_factory=list)
    _pending_rtt: Dict[int, float] = field(default_factory=dict)
    rtt_samples: List[RttSample] = field(default_factory=list)
    #: Optional :class:`~repro.obs.metrics.MetricsRegistry` mirror: when
    #: set (WhisperSystem wires it with observability enabled), headline
    #: message counters also land in the registry so one JSON export
    #: covers network traffic alongside phase latencies.
    metrics: Optional[MetricsRegistry] = field(default=None, repr=False)

    # -- network hooks ---------------------------------------------------------

    def on_send(self, time: float, message) -> None:
        self.sent_total += 1
        self.bytes_total += message.size_bytes
        self.sent_by_category[message.category] += 1
        self.sent_by_host[message.src[0]] += 1
        if self.metrics is not None:
            self.metrics.inc("net.sent")
            self.metrics.inc("net.bytes", message.size_bytes)
        if self.record_details:
            self.records.append(
                TraceRecord(
                    time,
                    "send",
                    message.category,
                    message.src,
                    message.dst,
                    message.size_bytes,
                    message.msg_id,
                )
            )

    def on_deliver(self, time: float, message) -> None:
        self.delivered_total += 1
        if self.metrics is not None:
            self.metrics.inc("net.delivered")
        if self.record_details:
            self.records.append(
                TraceRecord(
                    time,
                    "deliver",
                    message.category,
                    message.src,
                    message.dst,
                    message.size_bytes,
                    message.msg_id,
                )
            )

    def on_drop(self, time: float, message, reason: str = "") -> None:
        self.dropped_total += 1
        if self.metrics is not None:
            self.metrics.inc("net.dropped")
        if self.record_details:
            self.records.append(
                TraceRecord(
                    time,
                    "drop",
                    message.category,
                    message.src,
                    message.dst,
                    message.size_bytes,
                    message.msg_id,
                )
            )

    # -- RTT monitor (paper §5) --------------------------------------------------

    def stamp_request(self, correlation_id: int, time: float) -> None:
        """Time-stamp an outgoing request packet."""
        self._pending_rtt[correlation_id] = time

    def stamp_reply(self, correlation_id: int, time: float) -> None:
        """Time-stamp the matching reply packet; records an RTT sample."""
        start = self._pending_rtt.pop(correlation_id, None)
        if start is not None:
            self.rtt_samples.append(RttSample(correlation_id, start, time))
            if self.metrics is not None:
                self.metrics.observe("net.rtt", time - start)

    def rtts(self) -> List[float]:
        """All observed round-trip times, in seconds."""
        return [sample.rtt for sample in self.rtt_samples]

    # -- reporting ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Cheap copy of the headline counters."""
        return {
            "sent": self.sent_total,
            "delivered": self.delivered_total,
            "dropped": self.dropped_total,
            "bytes": self.bytes_total,
        }

    def category_breakdown(self) -> Dict[str, int]:
        """Messages sent, keyed by protocol category."""
        return dict(self.sent_by_category)

    def records_to_csv(self) -> str:
        """Detailed records as CSV (requires ``record_details=True``)."""
        lines = ["time,event,category,src_host,src_port,dst_host,dst_port,size_bytes,msg_id"]
        for record in self.records:
            lines.append(
                f"{record.time!r},{record.event},{record.category},"
                f"{record.src[0]},{record.src[1]},"
                f"{record.dst[0]},{record.dst[1]},"
                f"{record.size_bytes},{record.msg_id}"
            )
        return "\n".join(lines) + "\n"

    def rtts_to_csv(self) -> str:
        """RTT samples as CSV."""
        lines = ["correlation_id,request_at,reply_at,rtt"]
        for sample in self.rtt_samples:
            lines.append(
                f"{sample.correlation_id},{sample.request_at!r},"
                f"{sample.reply_at!r},{sample.rtt!r}"
            )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero completed counters and samples (e.g. after a warm-up phase).

        Request stamps still awaiting their reply (``_pending_rtt``) are
        deliberately *preserved*: a request in flight across the reset
        boundary completes into a normal RTT sample instead of being
        silently dropped.  Only fully observed data — counters, detail
        records, and completed RTT samples — is cleared.
        """
        self.sent_total = 0
        self.delivered_total = 0
        self.dropped_total = 0
        self.bytes_total = 0
        self.sent_by_category.clear()
        self.sent_by_host.clear()
        self.records.clear()
        self.rtt_samples.clear()
