"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the classic event/process pattern (as popularised by
SimPy, reimplemented here from scratch): an :class:`Event` is a one-shot
container for a value or an exception, and callbacks attached to the event
fire when the environment processes it.  Processes (see
:mod:`repro.simnet.process`) are generators that yield events; the kernel
resumes them when the yielded event fires.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]


class _PendingType:
    """Sentinel for "this event has not yet been given a value"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


PENDING = _PendingType()


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.simnet.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event moves through three states:

    * *not triggered*: freshly created, no value.
    * *triggered*: given a value via :meth:`succeed`/:meth:`fail` and
      scheduled with the environment.
    * *processed*: the environment popped it off the queue and invoked its
      callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):  # noqa: F821 - forward ref
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set True to suppress the "unhandled failed process" re-raise.
        self.defused: bool = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is discarded)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded, False if it failed."""
        if not self.triggered:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A failed event re-raises ``exception`` inside every process waiting
        on it.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if self.triggered:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- misc ---------------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            raise SimulationError(f"{self!r} has already been processed")
        self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_completed")

    def __init__(self, env: "Environment", events):  # noqa: F821
        super().__init__(env)
        self.events = list(events)
        self._completed: List[Event] = []
        if not self.events:
            self.succeed(_ConditionValue({}))
            return
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
            if event.callbacks is None:
                self._check(event)
            else:
                event.add_callback(self._check)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._completed.append(event)
        if not event._ok:
            self.fail(event._value)
        elif self._satisfied():
            # Only events already *processed* when the condition fires are
            # part of its value (a scheduled-but-pending Timeout is not).
            self.succeed(
                _ConditionValue({e: e._value for e in self._completed})
            )


class _ConditionValue(dict):
    """Mapping of triggered events to their values for AnyOf/AllOf."""


class AnyOf(_Condition):
    """Fires as soon as any of its events fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._completed) >= 1


class AllOf(_Condition):
    """Fires once all of its events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._completed) >= len(self.events)
