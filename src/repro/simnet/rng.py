"""Seeded random-number utilities.

Every stochastic component in the simulator draws from a named child stream
of one root seed, so that adding a new random consumer does not perturb the
draws seen by existing consumers (a standard trick for reproducible
discrete-event simulation).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory for independent, deterministically seeded RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG stream for ``name``, creating it on first use.

        The stream's seed is derived from ``(root_seed, name)`` via SHA-256,
        so streams are independent of the order in which they are created.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per simulated host)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
