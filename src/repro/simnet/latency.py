"""Link latency models.

Each model is a callable ``(rng) -> seconds`` giving the one-way propagation
delay of a packet.  Transmission delay (size / bandwidth) is added separately
by the link.  The defaults are calibrated to the paper's testbed: a 100
Mbit/s switched Ethernet LAN, where the observed average application-level
RTT was roughly 0.5 ms.
"""

from __future__ import annotations

import math
import random
from typing import Protocol

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "lan_latency",
    "parse_latency_spec",
]


class LatencyModel(Protocol):
    """Anything callable as ``model(rng) -> seconds``."""

    def __call__(self, rng: random.Random) -> float: ...


class ConstantLatency:
    """A fixed one-way delay."""

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError("latency must be non-negative")
        self.seconds = seconds

    def __call__(self, rng: random.Random) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"ConstantLatency({self.seconds})"


class UniformLatency:
    """One-way delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError(f"invalid range [{low}, {high}]")
        self.low = low
        self.high = high

    def __call__(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class LogNormalLatency:
    """Heavy-tailed delay, the usual fit for switched-LAN measurements.

    Parametrised by the median and a shape factor sigma; an optional floor
    models the minimum switching delay.
    """

    def __init__(self, median: float, sigma: float = 0.3, floor: float = 0.0):
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.median = median
        self.sigma = sigma
        self.floor = floor
        self._mu = math.log(median)

    def __call__(self, rng: random.Random) -> float:
        return max(self.floor, rng.lognormvariate(self._mu, self.sigma))

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


def lan_latency() -> LogNormalLatency:
    """The paper-calibrated 100 Mbit/s LAN one-way latency model.

    Median one-way delay of 0.2 ms with mild jitter; together with
    transmission delay for ~0.5 KiB messages this yields application RTTs
    of roughly 0.5 ms, matching §5.
    """
    return LogNormalLatency(median=0.0002, sigma=0.25, floor=0.00005)


# -- declarative latency specs --------------------------------------------------------

#: Duration suffixes accepted by :func:`parse_latency_spec`.
_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "µs": 1e-6}


def _duration(text: str, spec: str) -> float:
    """``"2ms"`` / ``"0.5s"`` / ``"200us"`` -> seconds."""
    text = text.strip()
    for suffix in sorted(_UNITS, key=len, reverse=True):
        if text.endswith(suffix):
            number = text[: -len(suffix)].strip()
            break
    else:
        raise ValueError(
            f"latency spec {spec!r}: duration {text!r} needs a unit "
            f"({', '.join(sorted(_UNITS))})"
        )
    try:
        value = float(number)
    except ValueError:
        raise ValueError(
            f"latency spec {spec!r}: cannot parse duration {text!r}"
        ) from None
    return value * _UNITS[suffix]


def parse_latency_spec(spec) -> LatencyModel:
    """One string grammar for every latency model.

    Accepted forms::

        "lan"                     the paper-calibrated LAN model
        "constant:2ms"            fixed one-way delay
        "uniform:1ms-5ms"         uniform over [low, high]
        "lognormal:40ms±15ms"     heavy-tailed; median 40 ms with a
                                  one-sigma spread of ±15 ms ("+-" is an
                                  ASCII alias for "±"; spread may omit
                                  the unit and inherits the median's)

    An already-constructed :class:`LatencyModel` passes through unchanged,
    so APIs can accept either and normalise with one call.
    """
    if callable(spec):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"latency spec must be a string or LatencyModel, got {spec!r}")
    text = spec.strip()
    if text == "lan":
        return lan_latency()
    kind, sep, rest = text.partition(":")
    kind = kind.strip().lower()
    rest = rest.strip()
    if not sep or not rest:
        raise ValueError(f"latency spec {spec!r}: expected '<kind>:<params>' or 'lan'")
    if kind == "constant":
        return ConstantLatency(_duration(rest, spec))
    if kind == "uniform":
        low_text, sep, high_text = rest.partition("-")
        if not sep:
            raise ValueError(f"latency spec {spec!r}: uniform needs 'low-high'")
        return UniformLatency(_duration(low_text, spec), _duration(high_text, spec))
    if kind == "lognormal":
        body = rest.replace("+-", "±")
        median_text, sep, spread_text = body.partition("±")
        median = _duration(median_text, spec)
        if not sep:
            return LogNormalLatency(median=median)
        spread_text = spread_text.strip()
        if not any(spread_text.endswith(u) for u in _UNITS):
            # Bare spread number inherits the median's unit: "40ms±15".
            for suffix in sorted(_UNITS, key=len, reverse=True):
                if median_text.strip().endswith(suffix):
                    spread_text += suffix
                    break
        spread = _duration(spread_text, spec)
        if spread <= 0 or spread >= median * 10:
            raise ValueError(f"latency spec {spec!r}: spread out of range")
        # Sigma such that one multiplicative sigma reaches median+spread.
        return LogNormalLatency(median=median, sigma=math.log1p(spread / median))
    raise ValueError(f"latency spec {spec!r}: unknown kind {kind!r}")
