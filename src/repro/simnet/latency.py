"""Link latency models.

Each model is a callable ``(rng) -> seconds`` giving the one-way propagation
delay of a packet.  Transmission delay (size / bandwidth) is added separately
by the link.  The defaults are calibrated to the paper's testbed: a 100
Mbit/s switched Ethernet LAN, where the observed average application-level
RTT was roughly 0.5 ms.
"""

from __future__ import annotations

import math
import random
from typing import Protocol

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "lan_latency",
]


class LatencyModel(Protocol):
    """Anything callable as ``model(rng) -> seconds``."""

    def __call__(self, rng: random.Random) -> float: ...


class ConstantLatency:
    """A fixed one-way delay."""

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError("latency must be non-negative")
        self.seconds = seconds

    def __call__(self, rng: random.Random) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"ConstantLatency({self.seconds})"


class UniformLatency:
    """One-way delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError(f"invalid range [{low}, {high}]")
        self.low = low
        self.high = high

    def __call__(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class LogNormalLatency:
    """Heavy-tailed delay, the usual fit for switched-LAN measurements.

    Parametrised by the median and a shape factor sigma; an optional floor
    models the minimum switching delay.
    """

    def __init__(self, median: float, sigma: float = 0.3, floor: float = 0.0):
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.median = median
        self.sigma = sigma
        self.floor = floor
        self._mu = math.log(median)

    def __call__(self, rng: random.Random) -> float:
        return max(self.floor, rng.lognormvariate(self._mu, self.sigma))

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


def lan_latency() -> LogNormalLatency:
    """The paper-calibrated 100 Mbit/s LAN one-way latency model.

    Median one-way delay of 0.2 ms with mild jitter; together with
    transmission delay for ~0.5 KiB messages this yields application RTTs
    of roughly 0.5 ms, matching §5.
    """
    return LogNormalLatency(median=0.0002, sigma=0.25, floor=0.00005)
