"""Failure injection: crashes, restarts, partitions, churn.

The paper motivates Whisper with *system* failures that SOAP/WSDL cannot
express (§1): host crashes that silently kill a service.  This module
schedules exactly those — fail-stop crashes with optional restarts, network
partitions with a fixed duration, and continuous crash/restart churn for
availability experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from .network import Network

__all__ = ["FailureInjector", "FailureEvent"]


@dataclass
class FailureEvent:
    """A record of one injected failure, for reporting."""

    time: float
    kind: str  # "crash" | "restart" | "partition" | "heal"
    target: str


@dataclass
class FailureInjector:
    """Schedules failures against a network on the simulation clock."""

    network: Network
    log: List[FailureEvent] = field(default_factory=list)

    # -- one-shot actions ---------------------------------------------------------

    def crash_at(self, time: float, host: str) -> None:
        """Fail-stop ``host`` at the given simulated time."""
        self._at(time, lambda: self._crash(host))

    def restart_at(self, time: float, host: str) -> None:
        """Bring ``host`` back up at the given simulated time."""
        self._at(time, lambda: self._restart(host))

    def crash_for(self, time: float, host: str, downtime: float) -> None:
        """Crash ``host`` at ``time`` and restart it ``downtime`` later."""
        self.crash_at(time, host)
        self.restart_at(time + downtime, host)

    def partition_at(
        self,
        time: float,
        side_a: Iterable[str],
        side_b: Iterable[str],
        duration: Optional[float] = None,
    ) -> None:
        """Split the network at ``time``; heal after ``duration`` if given.

        Only *this* partition is healed when the duration elapses —
        overlapping partitions scheduled with different lifetimes keep
        their own clocks (healing everything would end them early).
        """
        side_a, side_b = list(side_a), list(side_b)
        sides = f"{side_a}|{side_b}"

        def split() -> None:
            handle = self.network.partition(side_a, side_b)
            self.log.append(FailureEvent(self.network.env.now, "partition", sides))
            if duration is not None:
                self._at(
                    self.network.env.now + duration,
                    lambda: self._heal_one(handle, sides),
                )

        self._at(time, split)

    def partition_region_at(
        self,
        time: float,
        region: str,
        duration: Optional[float] = None,
    ) -> None:
        """Isolate an entire region at ``time``; heal after ``duration``.

        Region-scoped partitions ride the same handle machinery as host
        partitions, so overlapping region and host splits heal on their
        own clocks.
        """
        label = f"region:{region}"

        def split() -> None:
            handle = self.network.isolate_region(region)
            self.log.append(FailureEvent(self.network.env.now, "partition", label))
            if duration is not None:
                self._at(
                    self.network.env.now + duration,
                    lambda: self._heal_one(handle, label),
                )

        self._at(time, split)

    def cut_wan_at(
        self,
        time: float,
        region_a: str,
        region_b: str,
        duration: Optional[float] = None,
    ) -> None:
        """Cut the WAN between two regions at ``time``; heal after ``duration``."""
        label = f"wan:{region_a}|{region_b}"

        def split() -> None:
            handle = self.network.partition_regions(region_a, region_b)
            self.log.append(FailureEvent(self.network.env.now, "partition", label))
            if duration is not None:
                self._at(
                    self.network.env.now + duration,
                    lambda: self._heal_one(handle, label),
                )

        self._at(time, split)

    # -- churn ----------------------------------------------------------------------

    def churn(
        self,
        hosts: Iterable[str],
        mtbf: float,
        mttr: float,
        until: float,
        stream: str = "churn",
    ) -> List[Tuple[float, float, str]]:
        """Exponential crash/restart churn over ``hosts`` until ``until``.

        ``mtbf`` is the mean time between failures of each host, ``mttr``
        the mean time to repair.  This drives the availability-vs-replication
        ablation (DESIGN.md, Ablation B).

        Each host's timeline strictly alternates crash/restart: the next
        time-between-failures is sampled from the *repair* time, never from
        inside the outage (a host cannot crash while already down).
        Returns the schedule as ``(crash_time, restart_time, host)`` tuples.
        """
        rng = self.network.rng.stream(stream)
        env = self.network.env
        schedule: List[Tuple[float, float, str]] = []
        for host in hosts:
            clock = env.now
            while True:
                clock += rng.expovariate(1.0 / mtbf)
                if clock >= until:
                    break
                downtime = min(rng.expovariate(1.0 / mttr), until - clock)
                self.crash_for(clock, host, downtime)
                schedule.append((clock, clock + downtime, host))
                # Resume the uptime clock at the *repair* instant — sampling
                # the next crash from the crash time could schedule a crash
                # while the host is still down, and the pending restart
                # would then silently truncate the later outage.
                clock += downtime
        return schedule

    # -- internals -------------------------------------------------------------------

    def _at(self, time: float, action) -> None:
        env = self.network.env
        delay = time - env.now
        if delay < 0:
            raise ValueError(f"cannot schedule failure in the past (t={time})")
        timeout = env.timeout(delay)
        timeout.add_callback(lambda _event: action())

    def _crash(self, host: str) -> None:
        node = self.network.host(host)
        if node.up:
            node.crash()
            self.log.append(FailureEvent(self.network.env.now, "crash", host))

    def _restart(self, host: str) -> None:
        node = self.network.host(host)
        if not node.up:
            node.restart()
            self.log.append(FailureEvent(self.network.env.now, "restart", host))

    def _heal_one(self, handle, sides: str) -> None:
        if self.network.heal_partition(handle):
            self.log.append(FailureEvent(self.network.env.now, "heal", sides))

    def _heal(self) -> None:
        """Heal *everything* (manual escape hatch, not used by timers)."""
        self.network.heal_partitions()
        self.log.append(FailureEvent(self.network.env.now, "heal", "*"))

    # -- reporting -------------------------------------------------------------------

    def crash_times(self, host: Optional[str] = None) -> List[Tuple[float, str]]:
        """(time, host) pairs of every injected crash (optionally filtered)."""
        return [
            (event.time, event.target)
            for event in self.log
            if event.kind == "crash" and (host is None or event.target == host)
        ]

    def alternation_violations(self) -> List[str]:
        """Audit the log: per host, crash/restart events must strictly
        alternate starting with a crash (an invariant the fault campaign
        checks — the pre-fix churn scheduler violated it by crashing hosts
        that were still down)."""
        violations: List[str] = []
        expected: dict = {}
        for event in self.log:
            if event.kind not in ("crash", "restart"):
                continue
            want = expected.get(event.target, "crash")
            if event.kind != want:
                violations.append(
                    f"{event.target}: {event.kind} at t={event.time:.3f} "
                    f"(expected {want})"
                )
            expected[event.target] = "restart" if event.kind == "crash" else "crash"
        return violations
