"""Datagram transport: port-addressed sockets on a host.

This is the lowest messaging layer services see.  A socket is bound to one
port; ``send`` hands a :class:`~repro.simnet.message.Message` to the
network, ``recv`` yields the next inbound message.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .message import Address, Message
from .queues import Store, StoreGet

__all__ = ["Transport", "Socket", "PortInUseError"]


class PortInUseError(Exception):
    """Raised when binding a port that already has a socket."""


class Socket:
    """A bound datagram endpoint ``(host, port)``."""

    def __init__(self, transport: "Transport", port: int):
        self._transport = transport
        self.port = port
        self.inbox = Store(transport.node.env)
        self.closed = False

    @property
    def address(self) -> Address:
        return (self._transport.node.name, self.port)

    def send(
        self,
        dst: Address,
        payload: Any,
        category: str = "data",
        size_bytes: int = 512,
        correlation_id: Optional[int] = None,
    ) -> Message:
        """Send a datagram; returns the message object (already in flight)."""
        message = Message(
            src=self.address,
            dst=dst,
            payload=payload,
            category=category,
            size_bytes=size_bytes,
            correlation_id=correlation_id,
        )
        self._transport.node.network.send(message)
        return message

    def send_message(self, message: Message) -> Message:
        """Send a pre-built message (its ``src`` must be this socket)."""
        if message.src != self.address:
            raise ValueError(
                f"message src {message.src} does not match socket {self.address}"
            )
        self._transport.node.network.send(message)
        return message

    def recv(self) -> StoreGet:
        """Event that fires with the next inbound message."""
        return self.inbox.get()

    def close(self) -> None:
        """Unbind the socket; further traffic to this port is dropped."""
        if not self.closed:
            self.closed = True
            self._transport.unbind(self.port)


class Transport:
    """All sockets of one host."""

    def __init__(self, node):
        self.node = node
        self._sockets: Dict[int, Socket] = {}
        self._next_ephemeral = 49152

    def bind(self, port: Optional[int] = None) -> Socket:
        """Bind a port (or allocate an ephemeral one) and return a socket."""
        if port is None:
            while self._next_ephemeral in self._sockets:
                self._next_ephemeral += 1
            port = self._next_ephemeral
            self._next_ephemeral += 1
        if port in self._sockets:
            raise PortInUseError(f"{self.node.name}:{port} is already bound")
        socket = Socket(self, port)
        self._sockets[port] = socket
        return socket

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def deliver(self, message: Message) -> bool:
        """Hand an inbound message to the right socket.

        Returns False (message dropped) if the port is unbound or the host
        is down.
        """
        if not self.node.up:
            return False
        socket = self._sockets.get(message.dst[1])
        if socket is None or socket.closed:
            return False
        socket.inbox.put(message)
        return True

    def flush(self) -> None:
        """Discard every queued inbound message (host crash)."""
        for socket in self._sockets.values():
            socket.inbox.items.clear()
