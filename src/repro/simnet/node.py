"""Simulated hosts.

A :class:`Node` models one machine of the paper's testbed (one of the nine
P4 PCs).  It owns a transport (port-addressed inboxes), a liveness flag, and
a registry of crash/restart hooks so that higher layers (peers, services)
can participate in failure injection.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .process import Process

__all__ = ["Node"]


class Node:
    """One simulated machine."""

    def __init__(self, network: "Network", name: str):  # noqa: F821
        self.network = network
        self.env = network.env
        self.name = name
        self.up = True
        self.crash_count = 0
        self._processes: List[Process] = []
        self._crash_hooks: List[Callable[["Node"], None]] = []
        self._restart_hooks: List[Callable[["Node"], None]] = []
        # Set by the network when the host is added.
        self.transport: Optional["Transport"] = None  # noqa: F821

    # -- process management ---------------------------------------------------

    def spawn(self, generator, name: Optional[str] = None) -> Process:
        """Start a process that dies when this host crashes."""
        process = self.env.process(generator, name=name or f"{self.name}/proc")
        self._processes.append(process)
        return process

    def on_crash(self, hook: Callable[["Node"], None]) -> None:
        """Register a hook invoked when the host crashes."""
        self._crash_hooks.append(hook)

    def on_restart(self, hook: Callable[["Node"], None]) -> None:
        """Register a hook invoked when the host restarts."""
        self._restart_hooks.append(hook)

    # -- failure actions --------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop this host: kill its processes, drop its traffic."""
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        for process in self._processes:
            if process.is_alive and process is not self.env.active_process:
                process.interrupt("crash")
        self._processes = [p for p in self._processes if p.is_alive]
        if self.transport is not None:
            self.transport.flush()
        for hook in list(self._crash_hooks):
            hook(self)

    def restart(self) -> None:
        """Bring the host back up; restart hooks re-create its services."""
        if self.up:
            return
        self.up = True
        for hook in list(self._restart_hooks):
            hook(self)

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"<Node {self.name} {state}>"
