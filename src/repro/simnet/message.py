"""Network message model.

A :class:`Message` is what travels over simulated links.  Every message
carries a *category* string used by the global trace to attribute message
counts to protocol layers (discovery, heartbeat, election, request, ...),
which is what the paper's Figure 4 plots.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["Address", "Message"]

_MESSAGE_IDS = itertools.count(1)

#: A network address is ``(host_name, port)``.
Address = Tuple[str, int]


@dataclass
class Message:
    """A single datagram on the simulated network."""

    src: Address
    dst: Address
    payload: Any
    category: str = "data"
    size_bytes: int = 512
    headers: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_IDS))
    sent_at: Optional[float] = None
    correlation_id: Optional[int] = None
    hops: int = 0

    def reply_to(
        self,
        payload: Any,
        category: Optional[str] = None,
        size_bytes: Optional[int] = None,
    ) -> "Message":
        """Build a response addressed back to this message's sender."""
        return Message(
            src=self.dst,
            dst=self.src,
            payload=payload,
            category=category or self.category,
            size_bytes=size_bytes if size_bytes is not None else self.size_bytes,
            correlation_id=self.correlation_id or self.msg_id,
        )

    def __repr__(self) -> str:
        return (
            f"<Message #{self.msg_id} {self.category} "
            f"{self.src[0]}:{self.src[1]} -> {self.dst[0]}:{self.dst[1]}>"
        )
