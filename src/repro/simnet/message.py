"""Network message model.

A :class:`Message` is what travels over simulated links.  Every message
carries a *category* string used by the global trace to attribute message
counts to protocol layers (discovery, heartbeat, election, request, ...),
which is what the paper's Figure 4 plots.

``Message`` is a hand-rolled ``__slots__`` class rather than a dataclass:
million-message runs allocate one of these per datagram, and dropping the
per-instance ``__dict__`` (plus the dataclass ``__init__`` indirection)
is a measurable win on the simulator's hot path.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

__all__ = ["Address", "Message"]

_MESSAGE_IDS = itertools.count(1)

#: A network address is ``(host_name, port)``.
Address = Tuple[str, int]


class Message:
    """A single datagram on the simulated network."""

    __slots__ = (
        "src",
        "dst",
        "payload",
        "category",
        "size_bytes",
        "headers",
        "msg_id",
        "sent_at",
        "correlation_id",
        "hops",
    )

    def __init__(
        self,
        src: Address,
        dst: Address,
        payload: Any,
        category: str = "data",
        size_bytes: int = 512,
        headers: Optional[Dict[str, Any]] = None,
        msg_id: Optional[int] = None,
        sent_at: Optional[float] = None,
        correlation_id: Optional[int] = None,
        hops: int = 0,
    ):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.category = category
        self.size_bytes = size_bytes
        self.headers: Dict[str, Any] = {} if headers is None else headers
        self.msg_id = next(_MESSAGE_IDS) if msg_id is None else msg_id
        self.sent_at = sent_at
        self.correlation_id = correlation_id
        self.hops = hops

    def reply_to(
        self,
        payload: Any,
        category: Optional[str] = None,
        size_bytes: Optional[int] = None,
        headers: Optional[Dict[str, Any]] = None,
    ) -> "Message":
        """Build a response addressed back to this message's sender.

        The request's ``headers`` are carried over (as a copy, so the
        reply can be annotated without mutating the request) unless an
        explicit ``headers`` mapping replaces them — piggybacked metadata
        such as epoch gossip and journal hints must survive the turn.
        """
        return Message(
            src=self.dst,
            dst=self.src,
            payload=payload,
            category=category or self.category,
            size_bytes=size_bytes if size_bytes is not None else self.size_bytes,
            headers=dict(self.headers) if headers is None else headers,
            correlation_id=self.correlation_id or self.msg_id,
        )

    def __repr__(self) -> str:
        return (
            f"<Message #{self.msg_id} {self.category} "
            f"{self.src[0]}:{self.src[1]} -> {self.dst[0]}:{self.dst[1]}>"
        )
