"""Inter-process communication primitives: FIFO and priority stores.

A :class:`Store` is an unbounded (or bounded) queue of items.  ``put`` and
``get`` return events; processes yield them to block until the operation
completes.  These stores are the building block for message inboxes in the
simulated network.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, List, Tuple

from .events import Event

__all__ = ["Store", "PriorityStore", "StorePut", "StoreGet"]


class StorePut(Event):
    """Event that fires once the item has been accepted by the store."""

    __slots__ = ("item", "cancelled")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        self.cancelled = False
        store._put_waiters.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw this put: the waiting process died before it landed.

        Cancellation is a tombstone flag, not a ``deque.remove``: crashing
        a host interrupts every waiter parked on its deep inboxes, and a
        linear removal per waiter makes crash-heavy campaigns quadratic.
        :meth:`Store._trigger` skips (and drops) tombstoned waiters when
        they reach the head of the line.
        """
        if not self.triggered:
            self.cancelled = True


class StoreGet(Event):
    """Event that fires with the retrieved item."""

    __slots__ = ("cancelled",)

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        self.cancelled = False
        store._get_waiters.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw this get so no item is handed to a dead waiter.

        Without cancellation an interrupted process (a crashed host's
        worker blocked on its request queue) leaves an untriggered getter
        behind; the next ``put`` would succeed that orphan and the item
        would vanish — a request admitted but never served.  The process
        machinery cancels its abandoned target on interrupt detach.  Like
        :meth:`StorePut.cancel` this only tombstones the event (O(1));
        :meth:`Store._trigger` discards it when it surfaces.
        """
        if not self.triggered:
            self.cancelled = True


class Store:
    """An unbounded/bounded FIFO queue usable from simulated processes.

    Example::

        inbox = Store(env)
        inbox.put(message)          # returns an event; may be ignored
        item = yield inbox.get()    # inside a process
    """

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Queue ``item``; the returned event fires when accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request an item; the returned event fires with it."""
        return StoreGet(self)

    # -- internals -------------------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.popleft())
            return True
        return False

    def _trigger(self) -> None:
        """Match pending puts with capacity and pending gets with items.

        Cancelled waiters (tombstones left by :meth:`StorePut.cancel` /
        :meth:`StoreGet.cancel`) are discarded as they reach the head of
        their line, which keeps cancellation O(1) without ever serving a
        dead waiter.
        """
        progressed = True
        while progressed:
            progressed = False
            while self._put_waiters:
                put_event = self._put_waiters[0]
                if put_event.triggered or put_event.cancelled:
                    self._put_waiters.popleft()
                    continue
                if self._do_put(put_event):
                    self._put_waiters.popleft()
                    progressed = True
                else:
                    break
            while self._get_waiters:
                get_event = self._get_waiters[0]
                if get_event.triggered or get_event.cancelled:
                    self._get_waiters.popleft()
                    continue
                if self._do_get(get_event):
                    self._get_waiters.popleft()
                    progressed = True
                else:
                    break


class PriorityStore(Store):
    """A store that hands out the smallest item first.

    Items are compared as ``(priority_key, insertion_seq)`` so ties are
    FIFO and items never need to be comparable with each other.
    """

    def __init__(self, env, capacity: float = float("inf"), key=None):
        super().__init__(env, capacity)
        self._heap: List[Tuple[Any, int, Any]] = []
        self._seq = itertools.count()
        self._key = key or (lambda item: item)

    def __len__(self) -> int:
        return len(self._heap)

    def _do_put(self, event: StorePut) -> bool:
        if len(self._heap) < self.capacity:
            heapq.heappush(
                self._heap, (self._key(event.item), next(self._seq), event.item)
            )
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self._heap:
            _key, _seq, item = heapq.heappop(self._heap)
            event.succeed(item)
            return True
        return False
