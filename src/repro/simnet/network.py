"""The simulated network: hosts, links, routing, regions, partitions.

The default topology models the paper's testbed: a set of identical machines
on a switched 100 Mbit/s Ethernet LAN.  Message delay is *propagation*
(drawn from the link's latency model) plus *transmission* (size divided by
link bandwidth).  Hosts that are down, partitioned apart, or unlucky with
the loss rate never receive the message — the trace records the drop.

Multi-region topologies add a second tier: hosts may be placed in a named
:class:`Region` (each region is its own switched LAN), and regions are
joined by *directed* WAN links so up/down latency can be asymmetric.
Region-placed hosts live under a qualified name (``"<region>/<host>"``);
bare names still resolve when unambiguous, and resolve to an
:class:`UnknownHostError` naming both candidates when two regions contain
the same host name.  A single-region (or region-free) network behaves
byte-for-byte like the flat LAN the paper measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..obs import Observability
from .environment import Environment
from .latency import LatencyModel, lan_latency
from .message import Message
from .node import Node
from .rng import RngRegistry
from .trace import MessageTrace
from .transport import Transport

__all__ = ["Link", "Region", "Network", "UnknownHostError"]

#: 100 Mbit/s, the paper's Ethernet LAN.
DEFAULT_BANDWIDTH_BPS = 100e6


class UnknownHostError(Exception):
    """Raised when sending to or looking up a host that was never added."""


@dataclass
class Link:
    """Per-host-pair overrides of the default LAN characteristics."""

    latency: LatencyModel
    bandwidth_bps: float
    loss_rate: float = 0.0


@dataclass
class Region:
    """One switched LAN segment of a multi-region topology."""

    name: str
    link: Link
    hosts: Set[str] = field(default_factory=set)


class Network:
    """A set of hosts joined by (by default) one switched LAN."""

    def __init__(
        self,
        env: Environment,
        trace: Optional[MessageTrace] = None,
        rng: Optional[RngRegistry] = None,
        default_latency: Optional[LatencyModel] = None,
        default_bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        obs: Optional[Observability] = None,
    ):
        self.env = env
        self.trace = trace if trace is not None else MessageTrace()
        #: Request-scoped observability; disabled unless a caller (e.g.
        #: WhisperSystem) supplies an enabled instance, so bare networks
        #: pay nothing for the instrumentation hooks.
        self.obs = obs if obs is not None else Observability(enabled=False)
        self.rng = rng if rng is not None else RngRegistry(0)
        self.default_latency = default_latency or lan_latency()
        self.default_bandwidth_bps = default_bandwidth_bps
        self.loss_rate = 0.0
        self.hosts: Dict[str, Node] = {}
        self._links: Dict[FrozenSet[str], Link] = {}
        self.regions: Dict[str, Region] = {}
        #: Directed WAN links, ``(src_region, dst_region) -> Link`` — two
        #: entries per region pair so up/down latency can differ.
        self._wan_links: Dict[Tuple[str, str], Link] = {}
        self._host_region: Dict[str, str] = {}
        self._partitions: List[Tuple[Set[str], Set[str]]] = []
        self._rng_stream = self.rng.stream("network")
        #: Per-host NIC egress availability: a host transmits one frame at
        #: a time, so back-to-back sends serialise on the wire.
        self._egress_busy_until: Dict[str, float] = {}
        #: Decision-point hooks, fired at ``pre-send`` (a message is about
        #: to enter the wire) and ``pre-deliver`` (it is about to reach the
        #: destination transport).  A hook may mutate the world (crash a
        #: host, cut a partition) and/or return ``"drop"`` to discard the
        #: message.  Empty by default — the schedule-exploration checker
        #: (:mod:`repro.check`) injects faults here, at protocol decision
        #: points rather than wall-clock instants.
        self.hooks: List[Callable[[str, Message], Optional[str]]] = []

    def add_hook(self, hook: Callable[[str, "Message"], Optional[str]]) -> None:
        """Register a decision-point hook (see :attr:`hooks`)."""
        self.hooks.append(hook)

    def remove_hook(self, hook: Callable[[str, "Message"], Optional[str]]) -> None:
        if hook in self.hooks:
            self.hooks.remove(hook)

    def _fire_hooks(self, point: str, message: "Message") -> Optional[str]:
        verdict: Optional[str] = None
        for hook in list(self.hooks):
            if hook(point, message) == "drop":
                verdict = "drop"
        return verdict

    # -- topology ---------------------------------------------------------------

    def add_region(
        self,
        name: str,
        latency: Optional[LatencyModel] = None,
        bandwidth_bps: Optional[float] = None,
        loss_rate: float = 0.0,
    ) -> Region:
        """Declare a named LAN segment; hosts join it via ``add_host(region=)``."""
        if name in self.regions:
            raise ValueError(f"region {name!r} already exists")
        if "/" in name:
            raise ValueError(f"region name {name!r} must not contain '/'")
        region = Region(
            name=name,
            link=Link(
                latency=latency or self.default_latency,
                bandwidth_bps=bandwidth_bps or self.default_bandwidth_bps,
                loss_rate=loss_rate,
            ),
        )
        self.regions[name] = region
        return region

    def connect_regions(
        self,
        a: str,
        b: str,
        latency: Optional[LatencyModel] = None,
        latency_back: Optional[LatencyModel] = None,
        bandwidth_bps: Optional[float] = None,
        loss_rate: float = 0.0,
    ) -> Link:
        """Join two regions with a WAN link (asymmetric if ``latency_back``).

        ``latency`` shapes the ``a -> b`` direction, ``latency_back`` the
        return path (defaults to symmetric).  Cross-region traffic between
        unconnected regions is dropped with reason ``no-wan-route``.
        """
        for region in (a, b):
            if region not in self.regions:
                raise ValueError(f"unknown region {region!r}")
        if a == b:
            raise ValueError("a WAN link needs two distinct regions")
        forward = Link(
            latency=latency or self.default_latency,
            bandwidth_bps=bandwidth_bps or self.default_bandwidth_bps,
            loss_rate=loss_rate,
        )
        backward = Link(
            latency=latency_back or forward.latency,
            bandwidth_bps=forward.bandwidth_bps,
            loss_rate=loss_rate,
        )
        self._wan_links[(a, b)] = forward
        self._wan_links[(b, a)] = backward
        return forward

    def qualified_host(self, name: str, region: Optional[str]) -> str:
        """The key a host is stored under: ``"<region>/<name>"`` when placed."""
        if region is None or name.startswith(f"{region}/"):
            return name
        return f"{region}/{name}"

    def add_host(self, name: str, region: Optional[str] = None) -> Node:
        """Add a machine to the LAN (or to ``region``'s segment)."""
        if region is not None and region not in self.regions:
            raise ValueError(f"unknown region {region!r}")
        key = self.qualified_host(name, region)
        if key in self.hosts:
            raise ValueError(f"host {key!r} already exists")
        node = Node(self, key)
        node.transport = Transport(node)
        self.hosts[key] = node
        if region is not None:
            self._host_region[key] = region
            self.regions[region].hosts.add(key)
        return node

    def add_hosts(self, names: Iterable[str], region: Optional[str] = None) -> List[Node]:
        return [self.add_host(name, region=region) for name in names]

    def resolve_host_name(self, name: str) -> str:
        """Resolve a possibly-bare host name to its stored key.

        Exact keys win; a bare name resolves iff exactly one region-placed
        host carries it.  Two regions holding the same bare name raise an
        :class:`UnknownHostError` naming both candidates — the flat-namespace
        assumption partitions and sends used to make is a bug once regions
        can reuse host names.
        """
        if name in self.hosts:
            return name
        if self._host_region and "/" not in name:
            suffix = f"/{name}"
            candidates = [key for key in self.hosts if key.endswith(suffix)]
            if len(candidates) == 1:
                return candidates[0]
            if len(candidates) > 1:
                raise UnknownHostError(
                    f"{name!r} is ambiguous across regions: "
                    f"{sorted(candidates)}; use a qualified '<region>/{name}'"
                )
        raise UnknownHostError(name)

    def host(self, name: str) -> Node:
        return self.hosts[self.resolve_host_name(name)]

    def region_of(self, name: str) -> Optional[str]:
        """The region a host was placed in (``None`` for flat LAN hosts)."""
        return self._host_region.get(self.resolve_host_name(name))

    def region_hosts(self, region: str) -> Set[str]:
        if region not in self.regions:
            raise ValueError(f"unknown region {region!r}")
        return set(self.regions[region].hosts)

    def connect(
        self,
        a: str,
        b: str,
        latency: Optional[LatencyModel] = None,
        bandwidth_bps: Optional[float] = None,
        loss_rate: float = 0.0,
    ) -> Link:
        """Override the default LAN characteristics for one host pair."""
        a, b = self.resolve_host_name(a), self.resolve_host_name(b)
        link = Link(
            latency=latency or self.default_latency,
            bandwidth_bps=bandwidth_bps or self.default_bandwidth_bps,
            loss_rate=loss_rate,
        )
        self._links[frozenset((a, b))] = link
        return link

    def _route(self, src: str, dst: str) -> Optional[Link]:
        """The directed effective link, or ``None`` when no WAN route exists.

        Per-pair overrides win; then same-region traffic uses the region's
        LAN link, cross-region traffic the directed WAN link (``None`` if
        the regions were never connected), and everything else the default
        flat LAN — exactly the seed's behaviour when no regions exist.
        """
        override = self._links.get(frozenset((src, dst)))
        if override is not None:
            return override
        region_a = self._host_region.get(src)
        region_b = self._host_region.get(dst)
        if region_a is not None and region_b is not None:
            if region_a == region_b:
                return self.regions[region_a].link
            return self._wan_links.get((region_a, region_b))
        return Link(
            latency=self.default_latency,
            bandwidth_bps=self.default_bandwidth_bps,
            loss_rate=self.loss_rate,
        )

    def link_between(self, a: str, b: str) -> Link:
        """The effective ``a -> b`` link (override, region, WAN, or default)."""
        a, b = self.resolve_host_name(a), self.resolve_host_name(b)
        link = self._route(a, b)
        if link is not None:
            return link
        return Link(
            latency=self.default_latency,
            bandwidth_bps=self.default_bandwidth_bps,
            loss_rate=self.loss_rate,
        )

    # -- partitions ----------------------------------------------------------------

    def partition(
        self, side_a: Iterable[str], side_b: Iterable[str]
    ) -> Tuple[Set[str], Set[str]]:
        """Block all traffic between the two host groups.

        Returns a handle identifying *this* partition; pass it to
        :meth:`heal_partition` to remove only this split.  Overlapping
        partitions with different lifetimes stay independent that way —
        healing one must not heal the others.  Bare host names are
        resolved against the region namespace, so an ambiguous name (same
        host name in two regions) raises instead of silently matching
        neither key.
        """
        handle = (
            {self.resolve_host_name(name) for name in side_a},
            {self.resolve_host_name(name) for name in side_b},
        )
        self._partitions.append(handle)
        return handle

    def partition_regions(
        self, region_a: str, region_b: str
    ) -> Tuple[Set[str], Set[str]]:
        """Cut the WAN between two regions (all hosts of one vs. the other)."""
        return self.partition(self.region_hosts(region_a), self.region_hosts(region_b))

    def isolate_region(self, region: str) -> Tuple[Set[str], Set[str]]:
        """Partition one region away from every other host."""
        inside = self.region_hosts(region)
        outside = {name for name in self.hosts if name not in inside}
        return self.partition(inside, outside)

    def heal_partition(self, handle: Tuple[Set[str], Set[str]]) -> bool:
        """Remove one partition (by handle identity); True if it was active."""
        for index, active in enumerate(self._partitions):
            if active is handle:
                del self._partitions[index]
                return True
        return False

    def heal_partitions(self) -> None:
        """Remove every active partition."""
        self._partitions.clear()

    def partitioned(self, a: str, b: str) -> bool:
        """True if hosts ``a`` and ``b`` cannot currently communicate."""
        for side_a, side_b in self._partitions:
            if (a in side_a and b in side_b) or (a in side_b and b in side_a):
                return True
        return False

    # -- delivery -----------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Inject ``message``; it arrives (or is dropped) after the link delay."""
        message.sent_at = self.env.now
        self.trace.on_send(self.env.now, message)

        src_name, dst_name = message.src[0], message.dst[0]
        if dst_name not in self.hosts:
            raise UnknownHostError(dst_name)
        if src_name not in self.hosts:
            # Symmetric with the destination check: a spoofed/typo'd source
            # is a caller bug, not a droppable network condition.
            raise UnknownHostError(src_name)
        src_node = self.hosts[src_name]

        if self.hooks and self._fire_hooks("pre-send", message) == "drop":
            self.trace.on_drop(self.env.now, message, reason="fault-injected")
            return
        if not src_node.up:
            self.trace.on_drop(self.env.now, message, reason="src-down")
            return
        if self.partitioned(src_name, dst_name):
            self.trace.on_drop(self.env.now, message, reason="partition")
            return

        link = self._route(src_name, dst_name)
        if link is None:
            # Distinct regions with no WAN link between them.
            self.trace.on_drop(self.env.now, message, reason="no-wan-route")
            return
        loss = max(link.loss_rate, self.loss_rate)
        if loss > 0 and self._rng_stream.random() < loss:
            self.trace.on_drop(self.env.now, message, reason="loss")
            return

        if src_name == dst_name:
            # Loopback: negligible but non-zero delay keeps causality.
            delay = 1e-6
        else:
            propagation = link.latency(self._rng_stream)
            transmission = (message.size_bytes * 8) / link.bandwidth_bps
            # NIC egress serialisation: the sender's interface puts one
            # frame on the wire at a time, so a burst of sends queues.
            now = self.env.now
            egress_start = max(now, self._egress_busy_until.get(src_name, now))
            egress_done = egress_start + transmission
            self._egress_busy_until[src_name] = egress_done
            delay = (egress_done - now) + propagation

        timeout = self.env.timeout(delay)
        timeout.add_callback(lambda _event: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        dst_node = self.hosts[message.dst[0]]
        message.hops += 1
        if self.hooks and self._fire_hooks("pre-deliver", message) == "drop":
            self.trace.on_drop(self.env.now, message, reason="fault-injected")
            return
        if not dst_node.up or self.partitioned(message.src[0], message.dst[0]):
            self.trace.on_drop(self.env.now, message, reason="dst-down")
            return
        if dst_node.transport.deliver(message):
            self.trace.on_deliver(self.env.now, message)
        else:
            self.trace.on_drop(self.env.now, message, reason="no-socket")


def lan(
    env: Environment,
    host_names: Iterable[str],
    seed: int = 0,
    trace: Optional[MessageTrace] = None,
) -> Network:
    """Build the paper's testbed: identical hosts on a 100 Mbit/s LAN."""
    network = Network(env, trace=trace, rng=RngRegistry(seed))
    network.add_hosts(host_names)
    return network
