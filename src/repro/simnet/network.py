"""The simulated network: hosts, links, routing, partitions.

The default topology models the paper's testbed: a set of identical machines
on a switched 100 Mbit/s Ethernet LAN.  Message delay is *propagation*
(drawn from the link's latency model) plus *transmission* (size divided by
link bandwidth).  Hosts that are down, partitioned apart, or unlucky with
the loss rate never receive the message — the trace records the drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..obs import Observability
from .environment import Environment
from .latency import LatencyModel, lan_latency
from .message import Message
from .node import Node
from .rng import RngRegistry
from .trace import MessageTrace
from .transport import Transport

__all__ = ["Link", "Network", "UnknownHostError"]

#: 100 Mbit/s, the paper's Ethernet LAN.
DEFAULT_BANDWIDTH_BPS = 100e6


class UnknownHostError(Exception):
    """Raised when sending to or looking up a host that was never added."""


@dataclass
class Link:
    """Per-host-pair overrides of the default LAN characteristics."""

    latency: LatencyModel
    bandwidth_bps: float
    loss_rate: float = 0.0


class Network:
    """A set of hosts joined by (by default) one switched LAN."""

    def __init__(
        self,
        env: Environment,
        trace: Optional[MessageTrace] = None,
        rng: Optional[RngRegistry] = None,
        default_latency: Optional[LatencyModel] = None,
        default_bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        obs: Optional[Observability] = None,
    ):
        self.env = env
        self.trace = trace if trace is not None else MessageTrace()
        #: Request-scoped observability; disabled unless a caller (e.g.
        #: WhisperSystem) supplies an enabled instance, so bare networks
        #: pay nothing for the instrumentation hooks.
        self.obs = obs if obs is not None else Observability(enabled=False)
        self.rng = rng if rng is not None else RngRegistry(0)
        self.default_latency = default_latency or lan_latency()
        self.default_bandwidth_bps = default_bandwidth_bps
        self.loss_rate = 0.0
        self.hosts: Dict[str, Node] = {}
        self._links: Dict[FrozenSet[str], Link] = {}
        self._partitions: List[Tuple[Set[str], Set[str]]] = []
        self._rng_stream = self.rng.stream("network")
        #: Per-host NIC egress availability: a host transmits one frame at
        #: a time, so back-to-back sends serialise on the wire.
        self._egress_busy_until: Dict[str, float] = {}
        #: Decision-point hooks, fired at ``pre-send`` (a message is about
        #: to enter the wire) and ``pre-deliver`` (it is about to reach the
        #: destination transport).  A hook may mutate the world (crash a
        #: host, cut a partition) and/or return ``"drop"`` to discard the
        #: message.  Empty by default — the schedule-exploration checker
        #: (:mod:`repro.check`) injects faults here, at protocol decision
        #: points rather than wall-clock instants.
        self.hooks: List[Callable[[str, Message], Optional[str]]] = []

    def add_hook(self, hook: Callable[[str, "Message"], Optional[str]]) -> None:
        """Register a decision-point hook (see :attr:`hooks`)."""
        self.hooks.append(hook)

    def remove_hook(self, hook: Callable[[str, "Message"], Optional[str]]) -> None:
        if hook in self.hooks:
            self.hooks.remove(hook)

    def _fire_hooks(self, point: str, message: "Message") -> Optional[str]:
        verdict: Optional[str] = None
        for hook in list(self.hooks):
            if hook(point, message) == "drop":
                verdict = "drop"
        return verdict

    # -- topology ---------------------------------------------------------------

    def add_host(self, name: str) -> Node:
        """Add a machine to the LAN."""
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        node = Node(self, name)
        node.transport = Transport(node)
        self.hosts[name] = node
        return node

    def add_hosts(self, names: Iterable[str]) -> List[Node]:
        return [self.add_host(name) for name in names]

    def host(self, name: str) -> Node:
        try:
            return self.hosts[name]
        except KeyError:
            raise UnknownHostError(name) from None

    def connect(
        self,
        a: str,
        b: str,
        latency: Optional[LatencyModel] = None,
        bandwidth_bps: Optional[float] = None,
        loss_rate: float = 0.0,
    ) -> Link:
        """Override the default LAN characteristics for one host pair."""
        if a not in self.hosts or b not in self.hosts:
            raise UnknownHostError(f"{a!r} or {b!r}")
        link = Link(
            latency=latency or self.default_latency,
            bandwidth_bps=bandwidth_bps or self.default_bandwidth_bps,
            loss_rate=loss_rate,
        )
        self._links[frozenset((a, b))] = link
        return link

    def link_between(self, a: str, b: str) -> Link:
        """The effective link (override or LAN default) for a host pair."""
        link = self._links.get(frozenset((a, b)))
        if link is not None:
            return link
        return Link(
            latency=self.default_latency,
            bandwidth_bps=self.default_bandwidth_bps,
            loss_rate=self.loss_rate,
        )

    # -- partitions ----------------------------------------------------------------

    def partition(
        self, side_a: Iterable[str], side_b: Iterable[str]
    ) -> Tuple[Set[str], Set[str]]:
        """Block all traffic between the two host groups.

        Returns a handle identifying *this* partition; pass it to
        :meth:`heal_partition` to remove only this split.  Overlapping
        partitions with different lifetimes stay independent that way —
        healing one must not heal the others.
        """
        handle = (set(side_a), set(side_b))
        self._partitions.append(handle)
        return handle

    def heal_partition(self, handle: Tuple[Set[str], Set[str]]) -> bool:
        """Remove one partition (by handle identity); True if it was active."""
        for index, active in enumerate(self._partitions):
            if active is handle:
                del self._partitions[index]
                return True
        return False

    def heal_partitions(self) -> None:
        """Remove every active partition."""
        self._partitions.clear()

    def partitioned(self, a: str, b: str) -> bool:
        """True if hosts ``a`` and ``b`` cannot currently communicate."""
        for side_a, side_b in self._partitions:
            if (a in side_a and b in side_b) or (a in side_b and b in side_a):
                return True
        return False

    # -- delivery -----------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Inject ``message``; it arrives (or is dropped) after the link delay."""
        message.sent_at = self.env.now
        self.trace.on_send(self.env.now, message)

        src_name, dst_name = message.src[0], message.dst[0]
        if dst_name not in self.hosts:
            raise UnknownHostError(dst_name)
        if src_name not in self.hosts:
            # Symmetric with the destination check: a spoofed/typo'd source
            # is a caller bug, not a droppable network condition.
            raise UnknownHostError(src_name)
        src_node = self.hosts[src_name]

        if self.hooks and self._fire_hooks("pre-send", message) == "drop":
            self.trace.on_drop(self.env.now, message, reason="fault-injected")
            return
        if not src_node.up:
            self.trace.on_drop(self.env.now, message, reason="src-down")
            return
        if self.partitioned(src_name, dst_name):
            self.trace.on_drop(self.env.now, message, reason="partition")
            return

        link = self.link_between(src_name, dst_name)
        loss = max(link.loss_rate, self.loss_rate)
        if loss > 0 and self._rng_stream.random() < loss:
            self.trace.on_drop(self.env.now, message, reason="loss")
            return

        if src_name == dst_name:
            # Loopback: negligible but non-zero delay keeps causality.
            delay = 1e-6
        else:
            propagation = link.latency(self._rng_stream)
            transmission = (message.size_bytes * 8) / link.bandwidth_bps
            # NIC egress serialisation: the sender's interface puts one
            # frame on the wire at a time, so a burst of sends queues.
            now = self.env.now
            egress_start = max(now, self._egress_busy_until.get(src_name, now))
            egress_done = egress_start + transmission
            self._egress_busy_until[src_name] = egress_done
            delay = (egress_done - now) + propagation

        timeout = self.env.timeout(delay)
        timeout.add_callback(lambda _event: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        dst_node = self.hosts[message.dst[0]]
        message.hops += 1
        if self.hooks and self._fire_hooks("pre-deliver", message) == "drop":
            self.trace.on_drop(self.env.now, message, reason="fault-injected")
            return
        if not dst_node.up or self.partitioned(message.src[0], message.dst[0]):
            self.trace.on_drop(self.env.now, message, reason="dst-down")
            return
        if dst_node.transport.deliver(message):
            self.trace.on_deliver(self.env.now, message)
        else:
            self.trace.on_drop(self.env.now, message, reason="no-socket")


def lan(
    env: Environment,
    host_names: Iterable[str],
    seed: int = 0,
    trace: Optional[MessageTrace] = None,
) -> Network:
    """Build the paper's testbed: identical hosts on a 100 Mbit/s LAN."""
    network = Network(env, trace=trace, rng=RngRegistry(seed))
    network.add_hosts(host_names)
    return network
