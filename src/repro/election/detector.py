"""Heartbeat-based failure detection.

Whisper's replicas are *statically redundant*: "all replicas implementing
services are active at the same time" (§4.1), so detecting a dead
coordinator is a matter of missed heartbeats, not missed work.  Each
non-coordinator member pings the coordinator periodically; after
``miss_threshold`` consecutive unanswered pings the coordinator is
suspected and the on-failure callback fires (typically starting a Bully
election).

The detection period — ``interval * miss_threshold`` — is the first of the
two components of the paper's multi-second worst-case RTT (§5); the bench
``test_rtt_failover`` sweeps it.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from ..simnet.events import Interrupt
from ..p2p.endpoint import UnresolvablePeerError
from ..p2p.ids import PeerGroupId, PeerId
from ..p2p.peergroup import GroupService

__all__ = ["HeartbeatMonitor", "PROTOCOL"]

PROTOCOL = "whisper:heartbeat"

PING = "ping"
PONG = "pong"


class HeartbeatMonitor:
    """Monitors one target peer (the group coordinator) from one member."""

    def __init__(
        self,
        groups: GroupService,
        group_id: PeerGroupId,
        interval: float = 1.0,
        miss_threshold: int = 3,
    ):
        self.groups = groups
        self.group_id = group_id
        self.endpoint = groups.endpoint
        self.env = self.endpoint.node.env
        self.interval = interval
        self.miss_threshold = miss_threshold

        self.target: Optional[PeerId] = None
        #: Set by the owner so pongs can state whether this peer actually
        #: coordinates; a pong that denies coordination counts as a miss.
        self.is_coordinator_check: Optional[Callable[[], bool]] = None
        self.pings_sent = 0
        self.pongs_received = 0
        self.failures_reported = 0
        self._on_failure: Optional[Callable[[PeerId], None]] = None
        self._seq = itertools.count(1)
        self._outstanding: Dict[int, bool] = {}
        self._process = None
        groups.register_group_listener(PROTOCOL, self._on_message)

    # -- control -----------------------------------------------------------------------

    def watch(self, target: PeerId, on_failure: Callable[[PeerId], None]) -> None:
        """Start (or retarget) monitoring of ``target``."""
        self.target = target
        self._on_failure = on_failure
        self._outstanding.clear()
        if target == self.endpoint.peer_id:
            self.stop()  # a coordinator does not monitor itself
            return
        if self._process is None or not self._process.is_alive:
            self._process = self.endpoint.node.spawn(
                self._monitor_loop(), name=f"hb:{self.endpoint.node.name}"
            )

    def stop(self) -> None:
        """Stop monitoring (the target reference is kept for inspection)."""
        if self._process is not None and self._process.is_alive:
            process, self._process = self._process, None
            if process is not self.env.active_process:
                process.interrupt("stop")
        self._process = None
        self._outstanding.clear()

    @property
    def active(self) -> bool:
        return self._process is not None and self._process.is_alive

    # -- the monitoring loop ------------------------------------------------------------

    def _monitor_loop(self):
        misses = 0
        try:
            while True:
                target = self.target
                if target is None or target == self.endpoint.peer_id:
                    return
                sequence = next(self._seq)
                self._outstanding[sequence] = False
                try:
                    self.groups.send_to_member(
                        self.group_id,
                        target,
                        PROTOCOL,
                        (PING, self.endpoint.peer_id, sequence),
                        category="heartbeat",
                        size_bytes=64,
                    )
                    self.pings_sent += 1
                except UnresolvablePeerError:
                    pass
                # The pong gets one full interval to arrive; the next ping
                # goes out right after the check, so each miss costs exactly
                # ``interval`` and detection takes the documented
                # ``interval * miss_threshold``.
                yield self.env.timeout(self.interval)
                if self.target is not target:
                    self._outstanding.pop(sequence, None)
                    misses = 0
                    continue
                if self._outstanding.pop(sequence, False):
                    misses = 0
                else:
                    misses += 1
                    if misses >= self.miss_threshold:
                        self.failures_reported += 1
                        misses = 0
                        callback, failed = self._on_failure, target
                        self._process = None
                        # Drop sequences still in flight so a pong from the
                        # dead coordinator arriving late cannot be credited
                        # to the next monitoring run.
                        self._outstanding.clear()
                        if callback is not None:
                            callback(failed)
                        return
        except Interrupt:
            return

    # -- message handling -----------------------------------------------------------------

    def _on_message(self, payload, src_peer: PeerId, group_id: PeerGroupId) -> None:
        if group_id != self.group_id or not self.endpoint.node.up:
            return
        kind = payload[0]
        if kind == PING:
            _kind, requester, sequence = payload
            coordinating = (
                self.is_coordinator_check() if self.is_coordinator_check else True
            )
            try:
                self.groups.send_to_member(
                    self.group_id,
                    requester,
                    PROTOCOL,
                    (PONG, self.endpoint.peer_id, sequence, coordinating),
                    category="heartbeat",
                    size_bytes=64,
                )
            except UnresolvablePeerError:
                pass
        elif kind == PONG:
            _kind, _responder, sequence, coordinating = payload
            if sequence in self._outstanding and coordinating:
                # A pong denying coordination is deliberately NOT recorded:
                # the responder is alive but abdicated, so the miss counter
                # climbs and a re-election follows.
                self._outstanding[sequence] = True
                self.pongs_received += 1
