"""Coordinator election and failure detection for b-peer groups.

Implements the Bully algorithm the paper's b-peers run (§4.1–4.2) plus the
heartbeat failure detector that triggers it.  The end-to-end failover time
— detection + election + re-binding — is what produces the paper's
"worst case ... several seconds" RTT (§5).
"""

from .bully import BullyElector, ElectionStats
from .coordinator import GroupCoordinator
from .detector import HeartbeatMonitor
from .epoch import GENESIS, Epoch

__all__ = [
    "BullyElector",
    "ElectionStats",
    "Epoch",
    "GENESIS",
    "GroupCoordinator",
    "HeartbeatMonitor",
]
