"""Group coordination: glue between election and failure detection.

Each b-peer runs one :class:`GroupCoordinator` per group.  It owns a
:class:`~repro.election.bully.BullyElector` and a
:class:`~repro.election.detector.HeartbeatMonitor`, and closes the loop:

* when a coordinator is elected, every other member starts monitoring it;
* when the monitor suspects the coordinator, the member removes it from
  its group view and starts a Bully election;
* the winner announces itself; monitors re-target; the group is healthy
  again.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..p2p.ids import PeerGroupId, PeerId
from ..p2p.peergroup import GroupService
from .bully import BullyElector
from .detector import HeartbeatMonitor

__all__ = ["GroupCoordinator"]


class GroupCoordinator:
    """Fault-tolerant coordinator tracking for one peer in one group."""

    def __init__(
        self,
        groups: GroupService,
        group_id: PeerGroupId,
        heartbeat_interval: float = 1.0,
        miss_threshold: int = 3,
        answer_timeout: float = 0.5,
        coordinator_timeout: float = 1.5,
        epoch_fencing: bool = True,
    ):
        self.groups = groups
        self.group_id = group_id
        self.elector = BullyElector(
            groups,
            group_id,
            answer_timeout=answer_timeout,
            coordinator_timeout=coordinator_timeout,
            epoch_fencing=epoch_fencing,
        )
        self.monitor = HeartbeatMonitor(
            groups,
            group_id,
            interval=heartbeat_interval,
            miss_threshold=miss_threshold,
        )
        self._change_listeners: List[Callable[[Optional[PeerId]], None]] = []
        self.failovers = 0
        self._watchdog = None
        self.watchdog_interval = max(2.0, heartbeat_interval * 2)
        self.monitor.is_coordinator_check = lambda: self.elector.is_coordinator
        self.elector.on_coordinator_elected(self._on_elected)
        groups.endpoint.node.on_crash(lambda _node: self._on_crash())
        groups.endpoint.node.on_restart(lambda _node: self._start_watchdog())
        self._start_watchdog()

    # -- public API ------------------------------------------------------------------

    @property
    def coordinator(self) -> Optional[PeerId]:
        return self.elector.coordinator

    @property
    def epoch(self):
        """Fencing epoch of the currently accepted coordinator."""
        return self.elector.epoch

    @property
    def is_coordinator(self) -> bool:
        return self.elector.is_coordinator

    def on_change(self, listener: Callable[[Optional[PeerId]], None]) -> None:
        """Observe coordinator changes (listener receives the new id)."""
        self._change_listeners.append(listener)

    def bootstrap(self) -> None:
        """Start the first election for this group."""
        self.elector.start_election()

    # -- internal ---------------------------------------------------------------------

    def _start_watchdog(self) -> None:
        if self._watchdog is None or not self._watchdog.is_alive:
            self._watchdog = self.groups.endpoint.node.spawn(
                self._watchdog_loop(),
                name=f"coord-watchdog:{self.groups.endpoint.node.name}",
            )

    def _watchdog_loop(self):
        """Self-healing: elect whenever the group has no known coordinator.

        Covers the races a single explicit bootstrap cannot: members that
        joined after the first election, simultaneous coordinator and
        monitor loss, and restarts.  Concurrent elections are safe — the
        Bully ANSWER mechanism collapses them.
        """
        from ..simnet.events import Interrupt

        env = self.groups.endpoint.node.env
        try:
            while True:
                yield env.timeout(self.watchdog_interval)
                if not self.groups.is_member(self.group_id):
                    continue
                if self.elector.is_coordinator:
                    # Quiescent anti-entropy: keep re-advertising our term
                    # so a rival claimant from a healed partition is found
                    # (and fenced off) even with no client traffic at all.
                    self.elector.reaffirm()
                coordinator = self.elector.coordinator
                needs_election = coordinator is None or (
                    coordinator not in self.groups.members(self.group_id)
                )
                stale_monitor = (
                    coordinator is not None
                    and coordinator != self.groups.endpoint.peer_id
                    and not self.monitor.active
                )
                if needs_election:
                    self.elector.start_election()
                elif stale_monitor:
                    self.monitor.watch(coordinator, self._on_coordinator_failure)
        except Interrupt:
            return

    def _on_elected(self, coordinator: PeerId) -> None:
        if coordinator != self.groups.endpoint.peer_id:
            self.monitor.watch(coordinator, self._on_coordinator_failure)
        else:
            self.monitor.stop()
        for listener in self._change_listeners:
            listener(coordinator)

    def _on_coordinator_failure(self, failed: PeerId) -> None:
        """The monitored coordinator stopped answering: fail over."""
        self.failovers += 1
        self.groups.remove_member(self.group_id, failed)
        if self.elector.coordinator == failed:
            self.elector.coordinator = None
        self.elector.start_election()

    def _on_crash(self) -> None:
        self.monitor.stop()
        self.elector.coordinator = None
        self.elector.election_in_progress = False
        self._watchdog = None
