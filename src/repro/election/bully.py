"""The Bully election algorithm (Garcia-Molina, 1982).

"If one replica fails another replica is elected (using the Bully
algorithm) and used immediately" (§4.1); "more importantly they implement
the Bully algorithm to provide a fundamental mechanism to enable a good
fault-tolerance" (§4.2).

Peers are totally ordered by their peer-ID hex.  On suspicion of the
coordinator, a peer sends ELECTION to everyone above it:

* nobody answers within ``answer_timeout`` → it wins, broadcasts
  COORDINATOR;
* somebody ANSWERs → it waits ``coordinator_timeout`` for a COORDINATOR
  broadcast, restarting the election if none arrives (the answering peer
  died mid-election).

Message complexity is O(n²) worst case (lowest peer detects) and O(n) best
case (highest surviving peer detects) — measured by Ablation C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from ..simnet.events import AnyOf, Interrupt
from ..p2p.endpoint import UnresolvablePeerError
from ..p2p.ids import PeerGroupId, PeerId
from ..p2p.peergroup import GroupService
from .epoch import GENESIS, Epoch

__all__ = ["BullyElector", "PROTOCOL", "ElectionStats"]

PROTOCOL = "whisper:election"

#: Wire message kinds.
ELECTION = "election"
ANSWER = "answer"
COORDINATOR = "coordinator"


@dataclass
class ElectionStats:
    """Counters for benchmark reporting."""

    elections_started: int = 0
    elections_won: int = 0
    election_messages_sent: int = 0


class BullyElector:
    """Runs Bully elections for one peer within one group."""

    def __init__(
        self,
        groups: GroupService,
        group_id: PeerGroupId,
        answer_timeout: float = 0.5,
        coordinator_timeout: float = 1.5,
        epoch_fencing: bool = True,
    ):
        self.groups = groups
        self.group_id = group_id
        self.endpoint = groups.endpoint
        self.env = self.endpoint.node.env
        self.answer_timeout = answer_timeout
        self.coordinator_timeout = coordinator_timeout
        #: With fencing off (checker self-tests only), stale COORDINATOR
        #: announcements are accepted and a coordinator whose term went
        #: stale keeps serving — the pre-PR-2 behaviour.  Epochs are still
        #: minted and recorded so the invariant audit stays meaningful.
        self.epoch_fencing = epoch_fencing

        self.coordinator: Optional[PeerId] = None
        #: Epoch of the currently accepted coordinator (GENESIS before any
        #: election).  Serves as a fencing token: announcements and exec
        #: requests stamped with a lower epoch are stale and rejected.
        self.epoch: Epoch = GENESIS
        #: Highest epoch ever observed on any message — the floor for the
        #: epoch this peer would mint if it won an election.  Survives
        #: crashes (the object persists), so a restarted ex-coordinator can
        #: never re-announce an old term.
        self.max_epoch_seen: Epoch = GENESIS
        #: ``(sim_time, epoch)`` for every COORDINATOR announcement this
        #: peer broadcast — audited by the fault campaign's invariants.
        self.announced: List[Tuple[float, Epoch]] = []
        self.election_in_progress = False
        self.stats = ElectionStats()
        #: Network-wide observability (disabled on bare networks): each
        #: election records an ``elect`` phase duration.
        self.obs = self.endpoint.node.network.obs
        self._answer_event = None
        self._coordinator_event = None
        #: Peers that sent ANSWER during the current round — provably
        #: alive, so a stalled election must never prune them.
        self._answered: Set[PeerId] = set()
        self._listeners: List[Callable[[PeerId], None]] = []
        groups.register_group_listener(PROTOCOL, self._on_message)
        groups.on_membership_change(self._on_membership_change)

    # -- public API -----------------------------------------------------------------

    @property
    def my_id(self) -> PeerId:
        return self.endpoint.peer_id

    @property
    def is_coordinator(self) -> bool:
        return self.coordinator == self.my_id

    def on_coordinator_elected(self, listener: Callable[[PeerId], None]) -> None:
        """Observe every COORDINATOR announcement this peer accepts."""
        self._listeners.append(listener)

    def start_election(self) -> None:
        """Kick off an election (no-op if one is already running here).

        Also a no-op when this peer is not (or no longer) a member — e.g.
        a stale ELECTION message arriving after a graceful shutdown.
        """
        if self.election_in_progress or not self.endpoint.node.up:
            return
        if not self.groups.is_member(self.group_id):
            return
        self.election_in_progress = True
        self.stats.elections_started += 1
        self.obs.metrics.inc("election.started")
        self.endpoint.node.spawn(
            self._run_election(), name=f"bully:{self.endpoint.node.name}"
        )

    # -- the election round ------------------------------------------------------------

    def _run_election(self):
        started_at = self.env.now
        try:
            while True:
                higher = self._higher_members()
                if not higher:
                    self._become_coordinator()
                    return
                # Arm both events BEFORE sending: a COORDINATOR broadcast
                # may land at any instant during the round, including while
                # we are still waiting for ANSWERs.
                self._answer_event = self.env.event()
                self._coordinator_event = self.env.event()
                self._answered.clear()
                for peer in sorted(higher, key=lambda pid: pid.uuid_hex):
                    self._send(peer, ELECTION)
                timer = self.env.timeout(self.answer_timeout)
                outcome = yield AnyOf(
                    self.env, [self._answer_event, self._coordinator_event, timer]
                )
                if self._coordinator_event in outcome:
                    return  # someone higher already announced
                if self._answer_event not in outcome:
                    # Silence above us: we win.
                    self._become_coordinator()
                    return
                # Someone higher is alive; wait for its COORDINATOR.
                coord_timer = self.env.timeout(self.coordinator_timeout)
                outcome = yield AnyOf(self.env, [self._coordinator_event, coord_timer])
                if self._coordinator_event in outcome:
                    return  # coordinator accepted via _on_message
                if self.coordinator is not None and (
                    self.coordinator.uuid_hex > self.my_id.uuid_hex
                ):
                    # An announcement slipped past the event (processed just
                    # before this round armed it): accept it.
                    return
                # The higher peer died mid-election; drop it and retry.
                self._prune_dead_candidates(higher)
        except Interrupt:
            return
        finally:
            self.election_in_progress = False
            self._answer_event = None
            self._coordinator_event = None
            self._answered.clear()
            self.obs.observe_phase("elect", self.env.now - started_at)

    def _higher_members(self) -> List[PeerId]:
        mine = self.my_id.uuid_hex
        return [
            member
            for member in self.groups.members(self.group_id)
            if member.uuid_hex > mine
        ]

    def _prune_dead_candidates(self, higher: List[PeerId]) -> None:
        """After a stalled election, drop the higher peers that stayed silent.

        A peer that sent ANSWER this round is provably alive — its
        COORDINATOR broadcast is merely late (e.g. its own round is still
        waiting out a timeout).  Pruning it would demote a live higher
        peer and let a lower one win, violating the Bully invariant, so
        only candidates that never answered are removed.
        """
        for peer in higher:
            if peer in self._answered:
                continue
            self.groups.remove_member(self.group_id, peer)

    def _become_coordinator(self) -> None:
        view = self.groups.groups.get(self.group_id)
        if view is None or self.my_id not in view.members:
            return  # left the group mid-election
        self.coordinator = self.my_id
        # Mint a fresh term strictly above everything this peer has seen:
        # even if a partitioned rival minted the same counter, the owner
        # component keeps the full epochs distinct.
        self.epoch = self.max_epoch_seen.next_for(self.my_id.uuid_hex)
        self.max_epoch_seen = self.epoch
        self.announced.append((self.env.now, self.epoch))
        self.stats.elections_won += 1
        self.obs.metrics.inc("election.won")
        self.obs.metrics.inc("election.epochs_announced")
        for member in view.sorted_members():
            if member != self.my_id:
                self._send(member, COORDINATOR)
        self._notify(self.my_id)

    def reaffirm(self) -> None:
        """Re-broadcast our coordinatorship to the current view.

        Quiescent anti-entropy: a coordinator that won inside a partition
        exchanges no messages after the heal (members probe only the
        coordinator *they* accepted), so two claimants can coexist
        indefinitely while the group is idle.  A periodic re-affirmation
        gives fencing something to bite on — a staler receiver adopts the
        fresher term, a fresher receiver rejects the stale claim and
        re-elects, and either way the views converge without waiting for
        client traffic.  Re-affirmations re-send the *already announced*
        term; they are not new announcements and never touch
        :attr:`announced`.
        """
        if not self.is_coordinator or self.election_in_progress:
            return
        if self.epoch_fencing and self.max_epoch_seen > self.epoch:
            # Known-stale term: never re-advertise it — re-election (via
            # ``_re_elect_if_stale_term``) is the only way forward.
            return
        view = self.groups.groups.get(self.group_id)
        if view is None or self.my_id not in view.members:
            return
        for member in view.sorted_members():
            if member != self.my_id:
                self._send(member, COORDINATOR)
        self.obs.metrics.inc("election.reaffirmed")

    def _observe_epoch(self, epoch: Epoch) -> None:
        if epoch > self.max_epoch_seen:
            self.max_epoch_seen = epoch

    def observe_external_epoch(self, epoch: Epoch) -> None:
        """Fold in an epoch learned outside the election protocol.

        Proxies stamp requests with the highest term they ever saw, so
        epoch knowledge survives even when every peer that witnessed it
        crashed: the sole survivor re-wins with a lower counter, learns
        the higher term from the first client request, and re-mints above
        it — without this, its results would be discarded as stale until
        some witness restarts.
        """
        self._observe_epoch(epoch)
        self._re_elect_if_stale_term()

    def _re_elect_if_stale_term(self) -> None:
        if not self.epoch_fencing:
            return
        if self.is_coordinator and self.max_epoch_seen > self.epoch:
            # Our own term went stale: somewhere a higher term was minted
            # (we re-won without seeing it, or a partition healed).
            # Serving under it would feed the proxy results it must
            # discard — re-elect to mint a term above everything observed.
            self.obs.metrics.inc("election.stale_terms_detected")
            self.start_election()

    # -- messaging -----------------------------------------------------------------------

    def _send(self, peer: PeerId, kind: str) -> None:
        # COORDINATOR carries the freshly minted term; ELECTION/ANSWER
        # piggy-back the highest epoch seen so the eventual winner mints
        # above BOTH sides of a healed partition.
        epoch = self.epoch if kind == COORDINATOR else self.max_epoch_seen
        try:
            self.groups.send_to_member(
                self.group_id,
                peer,
                PROTOCOL,
                (kind, self.my_id, epoch),
                category="election",
                size_bytes=128,
            )
            self.stats.election_messages_sent += 1
            self.obs.metrics.inc("election.messages_sent")
        except UnresolvablePeerError:
            pass

    def _on_message(self, payload, src_peer: PeerId, group_id: PeerGroupId) -> None:
        if group_id != self.group_id or not self.endpoint.node.up:
            return
        if not self.groups.is_member(self.group_id):
            return  # stale traffic after leaving the group
        # Legacy 2-tuple payloads (no epoch) keep working: epoch-less
        # announcements skip the staleness check and follow pre-epoch rules.
        kind, sender = payload[0], payload[1]
        epoch: Optional[Epoch] = payload[2] if len(payload) > 2 else None
        if epoch is not None:
            self._observe_epoch(epoch)
        if kind == ELECTION:
            # A lower peer is electing: suppress it and take over.
            if sender.uuid_hex < self.my_id.uuid_hex:
                self._send(sender, ANSWER)
                if self.is_coordinator and self.epoch >= self.max_epoch_seen:
                    # Already coordinating under the freshest term we know:
                    # a direct re-announcement settles the initiator without
                    # a fresh broadcast storm.  (A coordinator whose term
                    # went stale must NOT re-announce it — the check at the
                    # bottom re-elects instead.)
                    self._send(sender, COORDINATOR)
                elif (
                    self.coordinator is not None
                    and self.coordinator.uuid_hex > self.my_id.uuid_hex
                    and self.coordinator in self.groups.members(self.group_id)
                ):
                    # A live higher coordinator is known: no need to cascade
                    # an election of our own (bounds the message storm when
                    # many peers elect simultaneously).
                    pass
                else:
                    self.start_election()
        elif kind == ANSWER:
            self._answered.add(sender)
            if self._answer_event is not None and not self._answer_event.triggered:
                self._answer_event.succeed(sender)
        elif kind == COORDINATOR:
            if self.epoch_fencing and epoch is not None and epoch < self.epoch:
                # Stale term: an ex-coordinator (typically a healed
                # partition minority) is re-announcing an epoch this peer
                # has already moved past.
                self.obs.metrics.inc("election.stale_announcements_rejected")
                if self.is_coordinator and self.epoch >= self.max_epoch_seen:
                    # We coordinate under the freshest term we know: rebuff
                    # the claimant directly with it.  Silent rejection
                    # would deadlock when OUR announcements cannot reach it
                    # (its entry fell out of our view after an eviction):
                    # it keeps re-affirming, we keep re-electing, and
                    # nobody ever tells it about the fresher term.  On
                    # receipt it either adopts (we outrank it) or mints
                    # above our term via its own election — converged
                    # either way.
                    self._send(sender, COORDINATOR)
                else:
                    # Not the incumbent (or our own term is stale too):
                    # re-elect, and the winner will mint above both terms.
                    self.start_election()
                return
            if sender.uuid_hex < self.my_id.uuid_hex:
                # A lower peer claims coordination while we are alive: the
                # Bully invariant is violated (crossed announcements from
                # concurrent elections).  Re-elect; we or someone higher
                # will win.
                self.start_election()
                return
            if (
                sender == self.coordinator
                and epoch is not None
                and epoch == self.epoch
            ):
                # Periodic re-affirmation of the incumbent we already
                # accepted: nothing changed, so skip the re-notify churn
                # (but settle any election round waiting for this).
                if (
                    self._coordinator_event is not None
                    and not self._coordinator_event.triggered
                ):
                    self._coordinator_event.succeed(sender)
                return
            self.coordinator = sender
            if epoch is not None:
                self.epoch = epoch
            if (
                self._coordinator_event is not None
                and not self._coordinator_event.triggered
            ):
                self._coordinator_event.succeed(sender)
            self._notify(sender)
        self._re_elect_if_stale_term()

    def _on_membership_change(
        self, group_id: PeerGroupId, peer_id: PeerId, change: str
    ) -> None:
        """Late joiners learn the incumbent; a dead incumbent is forgotten."""
        if group_id != self.group_id or not self.endpoint.node.up:
            return
        if change == "joined" and self.is_coordinator and peer_id != self.my_id:
            self._send(peer_id, COORDINATOR)
        elif change in ("left", "removed") and peer_id == self.coordinator:
            self.coordinator = None
            if change == "left" and self.groups.is_member(self.group_id):
                # Graceful departure of the coordinator: elect immediately
                # instead of waiting for heartbeat detection or the
                # watchdog — this is what makes planned maintenance fast.
                self.start_election()

    def _notify(self, coordinator: PeerId) -> None:
        for listener in self._listeners:
            listener(coordinator)
