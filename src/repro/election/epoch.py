"""Election epochs: fencing tokens for coordinator announcements.

Bully has no quorum, so after a partition two sides may each elect a
coordinator and — worse — a healed ex-coordinator may keep serving
requests it has no right to serve.  Following the peer-group availability
design of Jan et al. ("Exploiting peer group concept for adaptive and
highly available services"), every COORDINATOR announcement is stamped
with a monotonically increasing :class:`Epoch`; proxies bind to *(peer,
epoch)* pairs and b-peers reject requests addressed to a stale epoch.

An epoch is a ``(counter, owner)`` pair ordered lexicographically.  The
owner component makes every minted epoch globally unique without any
coordination: two partitioned winners may both pick counter *n + 1*, but
their full epochs still differ, so "at most one coordinator per epoch"
holds by construction and is *checkable* — a campaign can verify that no
two peers ever announced the same full epoch, and that no peer announced
an epoch it does not own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Epoch", "GENESIS"]


@dataclass(frozen=True)
class Epoch:
    """One coordinator term: a counter tie-broken by the winner's id."""

    counter: int = 0
    #: ``uuid_hex`` of the peer that minted (and coordinates) this epoch.
    owner_hex: str = ""

    def key(self) -> Tuple[int, str]:
        return (self.counter, self.owner_hex)

    def next_for(self, owner_hex: str) -> "Epoch":
        """The epoch a new winner mints on top of the highest it has seen."""
        return Epoch(self.counter + 1, owner_hex)

    # -- ordering (lexicographic on (counter, owner)) -------------------------------

    def __lt__(self, other: "Epoch") -> bool:
        return self.key() < other.key()

    def __le__(self, other: "Epoch") -> bool:
        return self.key() <= other.key()

    def __gt__(self, other: "Epoch") -> bool:
        return self.key() > other.key()

    def __ge__(self, other: "Epoch") -> bool:
        return self.key() >= other.key()

    def __str__(self) -> str:
        owner = self.owner_hex[:8] if self.owner_hex else "-"
        return f"e{self.counter}@{owner}"


#: The pre-election epoch: below every minted epoch.
GENESIS = Epoch()
