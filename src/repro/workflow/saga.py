"""Saga orchestration: compensating multi-service B2B transactions.

A B2B process spanning several Whisper services cannot use a distributed
lock or two-phase commit — the paper's services are autonomous parties.
The classic answer is the **saga**: a sequence of steps where every
mutating step declares a *compensating* operation, and a failure after
partial progress runs the compensations in reverse commit order, leaving
the business state as if the saga never ran.

Fault tolerance comes from three pieces riding on the existing
machinery:

* **Proxy-backed steps** — every forward and compensating call goes
  through ``service.invoke`` (the SWS-Proxy pipeline): discovery,
  retry-with-deadline, epoch-fenced failover, overload shedding.
* **Write-ahead saga log** — the orchestrator durably records each
  step's intent *before* sending, under a deterministic idempotency key
  (``saga:<id>:<step>:fwd`` / ``:comp``).  A crashed orchestrator host
  restarts, replays the log, and re-issues in-doubt calls under the
  *same* key; the b-peer dedup journal answers retries from the original
  execution instead of re-executing — exactly-once across the crash.
* **Dead-letter queue** — a saga whose *compensation* exhausts its own
  retry budget cannot be silently dropped (that would strand partial
  effects); it parks in the :class:`~repro.workflow.dlq.DeadLetterQueue`
  for operator inspection and requeue (``python -m repro dlq``).

The checker invariant (:func:`repro.check.invariants.saga_atomicity_violations`)
audits the resulting guarantee: for every saga id the backend effect
logs show all steps committed or every applied step compensated — never
a mix.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from ..simnet.events import Timeout
from ..simnet.node import Node
from .engine import TASK_ERRORS, format_error
from .model import Context, ServiceTask, WorkflowError, WorkflowNode

__all__ = [
    "CompensableTask",
    "Saga",
    "SagaLog",
    "SagaOrchestrator",
    "SagaRecord",
    "SagaState",
    "StepRecord",
    "StepState",
    "saga_invocation_id",
]


def saga_invocation_id(saga_id: str, step: str, phase: str) -> str:
    """The deterministic idempotency key for one saga step phase.

    ``phase`` is ``"fwd"`` (forward operation) or ``"comp"``
    (compensation).  The key is derived purely from durable log state,
    so a restarted orchestrator re-mints the identical key and the
    b-peer dedup journal collapses the retry.  The structured form also
    lets the checker parse saga membership back out of backend
    ``effect_log`` entries.
    """
    return f"saga:{saga_id}:{step}:{phase}"


class StepState:
    """Lifecycle of one step inside a saga record."""

    PENDING = "pending"
    #: Forward intent durably logged; the call may or may not have
    #: applied (the in-doubt window a crash can leave behind).
    EXECUTING = "executing"
    COMMITTED = "committed"
    #: Forward terminally failed — the effect may still have applied
    #: (e.g. deadline expired after the b-peer committed), so failed
    #: steps are compensated like committed ones.
    FAILED = "failed"
    COMPENSATING = "compensating"
    COMPENSATED = "compensated"


class SagaState:
    """Lifecycle of a whole saga record."""

    RUNNING = "running"
    COMMITTED = "committed"
    COMPENSATING = "compensating"
    COMPENSATED = "compensated"
    #: Compensation disabled (baseline / checker self-test): the saga
    #: failed and its partial effects were deliberately stranded.
    ABANDONED = "abandoned"
    #: Compensation itself exhausted its budget; parked in the DLQ.
    DEAD_LETTERED = "dead-lettered"

    TERMINAL = (COMMITTED, COMPENSATED, ABANDONED, DEAD_LETTERED)


@dataclass
class CompensableTask(WorkflowNode):
    """One saga step: a forward operation plus its compensation.

    ``service`` must be proxy-backed (``invoke`` generator returning an
    :class:`~repro.core.result.InvokeResult`) — sagas only make sense on
    top of the fault-tolerant invocation pipeline.
    ``compensate_operation=None`` marks a read-only step (nothing to
    undo); ``compensate_mapping`` defaults to ``input_mapping``, and
    runs against the saga context *as of compensation time*, which
    includes every committed step's output.
    """

    name: str
    service: Any = None
    operation: str = ""
    input_mapping: Callable[[Context], Dict[str, Any]] = lambda context: {}
    compensate_operation: Optional[str] = None
    compensate_mapping: Optional[Callable[[Context], Dict[str, Any]]] = None
    output_key: Optional[str] = None
    timeout: float = 30.0
    budget: Optional[float] = None
    compensate_timeout: float = 30.0
    compensate_budget: Optional[float] = None

    @property
    def mutating(self) -> bool:
        return self.compensate_operation is not None

    @property
    def compensation_mapping(self) -> Callable[[Context], Dict[str, Any]]:
        return self.compensate_mapping or self.input_mapping

    def forward_task(self) -> ServiceTask:
        """The forward half as a plain :class:`ServiceTask` (QoS view)."""
        return ServiceTask(
            name=self.name,
            service=self.service,
            operation=self.operation,
            input_mapping=self.input_mapping,
            output_key=self.output_key,
            timeout=self.timeout,
            budget=self.budget,
        )

    def tasks(self) -> List[ServiceTask]:
        return [self.forward_task()]

    def validate(self) -> None:
        if not self.name:
            raise WorkflowError("compensable task needs a name")
        if self.service is None or not hasattr(self.service, "invoke"):
            raise WorkflowError(
                f"step {self.name!r}: needs a proxy-backed service "
                "(exposing invoke())"
            )
        if not self.operation:
            raise WorkflowError(f"step {self.name!r}: needs an operation")
        if not callable(self.input_mapping):
            raise WorkflowError(
                f"step {self.name!r}: input_mapping must be callable"
            )
        if self.compensate_mapping is not None and not callable(
            self.compensate_mapping
        ):
            raise WorkflowError(
                f"step {self.name!r}: compensate_mapping must be callable"
            )
        if self.compensate_mapping is not None and self.compensate_operation is None:
            raise WorkflowError(
                f"step {self.name!r}: compensate_mapping without "
                "compensate_operation"
            )


@dataclass
class Saga(WorkflowNode):
    """An ordered sequence of compensable steps, atomic as a whole."""

    name: str
    steps: Sequence[CompensableTask]

    def tasks(self) -> List[ServiceTask]:
        return [step.forward_task() for step in self.steps]

    def validate(self) -> None:
        if not self.name:
            raise WorkflowError("saga needs a name")
        if not self.steps:
            raise WorkflowError(f"saga {self.name!r}: needs at least one step")
        seen: set = set()
        for step in self.steps:
            if not isinstance(step, CompensableTask):
                raise WorkflowError(
                    f"saga {self.name!r}: steps must be CompensableTask, "
                    f"got {type(step).__name__}"
                )
            step.validate()
            if step.name in seen:
                raise WorkflowError(
                    f"saga {self.name!r}: duplicate step name {step.name!r}"
                )
            seen.add(step.name)


@dataclass
class StepRecord:
    """Durable per-step state inside a :class:`SagaRecord`."""

    name: str
    state: str = StepState.PENDING
    #: Whether the step declared a compensation (read-only steps don't);
    #: the atomicity audit needs this to know the full-commit step set.
    mutating: bool = True
    invocation_id: Optional[str] = None
    compensation_id: Optional[str] = None
    compensation_attempts: int = 0
    error: Optional[str] = None
    #: True when the forward value came back from a dedup-journal replay
    #: (a resumed in-doubt step observing its original execution).
    deduped: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "mutating": self.mutating,
            "invocation_id": self.invocation_id,
            "compensation_id": self.compensation_id,
            "compensation_attempts": self.compensation_attempts,
            "error": self.error,
            "deduped": self.deduped,
        }


@dataclass
class SagaRecord:
    """One saga instance's durable state (and the run's result object)."""

    saga_id: str
    saga: str
    state: str = SagaState.RUNNING
    context: Context = field(default_factory=dict)
    steps: List[StepRecord] = field(default_factory=list)
    error: Optional[str] = None
    started_at: float = 0.0
    finished_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in SagaState.TERMINAL

    @property
    def succeeded(self) -> bool:
        return self.state == SagaState.COMMITTED

    @property
    def elapsed(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def step(self, name: str) -> StepRecord:
        for record in self.steps:
            if record.name == name:
                return record
        raise KeyError(name)

    def committed_steps(self) -> List[str]:
        return [s.name for s in self.steps if s.state == StepState.COMMITTED]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "saga_id": self.saga_id,
            "saga": self.saga,
            "state": self.state,
            "error": self.error,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "steps": [s.to_dict() for s in self.steps],
        }


class SagaLog:
    """The orchestrator's write-ahead log, modeling its durable disk.

    Every state transition is written *before* the action it announces
    (intent before send, outcome after receive), mirroring the b-peer
    :class:`~repro.core.journal.DedupJournal`'s EXECUTING/DONE split.
    Durability is modeled by object lifetime: crashing the orchestrator
    host kills its processes (simnet ``Interrupt``) but the log object —
    held by the deployment, like a disk — keeps everything written
    before the crash, and a fresh orchestrator on the restarted host
    resumes from it via :meth:`SagaOrchestrator.recover`.
    """

    def __init__(self):
        self._records: "OrderedDict[str, SagaRecord]" = OrderedDict()
        #: Sagas ever opened (monotonic; records are never evicted).
        self.opened = 0

    def open(
        self,
        saga_id: str,
        saga_name: str,
        context: Context,
        steps: Sequence[Any],
        now: float,
    ) -> SagaRecord:
        """Open (or re-open, idempotently) the record for ``saga_id``.

        ``steps`` items are step names or ``(name, mutating)`` pairs.
        """
        existing = self._records.get(saga_id)
        if existing is not None:
            if existing.saga != saga_name:
                raise WorkflowError(
                    f"saga id {saga_id!r} already logged for {existing.saga!r}"
                )
            return existing
        step_records = []
        for spec in steps:
            if isinstance(spec, str):
                step_records.append(StepRecord(name=spec))
            else:
                name, mutating = spec
                step_records.append(StepRecord(name=name, mutating=mutating))
        record = SagaRecord(
            saga_id=saga_id,
            saga=saga_name,
            context=dict(context),
            steps=step_records,
            started_at=now,
        )
        self._records[saga_id] = record
        self.opened += 1
        return record

    def get(self, saga_id: str) -> Optional[SagaRecord]:
        return self._records.get(saga_id)

    def records(self) -> List[SagaRecord]:
        return list(self._records.values())

    def incomplete(self) -> List[SagaRecord]:
        """Records a restarted orchestrator must resume or compensate."""
        return [r for r in self._records.values() if not r.terminal]

    def export(self) -> List[Dict[str, Any]]:
        return [record.to_dict() for record in self._records.values()]

    def __len__(self) -> int:
        return len(self._records)


class SagaOrchestrator:
    """Drives sagas from one (crashable) host against live services.

    Forward path: write step intent to the log, invoke through the
    proxy under the logged idempotency key, commit the output into the
    durable context.  On a terminal step failure, unwind: compensate
    every possibly-applied step in reverse order, each compensation
    exactly-once under its own logged key with an orchestrator-level
    attempt budget on top of the proxy's retries.  A compensation that
    exhausts ``max_compensation_attempts`` dead-letters the saga into
    ``dlq``.

    ``compensation_enabled=False`` is the measurement baseline (and the
    checker self-test's seeded defect): failed sagas are abandoned with
    their partial effects stranded — exactly what the atomicity
    invariant exists to catch.
    """

    def __init__(
        self,
        node: Node,
        log: Optional[SagaLog] = None,
        dlq=None,
        compensation_enabled: bool = True,
        max_compensation_attempts: int = 3,
        compensation_backoff: float = 0.5,
    ):
        self.node = node
        self.env = node.env
        self.obs = node.network.obs
        self.log = log if log is not None else SagaLog()
        self.dlq = dlq
        self.compensation_enabled = compensation_enabled
        self.max_compensation_attempts = max_compensation_attempts
        self.compensation_backoff = compensation_backoff
        self._definitions: Dict[str, Saga] = {}
        self._saga_seq = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # -- definitions -------------------------------------------------------------------

    def register(self, saga: Saga) -> None:
        """Validate and remember ``saga`` so :meth:`recover` can find it."""
        saga.validate()
        self._definitions[saga.name] = saga

    # -- public API --------------------------------------------------------------------

    def run(
        self,
        saga: Saga,
        context: Optional[Context] = None,
        saga_id: Optional[str] = None,
    ) -> SagaRecord:
        """Execute ``saga`` to completion (advances the simulation)."""
        generator = self.execute(saga, context, saga_id=saga_id)
        process = self.node.spawn(generator, name=f"saga-{saga.name}")
        self.env.run(until=process)
        return process.value

    def execute(
        self,
        saga: Saga,
        context: Optional[Context] = None,
        saga_id: Optional[str] = None,
    ) -> Generator[Any, Any, SagaRecord]:
        """Generator form, for embedding in an existing process."""
        self.register(saga)
        if saga_id is None:
            saga_id = f"{saga.name}-{self.node.name}-{next(self._saga_seq)}"
        record = self.log.open(
            saga_id,
            saga.name,
            dict(context or {}),
            [(step.name, step.mutating) for step in saga.steps],
            self.env.now,
        )
        result = yield from self._drive(saga, record)
        return result

    def recover(
        self, saga_ids: Optional[Sequence[str]] = None
    ) -> Generator[Any, Any, List[SagaRecord]]:
        """Resume every incomplete saga in the log (post-restart).

        ``RUNNING`` records resume forward — an in-doubt step re-issues
        under its original logged key, so the b-peer journal collapses
        the duplicate; ``COMPENSATING`` records continue unwinding.
        Definitions must have been :meth:`register`-ed on this (new)
        orchestrator instance.  ``saga_ids`` restricts recovery to those
        sagas (a supervisor that knows which processes died uses it to
        leave actively-driven sagas alone).
        """
        resumed: List[SagaRecord] = []
        for record in self.log.incomplete():
            if saga_ids is not None and record.saga_id not in saga_ids:
                continue
            saga = self._definitions.get(record.saga)
            if saga is None:
                raise WorkflowError(
                    f"cannot recover saga {record.saga_id!r}: no registered "
                    f"definition named {record.saga!r}"
                )
            if record.state == SagaState.COMPENSATING:
                rtrace = self._recovery_trace()
                yield from self._unwind(saga, record, rtrace)
                self.obs.finish_request(rtrace, self.env.now, status=record.state)
            else:
                yield from self._drive(saga, record)
            resumed.append(record)
        return resumed

    def requeue(self, saga_id: str) -> Generator[Any, Any, SagaRecord]:
        """Re-run compensation for a dead-lettered saga with fresh budget."""
        record = self.log.get(saga_id)
        if record is None:
            raise WorkflowError(f"unknown saga {saga_id!r}")
        if record.state != SagaState.DEAD_LETTERED:
            raise WorkflowError(
                f"saga {saga_id!r} is {record.state}, not dead-lettered"
            )
        saga = self._definitions.get(record.saga)
        if saga is None:
            raise WorkflowError(
                f"cannot requeue {saga_id!r}: no registered definition "
                f"named {record.saga!r}"
            )
        for step in record.steps:
            if step.state == StepState.COMPENSATING:
                step.compensation_attempts = 0
        record.state = SagaState.COMPENSATING
        record.finished_at = None
        if self.dlq is not None:
            self.dlq.mark_requeued(saga_id, self.env.now)
        rtrace = self._recovery_trace()
        yield from self._unwind(saga, record, rtrace)
        self.obs.finish_request(rtrace, self.env.now, status=record.state)
        return record

    # -- forward path ------------------------------------------------------------------

    def _drive(self, saga: Saga, record: SagaRecord) -> Generator:
        steps = {step.name: step for step in saga.steps}
        rtrace = self.obs.request_trace(
            f"saga.{saga.name}", next(self._trace_ids), self.env.now
        )
        try:
            for step_record in record.steps:
                if step_record.state == StepState.COMMITTED:
                    continue  # resumed: already durably done
                ok = yield from self._forward(
                    steps[step_record.name], record, step_record, rtrace
                )
                if not ok:
                    yield from self._unwind(saga, record, rtrace)
                    self.obs.finish_request(
                        rtrace, self.env.now, status=record.state
                    )
                    return record
            record.state = SagaState.COMMITTED
            record.finished_at = self.env.now
        except BaseException:
            # Interrupt (host crash) and friends: the log keeps whatever
            # was written; recovery picks the saga back up.
            self.obs.finish_request(rtrace, self.env.now, status="interrupted")
            raise
        self.obs.finish_request(rtrace, self.env.now, status="ok")
        return record

    def _forward(
        self,
        step: CompensableTask,
        record: SagaRecord,
        step_record: StepRecord,
        rtrace,
    ) -> Generator:
        step_record.invocation_id = saga_invocation_id(
            record.saga_id, step.name, "fwd"
        )
        # Write-ahead: intent is durable before the first byte leaves.
        step_record.state = StepState.EXECUTING
        span = rtrace.begin(f"step:{step.name}", self.env.now)
        try:
            arguments = step.input_mapping(record.context)
            invoked = yield from step.service.invoke(
                step.operation,
                arguments,
                timeout=step.timeout,
                budget=step.budget,
                invocation_id=step_record.invocation_id,
            )
        except TASK_ERRORS as error:
            step_record.state = StepState.FAILED
            step_record.error = format_error(error)
            record.error = f"step {step.name}: {step_record.error}"
            span.finish(self.env.now, status="failed")
            return False
        step_record.deduped = invoked.deduped
        if step.output_key is not None:
            record.context[step.output_key] = invoked.value
        step_record.state = StepState.COMMITTED
        span.finish(self.env.now, status="committed")
        return True

    # -- compensation ------------------------------------------------------------------

    def _unwind(self, saga: Saga, record: SagaRecord, rtrace) -> Generator:
        if not self.compensation_enabled:
            record.state = SagaState.ABANDONED
            record.finished_at = self.env.now
            return
        record.state = SagaState.COMPENSATING
        steps = {step.name: step for step in saga.steps}
        # Reverse commit order; every possibly-applied step (committed,
        # in-doubt, terminally failed, or mid-compensation at a crash)
        # is compensated — compensation handlers tolerate an absent
        # forward effect, and an untouched backend writes no effect
        # entry, so over-compensating in doubt is safe.
        for step_record in reversed(record.steps):
            if step_record.state in (StepState.PENDING, StepState.COMPENSATED):
                continue
            step = steps[step_record.name]
            if not step.mutating:
                step_record.state = StepState.COMPENSATED
                continue
            ok = yield from self._compensate(step, record, step_record, rtrace)
            if not ok:
                self._dead_letter(record, step_record)
                return
        record.state = SagaState.COMPENSATED
        record.finished_at = self.env.now

    def _compensate(
        self,
        step: CompensableTask,
        record: SagaRecord,
        step_record: StepRecord,
        rtrace,
    ) -> Generator:
        step_record.compensation_id = saga_invocation_id(
            record.saga_id, step.name, "comp"
        )
        while step_record.compensation_attempts < self.max_compensation_attempts:
            # The attempt count is durable *before* the send, so a crash
            # between send and ack still burns the attempt on resume —
            # the budget bounds real work, not just observed work.
            step_record.compensation_attempts += 1
            step_record.state = StepState.COMPENSATING
            span = rtrace.begin(f"comp:{step.name}", self.env.now)
            try:
                arguments = step.compensation_mapping(record.context)
                yield from step.service.invoke(
                    step.compensate_operation,
                    arguments,
                    timeout=step.compensate_timeout,
                    budget=step.compensate_budget,
                    invocation_id=step_record.compensation_id,
                )
            except TASK_ERRORS as error:
                step_record.error = format_error(error)
                span.finish(self.env.now, status="failed")
                if step_record.compensation_attempts < self.max_compensation_attempts:
                    yield Timeout(
                        self.env,
                        self.compensation_backoff
                        * step_record.compensation_attempts,
                    )
                continue
            step_record.state = StepState.COMPENSATED
            span.finish(self.env.now, status="compensated")
            return True
        return False

    def _dead_letter(self, record: SagaRecord, step_record: StepRecord) -> None:
        record.state = SagaState.DEAD_LETTERED
        record.finished_at = self.env.now
        reason = (
            f"compensation of step {step_record.name!r} exhausted "
            f"{self.max_compensation_attempts} attempts"
            + (f": {step_record.error}" if step_record.error else "")
        )
        record.error = record.error or reason
        if self.dlq is not None:
            self.dlq.push(
                record, failed_step=step_record.name, reason=reason,
                now=self.env.now,
            )

    def _recovery_trace(self):
        return self.obs.request_trace(
            "saga.recover", next(self._trace_ids), self.env.now
        )
