"""Dead-letter queue for sagas whose compensation exhausted its budget.

A saga that cannot finish compensating is the one failure the
orchestrator must not swallow: its partial effects are real business
state (a registered loan with no booking, reserved funds never
released), and silently dropping the record would strand them forever.
Such sagas park here — with the failed step, the reason, and a snapshot
of the saga context — for operator inspection and requeue
(``python -m repro dlq``).  Requeued sagas get a fresh compensation
budget via :meth:`~repro.workflow.saga.SagaOrchestrator.requeue`.

The queue is part of the orchestrator's durable state: like the
:class:`~repro.workflow.saga.SagaLog` it models disk, surviving host
crashes by object lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["DeadLetterEntry", "DeadLetterQueue"]


@dataclass
class DeadLetterEntry:
    """One parked saga: what failed, why, and the state it left behind."""

    saga_id: str
    saga: str
    failed_step: str
    reason: str
    parked_at: float
    #: Saga context at parking time (committed step outputs included) —
    #: what an operator needs to finish the rollback by hand.
    context: Dict[str, Any] = field(default_factory=dict)
    #: Step states at parking time, ``name -> state``.
    step_states: Dict[str, str] = field(default_factory=dict)
    #: Times this entry was requeued for another compensation round.
    requeues: int = 0
    requeued_at: Optional[float] = None

    @property
    def pending(self) -> bool:
        """Still awaiting resolution (never requeued, or parked again)."""
        return self.requeued_at is None or self.requeued_at < self.parked_at

    def to_dict(self) -> Dict[str, Any]:
        return {
            "saga_id": self.saga_id,
            "saga": self.saga,
            "failed_step": self.failed_step,
            "reason": self.reason,
            "parked_at": self.parked_at,
            "context": dict(self.context),
            "step_states": dict(self.step_states),
            "requeues": self.requeues,
            "requeued_at": self.requeued_at,
        }

    def describe(self) -> str:
        flag = "pending" if self.pending else f"requeued x{self.requeues}"
        return (
            f"{self.saga_id} [{flag}] step={self.failed_step} "
            f"t={self.parked_at:.2f} — {self.reason}"
        )


class DeadLetterQueue:
    """Durable parking lot for sagas compensation could not finish."""

    def __init__(self):
        self._entries: Dict[str, DeadLetterEntry] = {}
        #: Total sagas ever parked (re-parks after a failed requeue count).
        self.parked = 0

    def push(self, record, failed_step: str, reason: str, now: float) -> DeadLetterEntry:
        """Park ``record`` (a :class:`~repro.workflow.saga.SagaRecord`).

        A saga re-parked after a failed requeue updates its existing
        entry in place, keeping the requeue count.
        """
        entry = self._entries.get(record.saga_id)
        if entry is None:
            entry = DeadLetterEntry(
                saga_id=record.saga_id,
                saga=record.saga,
                failed_step=failed_step,
                reason=reason,
                parked_at=now,
                context=dict(record.context),
                step_states={s.name: s.state for s in record.steps},
            )
            self._entries[record.saga_id] = entry
        else:
            entry.failed_step = failed_step
            entry.reason = reason
            entry.parked_at = now
            entry.context = dict(record.context)
            entry.step_states = {s.name: s.state for s in record.steps}
        self.parked += 1
        return entry

    def mark_requeued(self, saga_id: str, now: float) -> None:
        entry = self._entries.get(saga_id)
        if entry is not None:
            entry.requeues += 1
            entry.requeued_at = now

    def get(self, saga_id: str) -> Optional[DeadLetterEntry]:
        return self._entries.get(saga_id)

    def entries(self) -> List[DeadLetterEntry]:
        return list(self._entries.values())

    def pending(self) -> List[DeadLetterEntry]:
        return [entry for entry in self._entries.values() if entry.pending]

    def export(self) -> List[Dict[str, Any]]:
        return [entry.to_dict() for entry in self._entries.values()]

    def __len__(self) -> int:
        return len(self._entries)
