"""Workflow composition over Whisper services.

The B2B processes of §1 — claim processing, loan management, healthcare —
composed from Whisper service invocations, with the §2.4 QoS model
predicting end-to-end time/cost/reliability before a single call is made.

* :mod:`~repro.workflow.model` — tasks, sequence/parallel/choice/loop;
* :mod:`~repro.workflow.engine` — execution on the simulated LAN;
* :mod:`~repro.workflow.prediction` — structural QoS reduction.
"""

from .engine import TaskRecord, WorkflowEngine, WorkflowResult
from .model import (
    ExclusiveChoice,
    LoopFlow,
    ParallelFlow,
    SequenceFlow,
    ServiceTask,
    WorkflowError,
    WorkflowNode,
)
from .prediction import predict_qos

__all__ = [
    "ExclusiveChoice",
    "LoopFlow",
    "ParallelFlow",
    "SequenceFlow",
    "ServiceTask",
    "TaskRecord",
    "WorkflowEngine",
    "WorkflowError",
    "WorkflowNode",
    "WorkflowResult",
    "predict_qos",
]
