"""Workflow composition over Whisper services.

The B2B processes of §1 — claim processing, loan management, healthcare —
composed from Whisper service invocations, with the §2.4 QoS model
predicting end-to-end time/cost/reliability before a single call is made.

* :mod:`~repro.workflow.model` — tasks, sequence/parallel/choice/loop;
* :mod:`~repro.workflow.engine` — execution on the simulated LAN;
* :mod:`~repro.workflow.saga` — compensating multi-service transactions
  over the proxy pipeline, with a durable write-ahead saga log;
* :mod:`~repro.workflow.dlq` — dead-letter queue for sagas whose
  compensation exhausted its budget;
* :mod:`~repro.workflow.prediction` — structural QoS reduction.
"""

from .dlq import DeadLetterEntry, DeadLetterQueue
from .engine import (
    TASK_ERRORS,
    TaskRecord,
    WorkflowEngine,
    WorkflowResult,
    format_error,
)
from .model import (
    ExclusiveChoice,
    LoopFlow,
    ParallelFlow,
    SequenceFlow,
    ServiceTask,
    WorkflowError,
    WorkflowNode,
)
from .prediction import predict_qos
from .saga import (
    CompensableTask,
    Saga,
    SagaLog,
    SagaOrchestrator,
    SagaRecord,
    SagaState,
    StepRecord,
    StepState,
    saga_invocation_id,
)

__all__ = [
    "CompensableTask",
    "DeadLetterEntry",
    "DeadLetterQueue",
    "ExclusiveChoice",
    "LoopFlow",
    "ParallelFlow",
    "Saga",
    "SagaLog",
    "SagaOrchestrator",
    "SagaRecord",
    "SagaState",
    "SequenceFlow",
    "ServiceTask",
    "StepRecord",
    "StepState",
    "TASK_ERRORS",
    "TaskRecord",
    "WorkflowEngine",
    "WorkflowError",
    "WorkflowNode",
    "WorkflowResult",
    "format_error",
    "predict_qos",
    "saga_invocation_id",
]
