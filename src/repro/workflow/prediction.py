"""QoS prediction for workflows (§2.4 / reference [11]).

Reduces a workflow tree to one :class:`~repro.qos.metrics.QosMetrics`
using the structural aggregation rules, from per-task metrics supplied by
the caller (typically proxies' learned profiles or advertised QoS).
"""

from __future__ import annotations

from typing import Dict

from ..qos import aggregation
from ..qos.metrics import QosMetrics
from .model import (
    ExclusiveChoice,
    LoopFlow,
    ParallelFlow,
    SequenceFlow,
    ServiceTask,
    WorkflowError,
    WorkflowNode,
)

__all__ = ["predict_qos"]


def predict_qos(
    node: WorkflowNode, task_metrics: Dict[str, QosMetrics]
) -> QosMetrics:
    """Predicted QoS of ``node`` given metrics for each named task.

    Raises :class:`WorkflowError` when a task's metrics are missing.
    """
    if isinstance(node, ServiceTask):
        metrics = task_metrics.get(node.name)
        if metrics is None:
            raise WorkflowError(f"no QoS metrics for task {node.name!r}")
        return metrics
    if isinstance(node, SequenceFlow):
        return aggregation.sequence(
            [predict_qos(child, task_metrics) for child in node.nodes]
        )
    if isinstance(node, ParallelFlow):
        return aggregation.parallel(
            [predict_qos(branch, task_metrics) for branch in node.branches]
        )
    if isinstance(node, ExclusiveChoice):
        weighted = [
            (probability, predict_qos(branch, task_metrics))
            for _predicate, probability, branch in node.branches
        ]
        leftover = node.otherwise_probability
        if node.otherwise is not None and leftover > 0:
            weighted.append((leftover, predict_qos(node.otherwise, task_metrics)))
        elif leftover > 1e-9:
            raise WorkflowError(
                "choice probabilities do not cover 1 and no 'otherwise' exists"
            )
        return aggregation.conditional(weighted)
    if isinstance(node, LoopFlow):
        return aggregation.loop(
            predict_qos(node.body, task_metrics), node.repeat_probability
        )
    raise WorkflowError(f"unknown workflow node {type(node).__name__}")
