"""The workflow engine: executes composition trees against live services.

Runs on a client host of the simulated LAN.  Sequences execute inline;
parallel branches run as concurrent simulated processes with isolated
context copies merged at the join; choices evaluate predicates against the
context; loops iterate up to their bound.  Per-task latencies and the
end-to-end outcome land in a :class:`WorkflowResult` for comparison with
the §2.4 QoS prediction.

Tasks invoke in one of two modes (see
:class:`~repro.workflow.model.ServiceTask`): proxy-backed tasks go
through ``service.invoke`` and inherit the whole SWS-Proxy pipeline —
discovery, retry under a deadline budget, epoch-fenced failover,
overload shedding, idempotency keys — with the
:class:`~repro.core.result.InvokeResult` metadata (attempts, outcome,
dedup, invocation id) landing on the :class:`TaskRecord`; legacy
address/path tasks keep the seed's raw ``SoapClient`` call.

Every terminal invocation outcome is surfaced as a structured
``WorkflowResult.error`` instead of escaping the runner: wire faults
(``SoapFault``, including ``Server.Busy`` after shed-retry exhaustion),
client timeouts, and the proxy's ``WhisperError`` family (deadline
exceeded, no matching group, invocation failed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..core.errors import WhisperError
from ..simnet.events import AllOf
from ..simnet.node import Node
from ..soap.client import SoapClient
from ..soap.fault import SoapFault
from ..soap.http import RequestTimeout
from .model import (
    Context,
    ExclusiveChoice,
    LoopFlow,
    ParallelFlow,
    SequenceFlow,
    ServiceTask,
    WorkflowError,
    WorkflowNode,
)

__all__ = [
    "WorkflowEngine",
    "WorkflowResult",
    "TaskRecord",
    "TASK_ERRORS",
    "format_error",
]

#: Exceptions a workflow run converts into a structured result error
#: rather than letting escape: wire-level faults and timeouts, the
#: proxy's terminal ``WhisperError`` family (deadline exhausted, no
#: matching group, invocation failed), and structural workflow errors.
TASK_ERRORS = (SoapFault, RequestTimeout, WorkflowError, WhisperError)


def format_error(error: BaseException) -> str:
    """One-line structured rendering of a task/workflow failure.

    SOAP faults keep their fault code (so ``Server.Busy`` sheds are
    distinguishable from plain ``Server`` faults in ``result.error``);
    everything else renders as ``TypeName: message``.
    """
    if isinstance(error, SoapFault):
        return f"SoapFault[{error.faultcode}]: {error.faultstring}"
    return f"{type(error).__name__}: {error}"


@dataclass
class TaskRecord:
    """One task execution: timing, outcome, and invocation metadata."""

    task: str
    started_at: float
    finished_at: float
    succeeded: bool
    error: Optional[str] = None
    #: 1-based occurrence index among records of the same task name —
    #: distinguishes loop iterations and re-executed steps.
    attempt: int = 1
    #: Proxy send-and-wait attempts (1 for legacy SoapClient tasks).
    attempts: int = 1
    #: ``InvokeOutcome.value`` for proxy-backed tasks (``None`` legacy).
    outcome: Optional[str] = None
    #: Proxy-minted idempotency key, when the step went through one.
    invocation_id: Optional[str] = None
    #: True when the value was replayed from a b-peer dedup journal.
    deduped: bool = False

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class WorkflowResult:
    """The outcome of one workflow run."""

    context: Context
    records: List[TaskRecord] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    def record_for(self, task_name: str) -> Optional[TaskRecord]:
        """The *first* record for ``task_name`` (see :meth:`records_for`)."""
        for record in self.records:
            if record.task == task_name:
                return record
        return None

    def records_for(self, task_name: str) -> List[TaskRecord]:
        """Every record for ``task_name``, in execution order.

        A task can run more than once (loop bodies, re-executed steps);
        each record's ``attempt`` gives its 1-based occurrence index.
        """
        return [record for record in self.records if record.task == task_name]

    def add_record(self, record: TaskRecord) -> TaskRecord:
        """Append ``record``, stamping its per-name occurrence index."""
        record.attempt = 1 + sum(
            1 for existing in self.records if existing.task == record.task
        )
        self.records.append(record)
        return record


class WorkflowEngine:
    """Executes workflows from one client host."""

    def __init__(self, node: Node, default_timeout: float = 30.0):
        self.node = node
        self.env = node.env
        self.client = SoapClient(node, default_timeout=default_timeout)

    # -- public API -----------------------------------------------------------------

    def run(
        self, workflow: WorkflowNode, context: Optional[Context] = None
    ) -> WorkflowResult:
        """Validate and execute ``workflow`` to completion (advances sim)."""
        workflow.validate()
        result = WorkflowResult(context=dict(context or {}))
        result.started_at = self.env.now

        def runner():
            try:
                yield from self._execute(workflow, result.context, result)
            except TASK_ERRORS as error:
                result.error = format_error(error)

        process = self.node.spawn(runner(), name="workflow")
        self.env.run(until=process)
        result.finished_at = self.env.now
        return result

    def execute(
        self, workflow: WorkflowNode, context: Context, result: WorkflowResult
    ) -> Generator:
        """Generator form, for embedding in an existing process."""
        workflow.validate()
        yield from self._execute(workflow, context, result)

    # -- node dispatch ------------------------------------------------------------------

    def _execute(
        self, node: WorkflowNode, context: Context, result: WorkflowResult
    ) -> Generator:
        if isinstance(node, ServiceTask):
            yield from self._run_task(node, context, result)
        elif isinstance(node, SequenceFlow):
            for child in node.nodes:
                yield from self._execute(child, context, result)
        elif isinstance(node, ParallelFlow):
            yield from self._run_parallel(node, context, result)
        elif isinstance(node, ExclusiveChoice):
            yield from self._run_choice(node, context, result)
        elif isinstance(node, LoopFlow):
            iterations = 0
            while node.condition(context):
                if iterations >= node.max_iterations:
                    raise WorkflowError(
                        f"loop exceeded {node.max_iterations} iterations"
                    )
                yield from self._execute(node.body, context, result)
                iterations += 1
        else:
            raise WorkflowError(f"unknown workflow node {type(node).__name__}")

    def _run_task(
        self, task: ServiceTask, context: Context, result: WorkflowResult
    ) -> Generator:
        arguments = task.input_mapping(context)
        started = self.env.now
        record = TaskRecord(
            task=task.name,
            started_at=started,
            finished_at=started,
            succeeded=False,
        )
        try:
            if task.service is not None:
                invoked = yield from task.service.invoke(
                    task.operation, arguments,
                    timeout=task.timeout, budget=task.budget,
                )
                value = invoked.value
                record.attempts = invoked.attempts
                record.outcome = invoked.outcome.value
                record.invocation_id = invoked.invocation_id
                record.deduped = invoked.deduped
            else:
                value = yield from self.client.call(
                    task.address, task.path, task.operation, arguments,
                    timeout=task.timeout,
                )
        except TASK_ERRORS as error:
            record.finished_at = self.env.now
            record.error = format_error(error)
            result.add_record(record)
            raise
        record.finished_at = self.env.now
        record.succeeded = True
        result.add_record(record)
        if task.output_key is not None:
            context[task.output_key] = value

    def _run_parallel(
        self, node: ParallelFlow, context: Context, result: WorkflowResult
    ) -> Generator:
        branch_contexts: List[Context] = []
        branch_errors: List[Optional[str]] = [None] * len(node.branches)
        processes = []
        for index, branch in enumerate(node.branches):
            child_context = dict(context)
            branch_contexts.append(child_context)

            def branch_runner(branch=branch, child=child_context, index=index):
                try:
                    yield from self._execute(branch, child, result)
                except TASK_ERRORS as error:
                    branch_errors[index] = format_error(error)

            processes.append(
                self.node.spawn(branch_runner(), name=f"workflow-branch-{index}")
            )
        yield AllOf(self.env, processes)
        failures = [message for message in branch_errors if message is not None]
        if failures:
            raise WorkflowError(f"parallel branch failed: {failures[0]}")
        # Deterministic join: merge branch writes in branch order.  Two
        # branches writing *different* values to the same key is a real
        # data race the static key check cannot always see (same-named
        # tasks in different branches pass it) — refuse to pick a winner.
        writers: dict = {}
        for index, child_context in enumerate(branch_contexts):
            for key, value in child_context.items():
                if key in context and context[key] is value:
                    continue  # unchanged inherited binding
                if key in writers and writers[key][1] is not value:
                    raise WorkflowError(
                        f"parallel branches {writers[key][0]} and {index} "
                        f"both wrote conflicting values for {key!r}"
                    )
                writers.setdefault(key, (index, value))
        for key, (_index, value) in writers.items():
            context[key] = value

    def _run_choice(
        self, node: ExclusiveChoice, context: Context, result: WorkflowResult
    ) -> Generator:
        for predicate, _probability, branch in node.branches:
            if predicate(context):
                yield from self._execute(branch, context, result)
                return
        if node.otherwise is not None:
            yield from self._execute(node.otherwise, context, result)
