"""The workflow engine: executes composition trees against live services.

Runs on a client host of the simulated LAN.  Sequences execute inline;
parallel branches run as concurrent simulated processes with isolated
context copies merged at the join; choices evaluate predicates against the
context; loops iterate up to their bound.  Per-task latencies and the
end-to-end outcome land in a :class:`WorkflowResult` for comparison with
the §2.4 QoS prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..simnet.events import AllOf
from ..simnet.node import Node
from ..soap.client import SoapClient
from ..soap.fault import SoapFault
from ..soap.http import RequestTimeout
from .model import (
    Context,
    ExclusiveChoice,
    LoopFlow,
    ParallelFlow,
    SequenceFlow,
    ServiceTask,
    WorkflowError,
    WorkflowNode,
)

__all__ = ["WorkflowEngine", "WorkflowResult", "TaskRecord"]


@dataclass
class TaskRecord:
    """One task execution: timing and outcome."""

    task: str
    started_at: float
    finished_at: float
    succeeded: bool
    error: Optional[str] = None

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class WorkflowResult:
    """The outcome of one workflow run."""

    context: Context
    records: List[TaskRecord] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    def record_for(self, task_name: str) -> Optional[TaskRecord]:
        for record in self.records:
            if record.task == task_name:
                return record
        return None


class WorkflowEngine:
    """Executes workflows from one client host."""

    def __init__(self, node: Node, default_timeout: float = 30.0):
        self.node = node
        self.env = node.env
        self.client = SoapClient(node, default_timeout=default_timeout)

    # -- public API -----------------------------------------------------------------

    def run(
        self, workflow: WorkflowNode, context: Optional[Context] = None
    ) -> WorkflowResult:
        """Validate and execute ``workflow`` to completion (advances sim)."""
        workflow.validate()
        result = WorkflowResult(context=dict(context or {}))
        result.started_at = self.env.now

        def runner():
            try:
                yield from self._execute(workflow, result.context, result)
            except (SoapFault, RequestTimeout, WorkflowError) as error:
                result.error = f"{type(error).__name__}: {error}"

        process = self.node.spawn(runner(), name="workflow")
        self.env.run(until=process)
        result.finished_at = self.env.now
        return result

    def execute(
        self, workflow: WorkflowNode, context: Context, result: WorkflowResult
    ) -> Generator:
        """Generator form, for embedding in an existing process."""
        workflow.validate()
        yield from self._execute(workflow, context, result)

    # -- node dispatch ------------------------------------------------------------------

    def _execute(
        self, node: WorkflowNode, context: Context, result: WorkflowResult
    ) -> Generator:
        if isinstance(node, ServiceTask):
            yield from self._run_task(node, context, result)
        elif isinstance(node, SequenceFlow):
            for child in node.nodes:
                yield from self._execute(child, context, result)
        elif isinstance(node, ParallelFlow):
            yield from self._run_parallel(node, context, result)
        elif isinstance(node, ExclusiveChoice):
            yield from self._run_choice(node, context, result)
        elif isinstance(node, LoopFlow):
            iterations = 0
            while node.condition(context):
                if iterations >= node.max_iterations:
                    raise WorkflowError(
                        f"loop exceeded {node.max_iterations} iterations"
                    )
                yield from self._execute(node.body, context, result)
                iterations += 1
        else:
            raise WorkflowError(f"unknown workflow node {type(node).__name__}")

    def _run_task(
        self, task: ServiceTask, context: Context, result: WorkflowResult
    ) -> Generator:
        arguments = task.input_mapping(context)
        started = self.env.now
        try:
            value = yield from self.client.call(
                task.address, task.path, task.operation, arguments,
                timeout=task.timeout,
            )
        except (SoapFault, RequestTimeout) as error:
            result.records.append(
                TaskRecord(
                    task=task.name,
                    started_at=started,
                    finished_at=self.env.now,
                    succeeded=False,
                    error=f"{type(error).__name__}: {error}",
                )
            )
            raise
        result.records.append(
            TaskRecord(
                task=task.name,
                started_at=started,
                finished_at=self.env.now,
                succeeded=True,
            )
        )
        if task.output_key is not None:
            context[task.output_key] = value

    def _run_parallel(
        self, node: ParallelFlow, context: Context, result: WorkflowResult
    ) -> Generator:
        branch_contexts: List[Context] = []
        branch_errors: List[Optional[str]] = [None] * len(node.branches)
        processes = []
        for index, branch in enumerate(node.branches):
            child_context = dict(context)
            branch_contexts.append(child_context)

            def branch_runner(branch=branch, child=child_context, index=index):
                try:
                    yield from self._execute(branch, child, result)
                except (SoapFault, RequestTimeout, WorkflowError) as error:
                    branch_errors[index] = f"{type(error).__name__}: {error}"

            processes.append(
                self.node.spawn(branch_runner(), name=f"workflow-branch-{index}")
            )
        yield AllOf(self.env, processes)
        failures = [message for message in branch_errors if message is not None]
        if failures:
            raise WorkflowError(f"parallel branch failed: {failures[0]}")
        # Deterministic join: merge branch writes in branch order.
        for child_context in branch_contexts:
            for key, value in child_context.items():
                if key not in context or context[key] is not value:
                    context[key] = value

    def _run_choice(
        self, node: ExclusiveChoice, context: Context, result: WorkflowResult
    ) -> Generator:
        for predicate, _probability, branch in node.branches:
            if predicate(context):
                yield from self._execute(branch, context, result)
                return
        if node.otherwise is not None:
            yield from self._execute(node.otherwise, context, result)
