"""The workflow model: composable B2B process structures.

The paper's introduction frames Whisper's purpose as keeping *business
processes* running — insurance claim processing, bank loan management,
healthcare processes (§1) — and its QoS reference ([11], Cardoso & Sheth)
is about workflow composition.  This module provides the composition
algebra: service tasks combined by sequence, parallel split/join,
exclusive choice, and loops, matching the structures
:mod:`repro.qos.aggregation` can predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "WorkflowNode",
    "ServiceTask",
    "SequenceFlow",
    "ParallelFlow",
    "ExclusiveChoice",
    "LoopFlow",
    "WorkflowError",
]

#: A workflow context: named intermediate results flowing between tasks.
Context = Dict[str, Any]


class WorkflowError(Exception):
    """Raised for structurally invalid workflows or failed executions."""


class WorkflowNode:
    """Base class of every composition node."""

    def tasks(self) -> List["ServiceTask"]:
        """Every service task in this subtree (for prediction/reporting)."""
        raise NotImplementedError

    def validate(self) -> None:
        """Raise :class:`WorkflowError` on structural problems."""
        raise NotImplementedError


@dataclass
class ServiceTask(WorkflowNode):
    """One invocation of a (Whisper) Web service operation.

    Two invocation modes, chosen by which locator is supplied:

    * ``service`` — anything exposing
      ``invoke(operation, arguments, timeout=..., budget=...)`` as a
      simulation generator returning an
      :class:`~repro.core.result.InvokeResult` (a
      :class:`~repro.core.system.DeployedService` or an
      :class:`~repro.core.proxy.SwsProxy`).  The step then inherits the
      whole SWS-Proxy pipeline: semantic discovery, retry under a
      deadline budget, epoch-fenced failover, overload shedding, and a
      proxy-minted idempotency key.
    * ``address``/``path`` — the legacy static SOAP endpoint, called
      through :class:`~repro.soap.client.SoapClient` with no recovery
      beyond what the remote web service provides.

    ``operation`` names the WSDL operation; ``input_mapping`` builds the
    call arguments from the context; ``output_key`` stores the result
    value back into the context; ``budget`` (proxy mode only) caps the
    step's whole retry deadline in simulated seconds.
    """

    name: str
    address: Optional[Tuple[str, int]] = None
    path: Optional[str] = None
    operation: str = ""
    input_mapping: Callable[[Context], Dict[str, Any]] = lambda context: {}
    output_key: Optional[str] = None
    timeout: float = 30.0
    service: Any = None
    budget: Optional[float] = None

    def tasks(self) -> List["ServiceTask"]:
        return [self]

    def validate(self) -> None:
        if not self.name:
            raise WorkflowError("service task needs a name")
        if not self.operation:
            raise WorkflowError(f"task {self.name!r}: needs an operation")
        if not callable(self.input_mapping):
            raise WorkflowError(f"task {self.name!r}: input_mapping must be callable")
        if self.service is None:
            if self.address is None or self.path is None:
                raise WorkflowError(
                    f"task {self.name!r}: needs either a service or "
                    "an address and path"
                )
        elif not hasattr(self.service, "invoke"):
            raise WorkflowError(
                f"task {self.name!r}: service must expose invoke()"
            )


@dataclass
class SequenceFlow(WorkflowNode):
    """Nodes executed one after another."""

    nodes: Sequence[WorkflowNode]

    def tasks(self) -> List[ServiceTask]:
        return [task for node in self.nodes for task in node.tasks()]

    def validate(self) -> None:
        if not self.nodes:
            raise WorkflowError("sequence needs at least one node")
        for node in self.nodes:
            node.validate()


@dataclass
class ParallelFlow(WorkflowNode):
    """An AND-split / AND-join: all branches run concurrently."""

    branches: Sequence[WorkflowNode]

    def tasks(self) -> List[ServiceTask]:
        return [task for branch in self.branches for task in branch.tasks()]

    def validate(self) -> None:
        if not self.branches:
            raise WorkflowError("parallel flow needs at least one branch")
        for branch in self.branches:
            branch.validate()
        keys: Dict[str, str] = {}
        for branch in self.branches:
            for task in branch.tasks():
                if task.output_key is None:
                    continue
                owner = keys.get(task.output_key)
                if owner is not None and owner != task.name:
                    raise WorkflowError(
                        f"parallel branches both write {task.output_key!r} "
                        f"({owner!r} and {task.name!r})"
                    )
                keys[task.output_key] = task.name


@dataclass
class ExclusiveChoice(WorkflowNode):
    """An XOR-split: the first branch whose predicate holds runs.

    ``probability`` per branch feeds QoS prediction (it plays no role in
    execution).  An optional ``otherwise`` branch runs when no predicate
    matches.
    """

    branches: Sequence[Tuple[Callable[[Context], bool], float, WorkflowNode]]
    otherwise: Optional[WorkflowNode] = None

    def tasks(self) -> List[ServiceTask]:
        collected = [
            task
            for _predicate, _probability, node in self.branches
            for task in node.tasks()
        ]
        if self.otherwise is not None:
            collected.extend(self.otherwise.tasks())
        return collected

    def validate(self) -> None:
        if not self.branches:
            raise WorkflowError("choice needs at least one branch")
        total = sum(probability for _p, probability, _n in self.branches)
        remainder = 1.0 - total
        if self.otherwise is None:
            if abs(remainder) > 1e-9:
                raise WorkflowError(
                    f"branch probabilities sum to {total}, not 1 "
                    "(add an 'otherwise' branch or fix the probabilities)"
                )
        elif remainder < -1e-9:
            raise WorkflowError(f"branch probabilities exceed 1 ({total})")
        for _predicate, _probability, node in self.branches:
            node.validate()
        if self.otherwise is not None:
            self.otherwise.validate()

    @property
    def otherwise_probability(self) -> float:
        return max(0.0, 1.0 - sum(p for _c, p, _n in self.branches))


@dataclass
class LoopFlow(WorkflowNode):
    """A while-loop: run ``body`` while ``condition(context)`` holds.

    ``repeat_probability`` feeds QoS prediction; ``max_iterations`` bounds
    execution.
    """

    body: WorkflowNode
    condition: Callable[[Context], bool]
    repeat_probability: float = 0.0
    max_iterations: int = 100

    def tasks(self) -> List[ServiceTask]:
        return self.body.tasks()

    def validate(self) -> None:
        if not 0.0 <= self.repeat_probability < 1.0:
            raise WorkflowError(
                f"repeat probability {self.repeat_probability} outside [0, 1)"
            )
        if self.max_iterations < 1:
            raise WorkflowError("loop needs max_iterations >= 1")
        self.body.validate()
