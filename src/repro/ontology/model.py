"""The ontology object model: concepts, properties, individuals.

This is an OWL-lite-sized model — exactly the slice Whisper's semantic
matching needs: named classes with subsumption and equivalence, object and
datatype properties with domain/range, and individuals with types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

__all__ = ["Concept", "Property", "Individual", "PropertyKind"]


class PropertyKind:
    """Property kinds (OWL object vs. datatype properties)."""

    OBJECT = "object"
    DATATYPE = "datatype"


@dataclass
class Concept:
    """A named class (``owl:Class``).

    ``parents`` holds the URIs of direct superclasses, ``equivalents`` the
    URIs of classes declared equivalent (``owl:equivalentClass``).
    """

    uri: str
    label: Optional[str] = None
    comment: Optional[str] = None
    parents: Set[str] = field(default_factory=set)
    equivalents: Set[str] = field(default_factory=set)

    def __hash__(self) -> int:
        return hash(self.uri)

    def __repr__(self) -> str:
        return f"<Concept {self.uri}>"


@dataclass
class Property:
    """An object or datatype property with optional domain/range."""

    uri: str
    kind: str = PropertyKind.OBJECT
    domain: Optional[str] = None
    range: Optional[str] = None
    label: Optional[str] = None
    parents: Set[str] = field(default_factory=set)

    def __hash__(self) -> int:
        return hash(self.uri)

    def __repr__(self) -> str:
        return f"<Property {self.uri} ({self.kind})>"


@dataclass
class Individual:
    """A named individual with one or more types and property values."""

    uri: str
    types: Set[str] = field(default_factory=set)
    values: Dict[str, List[Any]] = field(default_factory=dict)

    def add_value(self, property_uri: str, value: Any) -> None:
        self.values.setdefault(property_uri, []).append(value)

    def get_values(self, property_uri: str) -> List[Any]:
        return list(self.values.get(property_uri, []))

    def __hash__(self) -> int:
        return hash(self.uri)

    def __repr__(self) -> str:
        return f"<Individual {self.uri}>"
