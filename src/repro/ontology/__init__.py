"""OWL-lite ontologies, subsumption reasoning, and semantic matching.

Whisper resolves the *semantic heterogeneity* between Web services and the
P2P infrastructure (§2.1) by annotating both against shared OWL ontologies.
This package provides the ontology model, an RDF/XML reader/writer, a
subsumption/equivalence reasoner, the four-level degree-of-match used by
SWS-proxies, and the sample domain ontologies from the paper.
"""

from .builder import OntologyBuilder
from .domains import (
    B2B,
    LEGACY,
    SM,
    b2b_ontology,
    enterprise_ontology,
    university_ontology,
)
from .match import ConceptMatch, ConceptMatcher, DegreeOfMatch, SignatureMatch
from .model import Concept, Individual, Property, PropertyKind
from .namespaces import Namespace, NamespaceRegistry, QName, split_uri
from .ontology import Ontology, OntologyError
from .owlxml import OwlParseError, ontology_from_xml, ontology_to_xml
from .reasoner import Reasoner
from .turtle import TurtleParseError, ontology_from_turtle, ontology_to_turtle

__all__ = [
    "B2B",
    "Concept",
    "ConceptMatch",
    "ConceptMatcher",
    "DegreeOfMatch",
    "Individual",
    "LEGACY",
    "Namespace",
    "NamespaceRegistry",
    "Ontology",
    "OntologyBuilder",
    "OntologyError",
    "OwlParseError",
    "Property",
    "PropertyKind",
    "QName",
    "Reasoner",
    "SM",
    "SignatureMatch",
    "TurtleParseError",
    "b2b_ontology",
    "enterprise_ontology",
    "ontology_from_turtle",
    "ontology_from_xml",
    "ontology_to_turtle",
    "ontology_to_xml",
    "split_uri",
    "university_ontology",
]
