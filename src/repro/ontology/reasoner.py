"""Subsumption and equivalence reasoning.

The reasoner computes exactly what Whisper's matcher needs from OWL:

* the reflexive-transitive closure of ``rdfs:subClassOf`` (through
  ``owl:equivalentClass`` links),
* equivalence classes (union-find over ``owl:equivalentClass``),
* concept depth and least common ancestors, used for similarity scoring.

Results are memoised; call :meth:`invalidate` after mutating the ontology.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .ontology import Ontology

__all__ = ["Reasoner"]


class Reasoner:
    """Cached subsumption queries over one ontology."""

    def __init__(self, ontology: Ontology):
        self.ontology = ontology
        self._ancestor_cache: Dict[str, Set[str]] = {}
        self._equivalence_root: Dict[str, str] = {}
        self._depth_cache: Dict[str, int] = {}

    def invalidate(self) -> None:
        """Drop memoised results after the ontology changed."""
        self._ancestor_cache.clear()
        self._equivalence_root.clear()
        self._depth_cache.clear()

    # -- equivalence (union-find) ------------------------------------------------

    def _find(self, uri: str) -> str:
        """Representative of ``uri``'s equivalence class."""
        if uri not in self._equivalence_root:
            self._build_equivalence_classes()
        return self._equivalence_root.get(uri, uri)

    def _build_equivalence_classes(self) -> None:
        parent: Dict[str, str] = {uri: uri for uri in self.ontology.concepts}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for concept in self.ontology.concepts.values():
            for equivalent in concept.equivalents:
                if equivalent in parent:
                    root_a, root_b = find(concept.uri), find(equivalent)
                    if root_a != root_b:
                        parent[root_b] = root_a
        self._equivalence_root = {uri: find(uri) for uri in parent}

    def equivalent(self, uri_a: str, uri_b: str) -> bool:
        """True if the two concepts are in the same equivalence class."""
        if uri_a == uri_b:
            return True
        if uri_a not in self.ontology.concepts or uri_b not in self.ontology.concepts:
            return False
        return self._find(uri_a) == self._find(uri_b)

    def equivalence_class(self, uri: str) -> Set[str]:
        """Every concept equivalent to ``uri`` (including itself)."""
        root = self._find(uri)
        return {other for other in self.ontology.concepts if self._find(other) == root}

    # -- subsumption ----------------------------------------------------------------

    def ancestors(self, uri: str) -> Set[str]:
        """Reflexive-transitive superclasses of ``uri``.

        Equivalent concepts share ancestors: the closure walks parent edges
        of every member of each equivalence class it reaches.
        """
        if uri in self._ancestor_cache:
            return self._ancestor_cache[uri]
        if uri not in self.ontology.concepts:
            return {uri}
        result: Set[str] = set()
        stack: List[str] = [uri]
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            if current not in self.ontology.concepts:
                continue
            for member in self.equivalence_class(current):
                if member not in result:
                    stack.append(member)
                for parent in self.ontology.concepts[member].parents:
                    if parent not in result:
                        stack.append(parent)
        self._ancestor_cache[uri] = result
        return result

    def descendants(self, uri: str) -> Set[str]:
        """Reflexive-transitive subclasses of ``uri``."""
        return {
            other for other in self.ontology.concepts if uri in self.ancestors(other)
        }

    def is_subsumed_by(self, child: str, parent: str) -> bool:
        """True if ``child`` ⊑ ``parent`` (reflexive, through equivalence)."""
        if child == parent:
            return True
        return parent in self.ancestors(child)

    def subsumes(self, parent: str, child: str) -> bool:
        return self.is_subsumed_by(child, parent)

    # -- similarity helpers ------------------------------------------------------------

    def depth(self, uri: str) -> int:
        """Longest parent-chain length from ``uri`` up to a root."""
        if uri in self._depth_cache:
            return self._depth_cache[uri]
        if uri not in self.ontology.concepts:
            return 0
        # Iterative longest-path on the (acyclic once validated) parent DAG;
        # equivalence cycles are guarded by treating revisits as depth 0.
        visiting: Set[str] = set()

        def longest(node: str) -> int:
            if node in self._depth_cache:
                return self._depth_cache[node]
            if node in visiting or node not in self.ontology.concepts:
                return 0
            visiting.add(node)
            parents = self.ontology.concepts[node].parents
            value = 0 if not parents else 1 + max(longest(p) for p in parents)
            visiting.discard(node)
            self._depth_cache[node] = value
            return value

        return longest(uri)

    def least_common_ancestors(self, uri_a: str, uri_b: str) -> Set[str]:
        """Deepest concepts subsuming both arguments."""
        common = self.ancestors(uri_a) & self.ancestors(uri_b)
        common = {c for c in common if c in self.ontology.concepts}
        if not common:
            return set()
        best_depth = max(self.depth(c) for c in common)
        return {c for c in common if self.depth(c) == best_depth}

    def similarity(self, uri_a: str, uri_b: str) -> float:
        """Wu–Palmer-style similarity in [0, 1] used for ranking.

        ``2 * depth(lca) / (depth(a) + depth(b))``; equivalent concepts get
        1.0, concepts with no common ancestor get 0.0.
        """
        if self.equivalent(uri_a, uri_b):
            return 1.0
        lcas = self.least_common_ancestors(uri_a, uri_b)
        if not lcas:
            return 0.0
        lca_depth = max(self.depth(c) for c in lcas)
        denominator = self.depth(uri_a) + self.depth(uri_b)
        if denominator == 0:
            return 0.0
        return min(1.0, (2.0 * lca_depth) / denominator)
