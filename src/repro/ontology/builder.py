"""A fluent builder for ontologies.

Used by the sample domain ontologies and by tests; concept names may be
given as CURIEs (``sm:Student``) against namespaces bound on the builder.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .model import PropertyKind
from .ontology import Ontology

__all__ = ["OntologyBuilder"]


class OntologyBuilder:
    """Build an ontology with prefix-aware, chainable calls.

    Example::

        builder = OntologyBuilder("http://example.org/uni", label="University")
        builder.namespace("uni", "http://example.org/uni#")
        builder.concept("uni:Person")
        builder.concept("uni:Student", parents=["uni:Person"])
        ontology = builder.build()
    """

    def __init__(self, uri: str, label: Optional[str] = None):
        self._ontology = Ontology(uri, label=label)

    def namespace(self, prefix: str, uri: str) -> "OntologyBuilder":
        self._ontology.namespaces.bind(prefix, uri)
        return self

    def _resolve(self, name: str) -> str:
        return self._ontology.namespaces.resolve(name)

    def concept(
        self,
        name: str,
        parents: Iterable[str] = (),
        label: Optional[str] = None,
        comment: Optional[str] = None,
    ) -> "OntologyBuilder":
        self._ontology.add_concept(
            self._resolve(name),
            parents=[self._resolve(p) for p in parents],
            label=label,
            comment=comment,
        )
        return self

    def subclass(self, child: str, parent: str) -> "OntologyBuilder":
        self._ontology.add_subclass(self._resolve(child), self._resolve(parent))
        return self

    def equivalent(self, name_a: str, name_b: str) -> "OntologyBuilder":
        self._ontology.add_equivalence(self._resolve(name_a), self._resolve(name_b))
        return self

    def object_property(
        self, name: str, domain: Optional[str] = None, range: Optional[str] = None
    ) -> "OntologyBuilder":
        self._ontology.add_property(
            self._resolve(name),
            kind=PropertyKind.OBJECT,
            domain=self._resolve(domain) if domain else None,
            range=self._resolve(range) if range else None,
        )
        return self

    def datatype_property(
        self, name: str, domain: Optional[str] = None, range: Optional[str] = None
    ) -> "OntologyBuilder":
        self._ontology.add_property(
            self._resolve(name),
            kind=PropertyKind.DATATYPE,
            domain=self._resolve(domain) if domain else None,
            range=range,
        )
        return self

    def individual(self, name: str, types: Iterable[str] = ()) -> "OntologyBuilder":
        self._ontology.add_individual(
            self._resolve(name), [self._resolve(t) for t in types]
        )
        return self

    def build(self, validate: bool = True) -> Ontology:
        """Return the ontology, optionally failing on structural problems."""
        if validate:
            problems = self._ontology.validate()
            if problems:
                raise ValueError(
                    "invalid ontology:\n  " + "\n  ".join(problems)
                )
        return self._ontology
