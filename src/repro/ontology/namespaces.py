"""URI namespaces and qualified names for ontology terms.

Whisper annotates WSDL operations and JXTA advertisements with ontology
concepts identified by URIs (the paper's example uses
``sm:StudentInformation`` etc. with ``xmlns:sm`` bound to a university
ontology).  This module provides the tiny URI machinery both sides share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["Namespace", "QName", "NamespaceRegistry", "split_uri"]


def split_uri(uri: str) -> Tuple[str, str]:
    """Split a concept URI into ``(namespace, local_name)``.

    The split point is the last ``#`` or, failing that, the last ``/``.
    """
    for separator in ("#", "/"):
        index = uri.rfind(separator)
        if index > 0:
            return uri[: index + 1], uri[index + 1 :]
    return "", uri


@dataclass(frozen=True)
class Namespace:
    """A URI prefix that can be joined with local names via ``ns['Name']``."""

    uri: str

    def __getitem__(self, local_name: str) -> str:
        return self.uri + local_name

    def term(self, local_name: str) -> "QName":
        return QName(self.uri, local_name)

    def __str__(self) -> str:
        return self.uri


@dataclass(frozen=True)
class QName:
    """A qualified name: namespace URI + local name."""

    namespace: str
    local_name: str

    @property
    def uri(self) -> str:
        return self.namespace + self.local_name

    @classmethod
    def from_uri(cls, uri: str) -> "QName":
        namespace, local = split_uri(uri)
        return cls(namespace, local)

    def __str__(self) -> str:
        return self.uri


class NamespaceRegistry:
    """Bidirectional prefix <-> namespace-URI map (like XML ``xmlns``)."""

    def __init__(self):
        self._by_prefix: Dict[str, str] = {}
        self._by_uri: Dict[str, str] = {}

    def bind(self, prefix: str, uri: str) -> Namespace:
        """Associate ``prefix`` with ``uri`` (re-binding is allowed)."""
        old_uri = self._by_prefix.get(prefix)
        if old_uri is not None:
            self._by_uri.pop(old_uri, None)
        self._by_prefix[prefix] = uri
        self._by_uri[uri] = prefix
        return Namespace(uri)

    def resolve(self, curie: str) -> str:
        """Expand ``prefix:Local`` to a full URI (full URIs pass through)."""
        if "://" in curie or curie.startswith("urn:"):
            return curie
        if ":" in curie:
            prefix, local = curie.split(":", 1)
            if prefix in self._by_prefix:
                return self._by_prefix[prefix] + local
        return curie

    def compact(self, uri: str) -> str:
        """Compress a URI to ``prefix:Local`` if a prefix is bound."""
        namespace, local = split_uri(uri)
        prefix = self._by_uri.get(namespace)
        if prefix is None:
            return uri
        return f"{prefix}:{local}"

    def prefix_of(self, uri: str) -> Optional[str]:
        return self._by_uri.get(uri)

    def prefixes(self) -> Dict[str, str]:
        return dict(self._by_prefix)


#: Well-known namespaces used across the system.
OWL = Namespace("http://www.w3.org/2002/07/owl#")
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
