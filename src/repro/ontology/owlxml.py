"""OWL RDF/XML-style serialisation.

The paper states Whisper's ontologies "are expressed ... using OWL" (§3.1).
This module writes and reads the OWL-lite subset our model covers in the
familiar RDF/XML surface syntax, so advertisements, WSDL-S documents, and
ontologies are all plain XML documents — like in the original system.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from .model import PropertyKind
from .namespaces import OWL, RDF, RDFS
from .ontology import Ontology

__all__ = ["ontology_to_xml", "ontology_from_xml", "OwlParseError"]

_RDF_ABOUT = f"{{{RDF.uri}}}about"
_RDF_RESOURCE = f"{{{RDF.uri}}}resource"
_RDF_RDF = f"{{{RDF.uri}}}RDF"
_RDF_TYPE = f"{{{RDF.uri}}}type"
_OWL_ONTOLOGY = f"{{{OWL.uri}}}Ontology"
_OWL_CLASS = f"{{{OWL.uri}}}Class"
_OWL_EQUIVALENT = f"{{{OWL.uri}}}equivalentClass"
_OWL_OBJECT_PROPERTY = f"{{{OWL.uri}}}ObjectProperty"
_OWL_DATATYPE_PROPERTY = f"{{{OWL.uri}}}DatatypeProperty"
_OWL_INDIVIDUAL = f"{{{OWL.uri}}}NamedIndividual"
_RDFS_SUBCLASS = f"{{{RDFS.uri}}}subClassOf"
_RDFS_LABEL = f"{{{RDFS.uri}}}label"
_RDFS_COMMENT = f"{{{RDFS.uri}}}comment"
_RDFS_DOMAIN = f"{{{RDFS.uri}}}domain"
_RDFS_RANGE = f"{{{RDFS.uri}}}range"


class OwlParseError(Exception):
    """Raised when an OWL document cannot be interpreted."""


def ontology_to_xml(ontology: Ontology) -> str:
    """Serialise an ontology to an RDF/XML string."""
    ET.register_namespace("rdf", RDF.uri)
    ET.register_namespace("rdfs", RDFS.uri)
    ET.register_namespace("owl", OWL.uri)
    root = ET.Element(_RDF_RDF)

    header = ET.SubElement(root, _OWL_ONTOLOGY, {_RDF_ABOUT: ontology.uri})
    if ontology.label:
        ET.SubElement(header, _RDFS_LABEL).text = ontology.label

    for uri in sorted(ontology.concepts):
        concept = ontology.concepts[uri]
        element = ET.SubElement(root, _OWL_CLASS, {_RDF_ABOUT: uri})
        if concept.label:
            ET.SubElement(element, _RDFS_LABEL).text = concept.label
        if concept.comment:
            ET.SubElement(element, _RDFS_COMMENT).text = concept.comment
        for parent in sorted(concept.parents):
            ET.SubElement(element, _RDFS_SUBCLASS, {_RDF_RESOURCE: parent})
        for equivalent in sorted(concept.equivalents):
            ET.SubElement(element, _OWL_EQUIVALENT, {_RDF_RESOURCE: equivalent})

    for uri in sorted(ontology.properties):
        prop = ontology.properties[uri]
        tag = (
            _OWL_OBJECT_PROPERTY
            if prop.kind == PropertyKind.OBJECT
            else _OWL_DATATYPE_PROPERTY
        )
        element = ET.SubElement(root, tag, {_RDF_ABOUT: uri})
        if prop.label:
            ET.SubElement(element, _RDFS_LABEL).text = prop.label
        if prop.domain:
            ET.SubElement(element, _RDFS_DOMAIN, {_RDF_RESOURCE: prop.domain})
        if prop.range:
            ET.SubElement(element, _RDFS_RANGE, {_RDF_RESOURCE: prop.range})

    for uri in sorted(ontology.individuals):
        individual = ontology.individuals[uri]
        element = ET.SubElement(root, _OWL_INDIVIDUAL, {_RDF_ABOUT: uri})
        for type_uri in sorted(individual.types):
            ET.SubElement(element, _RDF_TYPE, {_RDF_RESOURCE: type_uri})

    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def ontology_from_xml(document: str) -> Ontology:
    """Parse an RDF/XML string produced by :func:`ontology_to_xml`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as error:
        raise OwlParseError(f"malformed XML: {error}") from error
    if root.tag != _RDF_RDF:
        raise OwlParseError(f"expected rdf:RDF root, found {root.tag}")

    header = root.find(_OWL_ONTOLOGY)
    if header is None:
        raise OwlParseError("missing owl:Ontology header")
    uri = header.get(_RDF_ABOUT)
    if not uri:
        raise OwlParseError("owl:Ontology header lacks rdf:about")
    label_element = header.find(_RDFS_LABEL)
    ontology = Ontology(
        uri, label=label_element.text if label_element is not None else None
    )

    for element in root.findall(_OWL_CLASS):
        about = _require_about(element)
        label = _optional_text(element, _RDFS_LABEL)
        comment = _optional_text(element, _RDFS_COMMENT)
        concept = ontology.add_concept(about, label=label, comment=comment)
        for sub in element.findall(_RDFS_SUBCLASS):
            concept.parents.add(_require_resource(sub))
        for equivalent in element.findall(_OWL_EQUIVALENT):
            ontology.add_equivalence(about, _require_resource(equivalent))

    for tag, kind in (
        (_OWL_OBJECT_PROPERTY, PropertyKind.OBJECT),
        (_OWL_DATATYPE_PROPERTY, PropertyKind.DATATYPE),
    ):
        for element in root.findall(tag):
            about = _require_about(element)
            domain_element = element.find(_RDFS_DOMAIN)
            range_element = element.find(_RDFS_RANGE)
            ontology.add_property(
                about,
                kind=kind,
                domain=(
                    _require_resource(domain_element)
                    if domain_element is not None
                    else None
                ),
                range=(
                    _require_resource(range_element)
                    if range_element is not None
                    else None
                ),
                label=_optional_text(element, _RDFS_LABEL),
            )

    for element in root.findall(_OWL_INDIVIDUAL):
        about = _require_about(element)
        types = [_require_resource(t) for t in element.findall(_RDF_TYPE)]
        ontology.add_individual(about, types)

    return ontology


def _require_about(element: ET.Element) -> str:
    about = element.get(_RDF_ABOUT)
    if not about:
        raise OwlParseError(f"{element.tag} lacks rdf:about")
    return about


def _require_resource(element: ET.Element) -> str:
    resource = element.get(_RDF_RESOURCE)
    if not resource:
        raise OwlParseError(f"{element.tag} lacks rdf:resource")
    return resource


def _optional_text(element: ET.Element, tag: str) -> Optional[str]:
    child = element.find(tag)
    return child.text if child is not None else None
