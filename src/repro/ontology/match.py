"""Degree-of-match between advertised and requested concepts.

Whisper's SWS-proxy matches the *action*, *input*, and *output* annotations
of a Web service against those of JXTA peer-group advertisements (§3.2's
``findPeerGroupAdv`` listing compares ``get_sem_action``, ``get_sem_input``
and ``get_sem_output``).  We implement the classic four-level degree of
match from the METEOR-S / OWL-S matchmaking literature the paper builds on:

* **EXACT** — the concepts are identical or declared equivalent;
* **PLUGIN** — the advertisement is more specific than the request (the
  advertised concept is subsumed by the requested one), so the provider can
  be "plugged in";
* **SUBSUME** — the advertisement is more general than the request;
* **FAIL** — no subsumption relation at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .reasoner import Reasoner

__all__ = ["DegreeOfMatch", "ConceptMatch", "SignatureMatch", "ConceptMatcher"]


class DegreeOfMatch(enum.IntEnum):
    """Ordered match quality: higher is better."""

    FAIL = 0
    SUBSUME = 1
    PLUGIN = 2
    EXACT = 3


@dataclass(frozen=True)
class ConceptMatch:
    """The outcome of matching one advertised concept against one request."""

    requested: str
    advertised: str
    degree: DegreeOfMatch
    similarity: float

    @property
    def succeeded(self) -> bool:
        return self.degree is not DegreeOfMatch.FAIL


@dataclass(frozen=True)
class SignatureMatch:
    """Aggregate match of a full service signature (action + IO concepts)."""

    action: ConceptMatch
    inputs: Tuple[ConceptMatch, ...]
    outputs: Tuple[ConceptMatch, ...]

    @property
    def degree(self) -> DegreeOfMatch:
        """The weakest component bounds the whole signature."""
        parts = [self.action.degree]
        parts.extend(match.degree for match in self.inputs)
        parts.extend(match.degree for match in self.outputs)
        return min(parts)

    @property
    def succeeded(self) -> bool:
        return self.degree is not DegreeOfMatch.FAIL

    @property
    def score(self) -> float:
        """Mean similarity across every component, for ranking candidates."""
        parts = [self.action.similarity]
        parts.extend(match.similarity for match in self.inputs)
        parts.extend(match.similarity for match in self.outputs)
        return sum(parts) / len(parts)


class ConceptMatcher:
    """Matches concept URIs using a reasoner over a shared ontology."""

    def __init__(self, reasoner: Reasoner):
        self.reasoner = reasoner

    # -- single concepts ------------------------------------------------------------

    def match_concepts(self, requested: str, advertised: str) -> ConceptMatch:
        """Classify the relation of one advertised concept to one request."""
        reasoner = self.reasoner
        if requested == advertised or reasoner.equivalent(requested, advertised):
            degree = DegreeOfMatch.EXACT
        elif reasoner.is_subsumed_by(advertised, requested):
            degree = DegreeOfMatch.PLUGIN
        elif reasoner.is_subsumed_by(requested, advertised):
            degree = DegreeOfMatch.SUBSUME
        else:
            degree = DegreeOfMatch.FAIL
        return ConceptMatch(
            requested=requested,
            advertised=advertised,
            degree=degree,
            similarity=reasoner.similarity(requested, advertised),
        )

    # -- concept lists (service inputs/outputs) ------------------------------------------

    def match_concept_lists(
        self, requested: Sequence[str], advertised: Sequence[str]
    ) -> List[ConceptMatch]:
        """Greedy one-to-one assignment of advertised to requested concepts.

        Every requested concept must be covered; each advertised concept may
        cover at most one request.  The greedy order maximises total degree
        first, similarity second — adequate for the small signatures in WSDL
        interfaces (and deterministic).
        """
        remaining = list(advertised)
        matches: List[ConceptMatch] = []
        for request in requested:
            candidates = [self.match_concepts(request, offer) for offer in remaining]
            if not candidates:
                matches.append(
                    ConceptMatch(request, "", DegreeOfMatch.FAIL, 0.0)
                )
                continue
            best = max(candidates, key=lambda m: (m.degree, m.similarity))
            matches.append(best)
            if best.succeeded:
                remaining.remove(best.advertised)
        return matches

    # -- full signatures ---------------------------------------------------------------

    def match_signature(
        self,
        requested_action: str,
        requested_inputs: Sequence[str],
        requested_outputs: Sequence[str],
        advertised_action: str,
        advertised_inputs: Sequence[str],
        advertised_outputs: Sequence[str],
    ) -> SignatureMatch:
        """Match a full (action, inputs, outputs) signature.

        Direction conventions follow the matchmaking literature: for
        *outputs* the provider should offer something at least as specific
        as requested (PLUGIN is good); for *inputs* the provider must accept
        what the requester supplies, so the advertised input should be the
        *same or more general* — we therefore match inputs with the roles
        swapped and mirror the degree.
        """
        action = self.match_concepts(requested_action, advertised_action)
        outputs = tuple(
            self.match_concept_lists(list(requested_outputs), list(advertised_outputs))
        )
        raw_inputs = self.match_concept_lists(
            list(advertised_inputs), list(requested_inputs)
        )
        inputs = tuple(
            ConceptMatch(
                requested=match.advertised,
                advertised=match.requested,
                degree=match.degree,
                similarity=match.similarity,
            )
            for match in raw_inputs
        )
        return SignatureMatch(action=action, inputs=inputs, outputs=outputs)
