"""The ontology container.

An :class:`Ontology` holds concepts, properties, and individuals, provides
the mutation API used by the builder and the OWL-XML parser, and performs
structural validation (undefined references, subsumption cycles outside
equivalence classes).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .model import Concept, Individual, Property, PropertyKind
from .namespaces import NamespaceRegistry

__all__ = ["Ontology", "OntologyError"]


class OntologyError(Exception):
    """Raised for structural problems in an ontology."""


class Ontology:
    """A named collection of concepts, properties, and individuals."""

    def __init__(self, uri: str, label: Optional[str] = None):
        self.uri = uri
        self.label = label or uri
        self.namespaces = NamespaceRegistry()
        self.concepts: Dict[str, Concept] = {}
        self.properties: Dict[str, Property] = {}
        self.individuals: Dict[str, Individual] = {}

    # -- mutation -----------------------------------------------------------------

    def add_concept(
        self,
        uri: str,
        parents: Iterable[str] = (),
        label: Optional[str] = None,
        comment: Optional[str] = None,
    ) -> Concept:
        """Add (or extend) a concept; parent URIs may be declared later."""
        concept = self.concepts.get(uri)
        if concept is None:
            concept = Concept(uri=uri, label=label, comment=comment)
            self.concepts[uri] = concept
        else:
            if label is not None:
                concept.label = label
            if comment is not None:
                concept.comment = comment
        concept.parents.update(parents)
        return concept

    def add_subclass(self, child_uri: str, parent_uri: str) -> None:
        """Declare ``child rdfs:subClassOf parent``."""
        self.add_concept(child_uri).parents.add(parent_uri)
        self.add_concept(parent_uri)

    def add_equivalence(self, uri_a: str, uri_b: str) -> None:
        """Declare ``a owl:equivalentClass b`` (symmetric)."""
        self.add_concept(uri_a).equivalents.add(uri_b)
        self.add_concept(uri_b).equivalents.add(uri_a)

    def add_property(
        self,
        uri: str,
        kind: str = PropertyKind.OBJECT,
        domain: Optional[str] = None,
        range: Optional[str] = None,
        label: Optional[str] = None,
    ) -> Property:
        prop = self.properties.get(uri)
        if prop is None:
            prop = Property(uri=uri, kind=kind, domain=domain, range=range, label=label)
            self.properties[uri] = prop
        else:
            if domain is not None:
                prop.domain = domain
            if range is not None:
                prop.range = range
        return prop

    def add_individual(self, uri: str, types: Iterable[str] = ()) -> Individual:
        individual = self.individuals.get(uri)
        if individual is None:
            individual = Individual(uri=uri)
            self.individuals[uri] = individual
        individual.types.update(types)
        return individual

    def merge(self, other: "Ontology") -> None:
        """Import every axiom of ``other`` into this ontology."""
        for concept in other.concepts.values():
            merged = self.add_concept(
                concept.uri, concept.parents, concept.label, concept.comment
            )
            merged.equivalents.update(concept.equivalents)
        for prop in other.properties.values():
            self.add_property(prop.uri, prop.kind, prop.domain, prop.range, prop.label)
        for individual in other.individuals.values():
            merged_individual = self.add_individual(individual.uri, individual.types)
            for property_uri, values in individual.values.items():
                for value in values:
                    merged_individual.add_value(property_uri, value)
        for prefix, uri in other.namespaces.prefixes().items():
            if self.namespaces.resolve(f"{prefix}:x") == f"{prefix}:x":
                self.namespaces.bind(prefix, uri)

    # -- queries --------------------------------------------------------------------

    def concept(self, uri: str) -> Concept:
        try:
            return self.concepts[uri]
        except KeyError:
            raise OntologyError(f"unknown concept {uri!r}") from None

    def has_concept(self, uri: str) -> bool:
        return uri in self.concepts

    def direct_parents(self, uri: str) -> Set[str]:
        return set(self.concept(uri).parents)

    def direct_children(self, uri: str) -> Set[str]:
        return {
            concept.uri
            for concept in self.concepts.values()
            if uri in concept.parents
        }

    def roots(self) -> List[str]:
        """Concepts with no declared parents."""
        return sorted(
            concept.uri for concept in self.concepts.values() if not concept.parents
        )

    def individuals_of(self, concept_uri: str) -> List[Individual]:
        return [
            individual
            for individual in self.individuals.values()
            if concept_uri in individual.types
        ]

    # -- validation ------------------------------------------------------------------

    def validate(self) -> List[str]:
        """Return a list of structural problems (empty = valid).

        Checks: parent/equivalent/domain/range/type references must resolve
        to declared concepts, and the subsumption graph must be acyclic once
        equivalence classes are collapsed.
        """
        problems: List[str] = []
        for concept in self.concepts.values():
            for parent in concept.parents:
                if parent not in self.concepts:
                    problems.append(
                        f"concept {concept.uri} has undefined parent {parent}"
                    )
            for equivalent in concept.equivalents:
                if equivalent not in self.concepts:
                    problems.append(
                        f"concept {concept.uri} equivalent to undefined {equivalent}"
                    )
        for prop in self.properties.values():
            if prop.domain is not None and prop.domain not in self.concepts:
                problems.append(f"property {prop.uri} has undefined domain {prop.domain}")
            if (
                prop.kind == PropertyKind.OBJECT
                and prop.range is not None
                and prop.range not in self.concepts
            ):
                problems.append(f"property {prop.uri} has undefined range {prop.range}")
        for individual in self.individuals.values():
            for type_uri in individual.types:
                if type_uri not in self.concepts:
                    problems.append(
                        f"individual {individual.uri} has undefined type {type_uri}"
                    )
        problems.extend(self._find_cycles())
        return problems

    def _find_cycles(self) -> List[str]:
        """Detect subsumption cycles not explained by equivalence."""
        from .reasoner import Reasoner  # local import to avoid a cycle

        reasoner = Reasoner(self)
        problems = []
        for uri in self.concepts:
            for other in reasoner.ancestors(uri):
                if other == uri:
                    continue
                if uri in reasoner.ancestors(other) and not reasoner.equivalent(
                    uri, other
                ):
                    problems.append(
                        f"subsumption cycle between {uri} and {other} "
                        "without declared equivalence"
                    )
        return sorted(set(problems))

    def __len__(self) -> int:
        return len(self.concepts)

    def __repr__(self) -> str:
        return (
            f"<Ontology {self.uri} concepts={len(self.concepts)} "
            f"properties={len(self.properties)} individuals={len(self.individuals)}>"
        )
