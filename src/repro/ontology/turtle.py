"""Turtle (Terse RDF Triple Language) serialisation for ontologies.

RDF/XML (:mod:`repro.ontology.owlxml`) is what the 2006-era toolchain
spoke; Turtle is what humans (and modern toolchains) read.  This module
writes and reads the OWL-lite subset our model covers:

* ``owl:Class`` declarations with ``rdfs:subClassOf`` and
  ``owl:equivalentClass``;
* object/datatype properties with ``rdfs:domain`` / ``rdfs:range``;
* named individuals with types;
* ``rdfs:label`` / ``rdfs:comment`` string literals.

The parser accepts the practical subset the writer emits plus common
variations: ``@prefix`` directives, ``a`` for ``rdf:type``, ``;`` and
``,`` continuations, comments, and both CURIE and ``<uri>`` terms.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .model import PropertyKind
from .namespaces import OWL, RDF, RDFS, split_uri
from .ontology import Ontology

__all__ = ["ontology_to_turtle", "ontology_from_turtle", "TurtleParseError"]


class TurtleParseError(Exception):
    """Raised when a Turtle document cannot be interpreted."""


# -- writing ---------------------------------------------------------------------------


def _escape_literal(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


_CURIE_LOCAL_OK = re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")


class _TermWriter:
    """Chooses CURIE or <uri> form for each term."""

    def __init__(self, ontology: Ontology):
        self._registry = ontology.namespaces

    def term(self, uri: str) -> str:
        namespace, local = split_uri(uri)
        prefix = self._registry.prefix_of(namespace)
        if prefix and _CURIE_LOCAL_OK.match(local):
            return f"{prefix}:{local}"
        return f"<{uri}>"


def ontology_to_turtle(ontology: Ontology) -> str:
    """Serialise an ontology to a Turtle string."""
    writer = _TermWriter(ontology)
    lines: List[str] = []
    prefixes = dict(ontology.namespaces.prefixes())
    prefixes.setdefault("rdf", RDF.uri)
    prefixes.setdefault("rdfs", RDFS.uri)
    prefixes.setdefault("owl", OWL.uri)
    prefixes.setdefault("xsd", "http://www.w3.org/2001/XMLSchema#")
    for prefix in sorted(prefixes):
        lines.append(f"@prefix {prefix}: <{prefixes[prefix]}> .")
    lines.append("")

    lines.append(f"<{ontology.uri}> a owl:Ontology ;")
    lines.append(f'    rdfs:label "{_escape_literal(ontology.label)}" .')
    lines.append("")

    for uri in sorted(ontology.concepts):
        concept = ontology.concepts[uri]
        parts = [f"{writer.term(uri)} a owl:Class"]
        for parent in sorted(concept.parents):
            parts.append(f"rdfs:subClassOf {writer.term(parent)}")
        for equivalent in sorted(concept.equivalents):
            parts.append(f"owl:equivalentClass {writer.term(equivalent)}")
        if concept.label:
            parts.append(f'rdfs:label "{_escape_literal(concept.label)}"')
        if concept.comment:
            parts.append(f'rdfs:comment "{_escape_literal(concept.comment)}"')
        lines.append(" ;\n    ".join(parts) + " .")
    if ontology.concepts:
        lines.append("")

    for uri in sorted(ontology.properties):
        prop = ontology.properties[uri]
        kind = (
            "owl:ObjectProperty"
            if prop.kind == PropertyKind.OBJECT
            else "owl:DatatypeProperty"
        )
        parts = [f"{writer.term(uri)} a {kind}"]
        if prop.label:
            parts.append(f'rdfs:label "{_escape_literal(prop.label)}"')
        if prop.domain:
            parts.append(f"rdfs:domain {writer.term(prop.domain)}")
        if prop.range:
            if prop.kind == PropertyKind.OBJECT:
                parts.append(f"rdfs:range {writer.term(prop.range)}")
            else:
                parts.append(f"rdfs:range {prop.range}")
        lines.append(" ;\n    ".join(parts) + " .")
    if ontology.properties:
        lines.append("")

    for uri in sorted(ontology.individuals):
        individual = ontology.individuals[uri]
        types = ["owl:NamedIndividual"] + [
            writer.term(t) for t in sorted(individual.types)
        ]
        lines.append(f"{writer.term(uri)} a {', '.join(types)} .")

    return "\n".join(lines).rstrip() + "\n"


# -- parsing ------------------------------------------------------------------------------

_TOKEN = re.compile(
    r"""
      "(?:[^"\\]|\\.)*"          # string literal
    | <[^>]*>                    # IRI
    | @prefix | @base
    | [A-Za-z_][\w.-]*:[\w.-]*   # CURIE with local part
    | [A-Za-z_][\w.-]*:          # bare prefix (in @prefix)
    | \b[aA]\b                   # the 'a' keyword (matched as word)
    | [;,.]
    """,
    re.VERBOSE,
)


def _strip_comments(text: str) -> str:
    lines = []
    for raw in text.splitlines():
        out = []
        in_string = False
        in_iri = False
        index = 0
        while index < len(raw):
            char = raw[index]
            if char == '"' and not in_iri and (index == 0 or raw[index - 1] != "\\"):
                in_string = not in_string
            elif char == "<" and not in_string:
                in_iri = True
            elif char == ">" and not in_string:
                in_iri = False
            if char == "#" and not in_string and not in_iri:
                break
            out.append(char)
            index += 1
        lines.append("".join(out))
    return "\n".join(lines)


def _unescape_literal(text: str) -> str:
    return (
        text.replace("\\t", "\t")
        .replace("\\r", "\r")
        .replace("\\n", "\n")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )


def ontology_from_turtle(document: str) -> Ontology:
    """Parse a Turtle document (the subset :func:`ontology_to_turtle` emits)."""
    tokens = _TOKEN.findall(_strip_comments(document))
    if not tokens:
        raise TurtleParseError("empty Turtle document")

    prefixes: Dict[str, str] = {}
    triples: List[Tuple[str, str, str]] = []

    def resolve(token: str) -> str:
        if token.startswith("<") and token.endswith(">"):
            return token[1:-1]
        if token in ("a", "A"):
            return RDF["type"]
        if ":" in token:
            prefix, local = token.split(":", 1)
            base = prefixes.get(prefix)
            if base is None:
                raise TurtleParseError(f"unknown prefix {prefix!r} in {token!r}")
            return base + local
        raise TurtleParseError(f"cannot resolve term {token!r}")

    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token == "@prefix":
            if index + 2 >= len(tokens):
                raise TurtleParseError("truncated @prefix directive")
            prefix_token = tokens[index + 1]
            iri_token = tokens[index + 2]
            if not prefix_token.endswith(":") and ":" not in prefix_token:
                raise TurtleParseError(f"bad prefix token {prefix_token!r}")
            prefix = prefix_token.rstrip(":").split(":", 1)[0]
            if not (iri_token.startswith("<") and iri_token.endswith(">")):
                raise TurtleParseError(f"bad namespace IRI {iri_token!r}")
            prefixes[prefix] = iri_token[1:-1]
            index += 3
            if index < len(tokens) and tokens[index] == ".":
                index += 1
            continue

        # A statement: subject predicate object (; predicate object)* .
        subject = resolve(token)
        index += 1
        while True:
            if index + 1 >= len(tokens):
                raise TurtleParseError(f"truncated statement about {subject}")
            predicate = resolve(tokens[index])
            index += 1
            while True:
                object_token = tokens[index]
                index += 1
                if object_token.startswith('"'):
                    object_value = "LITERAL:" + _unescape_literal(object_token[1:-1])
                else:
                    object_value = resolve(object_token)
                triples.append((subject, predicate, object_value))
                if index < len(tokens) and tokens[index] == ",":
                    index += 1
                    continue
                break
            if index < len(tokens) and tokens[index] == ";":
                index += 1
                # Tolerate trailing ';' before '.'
                if index < len(tokens) and tokens[index] == ".":
                    index += 1
                    break
                continue
            if index < len(tokens) and tokens[index] == ".":
                index += 1
                break
            raise TurtleParseError(
                f"expected ';' or '.' after triple about {subject}"
            )

    return _ontology_from_triples(triples)


def _ontology_from_triples(triples: List[Tuple[str, str, str]]) -> Ontology:
    rdf_type = RDF["type"]
    ontology_uri: Optional[str] = None
    ontology_label: Optional[str] = None

    # First pass: find the ontology header.
    for subject, predicate, obj in triples:
        if predicate == rdf_type and obj == OWL["Ontology"]:
            ontology_uri = subject
    if ontology_uri is None:
        raise TurtleParseError("no owl:Ontology declaration found")
    for subject, predicate, obj in triples:
        if subject == ontology_uri and predicate == RDFS["label"]:
            if obj.startswith("LITERAL:"):
                ontology_label = obj[len("LITERAL:"):]

    ontology = Ontology(ontology_uri, label=ontology_label)

    classes = {
        s for s, p, o in triples if p == rdf_type and o == OWL["Class"]
    }
    object_properties = {
        s for s, p, o in triples if p == rdf_type and o == OWL["ObjectProperty"]
    }
    datatype_properties = {
        s for s, p, o in triples if p == rdf_type and o == OWL["DatatypeProperty"]
    }
    individuals = {
        s for s, p, o in triples if p == rdf_type and o == OWL["NamedIndividual"]
    }

    for uri in sorted(classes):
        ontology.add_concept(uri)
    for uri in sorted(object_properties):
        ontology.add_property(uri, kind=PropertyKind.OBJECT)
    for uri in sorted(datatype_properties):
        ontology.add_property(uri, kind=PropertyKind.DATATYPE)
    for uri in sorted(individuals):
        ontology.add_individual(uri)

    for subject, predicate, obj in triples:
        literal = obj[len("LITERAL:"):] if obj.startswith("LITERAL:") else None
        if subject in classes:
            if predicate == RDFS["subClassOf"] and literal is None:
                ontology.add_subclass(subject, obj)
            elif predicate == OWL["equivalentClass"] and literal is None:
                ontology.add_equivalence(subject, obj)
            elif predicate == RDFS["label"] and literal is not None:
                ontology.concepts[subject].label = literal
            elif predicate == RDFS["comment"] and literal is not None:
                ontology.concepts[subject].comment = literal
        elif subject in object_properties or subject in datatype_properties:
            prop = ontology.properties[subject]
            if predicate == RDFS["domain"] and literal is None:
                prop.domain = obj
            elif predicate == RDFS["range"] and literal is None:
                xsd_ns = "http://www.w3.org/2001/XMLSchema#"
                if subject in datatype_properties and obj.startswith(xsd_ns):
                    # Keep the model's compact xsd:* form for datatype ranges.
                    prop.range = "xsd:" + obj[len(xsd_ns):]
                else:
                    prop.range = obj
            elif predicate == RDFS["label"] and literal is not None:
                prop.label = literal
        elif subject in individuals:
            if predicate == rdf_type and obj != OWL["NamedIndividual"]:
                if literal is None:
                    ontology.individuals[subject].types.add(obj)

    return ontology
