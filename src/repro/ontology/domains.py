"""Sample domain ontologies.

Two domains recur in the paper:

* the running scenario (§3): a *student management* service at the
  University of Madeira, with a ``sm:`` ontology providing
  ``StudentInformation`` (action), ``StudentID`` (input) and
  ``StudentInfo`` (output) concepts;
* the motivating B2B domains (§1): insurance claim processing, bank loan
  management, and healthcare processes.

Both are built here with deliberate synonym (``owl:equivalentClass``) and
homonym (same local name, different namespace and semantics) structure, so
the semantic-vs-syntactic discovery ablation has something real to measure.
"""

from __future__ import annotations

from .builder import OntologyBuilder
from .namespaces import Namespace
from .ontology import Ontology

__all__ = [
    "SM",
    "B2B",
    "LEGACY",
    "university_ontology",
    "enterprise_ontology",
    "b2b_ontology",
]

#: The paper's student-management namespace (``xmlns:sm`` in §3.1's WSDL-S).
SM = Namespace("http://uma.pt/ontologies/student#")

#: Enterprise B2B namespace covering the §1 motivating domains.
B2B = Namespace("http://example.org/ontologies/b2b#")

#: A legacy vocabulary with *homonyms* of B2B terms (same local names,
#: unrelated meanings) to stress syntactic matching.
LEGACY = Namespace("http://legacy.example.org/vocab#")


def university_ontology() -> Ontology:
    """The student-management ontology of the paper's running scenario."""
    builder = OntologyBuilder(
        "http://uma.pt/ontologies/student", label="Student Management"
    )
    builder.namespace("sm", SM.uri)

    # People.
    builder.concept("sm:Agent", label="Agent")
    builder.concept("sm:Person", parents=["sm:Agent"], label="Person")
    builder.concept("sm:Student", parents=["sm:Person"], label="Student")
    builder.concept("sm:UndergraduateStudent", parents=["sm:Student"])
    builder.concept("sm:GraduateStudent", parents=["sm:Student"])
    builder.concept("sm:FacultyMember", parents=["sm:Person"])

    # Identifiers (service inputs).
    builder.concept("sm:Identifier", label="Identifier")
    builder.concept("sm:StudentID", parents=["sm:Identifier"], label="Student ID")
    builder.concept("sm:StudentNumber", parents=["sm:Identifier"])
    builder.equivalent("sm:StudentID", "sm:StudentNumber")
    builder.concept("sm:CourseCode", parents=["sm:Identifier"])

    # Information records (service outputs).
    builder.concept("sm:InformationRecord", label="Information Record")
    builder.concept(
        "sm:StudentInfo",
        parents=["sm:InformationRecord"],
        label="Student Information",
        comment="The structure returned by the StudentInformation operation.",
    )
    builder.concept("sm:StudentRecord", parents=["sm:InformationRecord"])
    builder.equivalent("sm:StudentInfo", "sm:StudentRecord")
    builder.concept("sm:StudentTranscript", parents=["sm:StudentInfo"])
    builder.concept("sm:StudentContactInfo", parents=["sm:StudentInfo"])
    builder.concept("sm:CourseInfo", parents=["sm:InformationRecord"])

    # Functional semantics (actions).
    builder.concept("sm:Action", label="Action")
    builder.concept("sm:InformationRetrieval", parents=["sm:Action"])
    builder.concept(
        "sm:StudentInformation",
        parents=["sm:InformationRetrieval"],
        label="Retrieve student information",
        comment="The action annotated on the StudentManagementUMA interface.",
    )
    builder.concept(
        "sm:StudentTranscriptRetrieval", parents=["sm:StudentInformation"]
    )
    builder.concept("sm:CourseInformation", parents=["sm:InformationRetrieval"])
    builder.concept("sm:DataManagement", parents=["sm:Action"])
    builder.concept("sm:EnrollStudent", parents=["sm:DataManagement"])
    builder.concept("sm:UpdateStudentRecord", parents=["sm:DataManagement"])

    # Properties linking the model together.
    builder.object_property("sm:hasRecord", domain="sm:Student", range="sm:StudentInfo")
    builder.datatype_property("sm:hasID", domain="sm:Student", range="xsd:string")

    return builder.build()


def enterprise_ontology() -> Ontology:
    """The B2B ontology: insurance claims, bank loans, healthcare (§1)."""
    builder = OntologyBuilder("http://example.org/ontologies/b2b", label="B2B")
    builder.namespace("b2b", B2B.uri)

    builder.concept("b2b:Action")
    builder.concept("b2b:BusinessProcess", parents=["b2b:Action"])

    # Insurance claim processing.
    builder.concept("b2b:ClaimProcessing", parents=["b2b:BusinessProcess"])
    builder.concept("b2b:FileClaim", parents=["b2b:ClaimProcessing"])
    builder.concept("b2b:AssessClaim", parents=["b2b:ClaimProcessing"])
    builder.concept("b2b:SettleClaim", parents=["b2b:ClaimProcessing"])
    builder.concept("b2b:ProcessClaim", parents=["b2b:ClaimProcessing"])
    builder.equivalent("b2b:ProcessClaim", "b2b:AssessClaim")

    # Bank loan management.
    builder.concept("b2b:LoanManagement", parents=["b2b:BusinessProcess"])
    builder.concept("b2b:LoanApplication", parents=["b2b:LoanManagement"])
    builder.concept("b2b:CreditCheck", parents=["b2b:LoanManagement"])
    builder.concept("b2b:LoanApproval", parents=["b2b:LoanManagement"])
    # The loan-solvency saga pipeline: each mutating action pairs with
    # its compensating action (reverse-order rollback on saga failure).
    builder.concept("b2b:RegisterLoan", parents=["b2b:LoanApplication"])
    builder.concept("b2b:CancelLoan", parents=["b2b:LoanApplication"])
    builder.concept("b2b:ReserveFunds", parents=["b2b:CreditCheck"])
    builder.concept("b2b:ReleaseFunds", parents=["b2b:CreditCheck"])
    builder.concept("b2b:BookLoan", parents=["b2b:LoanApproval"])
    builder.concept("b2b:UnbookLoan", parents=["b2b:LoanApproval"])

    # Healthcare processes.
    builder.concept("b2b:PatientCare", parents=["b2b:BusinessProcess"])
    builder.concept("b2b:ScheduleTreatment", parents=["b2b:PatientCare"])
    builder.concept("b2b:RetrievePatientRecord", parents=["b2b:PatientCare"])

    # Data concepts.
    builder.concept("b2b:Document")
    builder.concept("b2b:Identifier")
    builder.concept("b2b:ClaimID", parents=["b2b:Identifier"])
    builder.concept("b2b:PolicyNumber", parents=["b2b:Identifier"])
    builder.concept("b2b:CustomerID", parents=["b2b:Identifier"])
    builder.concept("b2b:PatientID", parents=["b2b:Identifier"])
    builder.equivalent("b2b:PatientID", "b2b:CustomerID")
    builder.concept("b2b:LoanID", parents=["b2b:Identifier"])

    builder.concept("b2b:ClaimReport", parents=["b2b:Document"])
    builder.concept("b2b:AssessmentReport", parents=["b2b:ClaimReport"])
    builder.concept("b2b:LoanApplicationForm", parents=["b2b:Document"])
    builder.concept("b2b:CreditReport", parents=["b2b:Document"])
    builder.concept("b2b:LoanDecision", parents=["b2b:Document"])
    builder.concept("b2b:LoanRegistration", parents=["b2b:Document"])
    builder.concept("b2b:FundsReservation", parents=["b2b:Document"])
    builder.concept("b2b:LoanBooking", parents=["b2b:LoanDecision"])
    builder.concept("b2b:PatientRecord", parents=["b2b:Document"])
    builder.concept("b2b:MedicalRecord", parents=["b2b:Document"])
    builder.equivalent("b2b:PatientRecord", "b2b:MedicalRecord")
    builder.concept("b2b:TreatmentPlan", parents=["b2b:Document"])

    return builder.build()


def _legacy_homonyms() -> Ontology:
    """Homonyms of B2B/SM terms with *unrelated* semantics.

    ``legacy:ProcessClaim`` is a land-registry deed claim, and
    ``legacy:StudentInformation`` is a marketing-brochure request: same
    local names as the real concepts, disjoint hierarchies.  Syntactic
    (name-based) discovery cannot tell them apart; semantic discovery can.
    """
    builder = OntologyBuilder("http://legacy.example.org/vocab", label="Legacy")
    builder.namespace("legacy", LEGACY.uri)
    builder.concept("legacy:Operation")
    builder.concept("legacy:LandRegistry", parents=["legacy:Operation"])
    builder.concept("legacy:ProcessClaim", parents=["legacy:LandRegistry"])
    builder.concept("legacy:Marketing", parents=["legacy:Operation"])
    builder.concept("legacy:StudentInformation", parents=["legacy:Marketing"])
    builder.concept("legacy:Payload")
    builder.concept("legacy:DeedNumber", parents=["legacy:Payload"])
    builder.concept("legacy:Brochure", parents=["legacy:Payload"])
    builder.concept("legacy:StudentID", parents=["legacy:Payload"])
    builder.concept("legacy:StudentInfo", parents=["legacy:Payload"])
    return builder.build()


def b2b_ontology() -> Ontology:
    """University + enterprise + legacy vocabularies merged into one store.

    Whisper assumes every party annotates against shared ontologies; the
    merged store is what the SWS-proxies and b-peer groups both load.
    """
    merged = Ontology("http://example.org/ontologies/whisper", label="Whisper")
    merged.namespaces.bind("sm", SM.uri)
    merged.namespaces.bind("b2b", B2B.uri)
    merged.namespaces.bind("legacy", LEGACY.uri)
    merged.merge(university_ontology())
    merged.merge(enterprise_ontology())
    merged.merge(_legacy_homonyms())
    return merged
