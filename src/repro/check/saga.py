"""Saga atomicity checking: crash the orchestrator, audit the ledgers.

The workflow layer's saga guarantee (:mod:`repro.workflow.saga`) is
end-to-end: for every saga id, the backend effect ledgers must show all
steps committed or every applied step compensated — never a mix, never a
double rollback.  This module stresses that guarantee the same way
:mod:`repro.check.explorer` stresses the election/dedup invariants:
one deterministic run = a :class:`SagaCheckScenario` (the loan-solvency
pipeline plus a crashable orchestrator host) under one
:class:`~repro.check.schedule.Schedule` whose fault ops fire at protocol
decision points — which includes ``pre-commit``, so a ``crash`` op
targeting the orchestrator host lands exactly at a commit/compensate
boundary.

The run driver models the deployment story the saga log exists for: the
orchestrator host crashes mid-saga (its processes die with simnet
``Interrupt``), the host restarts, and a *fresh* orchestrator instance —
sharing only the durable :class:`~repro.workflow.saga.SagaLog` and DLQ
objects — recovers the orphaned sagas.  The atomicity invariant is
re-audited after every slice, and a ``final=True`` pass after cooldown
additionally requires every saga to have reached a terminal state.

:func:`saga_self_test` is the teeth-check: it re-runs the scenario with
compensation **disabled** (the seeded defect), requires the atomicity
invariant to trip on stranded partial effects, shrinks the schedule, and
replays the repro file byte-identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..backend.loans import (
    book_loan,
    cancel_loan,
    loan_booking_database,
    loan_desk_database,
    register_loan,
    release_funds,
    reserve_funds,
    solvency_database,
    unbook_loan,
)
from ..core.config import ScenarioConfig
from ..core.system import WhisperSystem
from ..simnet.events import Interrupt
from ..wsdl.samples import loan_booking_wsdl, loan_desk_wsdl, solvency_wsdl
from .faults import DecisionFaultInjector
from .invariants import exactly_once_violations, saga_atomicity_violations
from .schedule import FaultOp, Schedule, random_schedule
from .tiebreak import build_tiebreak

__all__ = [
    "SAGA_REPRO_FORMAT",
    "SagaCheckScenario",
    "SagaRunResult",
    "build_loan_fleet",
    "explore_saga_schedules",
    "loan_saga",
    "loan_saga_context",
    "run_dlq_demo",
    "run_saga_schedule",
    "shrink_saga_schedule",
    "save_saga_repro",
    "load_saga_repro",
    "replay_saga_repro",
    "saga_self_test",
]

SAGA_REPRO_FORMAT = "whisper-saga-check/1"

#: The orchestrator's host name inside every saga check run; directed
#: schedules name it as a ``crash`` target to kill sagas mid-flight.
ORCHESTRATOR_HOST = "saga-host"


@dataclass(frozen=True)
class SagaCheckScenario:
    """The fixed half of one saga check run (the schedule is the other).

    Every fourth saga is submitted for an insolvent applicant (lowest
    credit tier, amount above it), so the compensation path is exercised
    on every run — the atomicity audit always has material, even under a
    baseline schedule.
    """

    seed: int = 0
    replicas: int = 2
    sagas: int = 10
    #: Every ``insolvent_every``-th saga targets an applicant whose
    #: credit tier cannot cover :attr:`insolvent_amount`.
    insolvent_every: int = 4
    solvent_amount: float = 1_000.0
    insolvent_amount: float = 9_000.0
    saga_period: float = 0.8
    step_timeout: float = 1.5
    step_budget: float = 6.0
    compensation_attempts: int = 3
    heartbeat_interval: float = 0.5
    miss_threshold: int = 2
    settle: float = 6.0
    cooldown: float = 12.0
    slice_seconds: float = 0.5
    compensation_enabled: bool = True
    #: Network-wide message loss applied once the workload starts (the
    #: settle window stays clean so deployment is identical across runs).
    loss_rate: float = 0.0

    def replace(self, **changes: Any) -> "SagaCheckScenario":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SagaCheckScenario":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass
class SagaRunResult:
    """Everything one saga check run produced, digestible for replay."""

    violations: List[str] = field(default_factory=list)
    violated_at: Optional[float] = None
    decisions: int = 0
    sim_time: float = 0.0
    submitted: int = 0
    committed: int = 0
    compensated: int = 0
    abandoned: int = 0
    dead_lettered: int = 0
    recoveries: int = 0
    effects_applied: int = 0
    fired: List[Dict[str, Any]] = field(default_factory=list)
    skipped: List[Dict[str, Any]] = field(default_factory=list)
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    hosts: List[str] = field(default_factory=list)
    saga_states: Dict[str, str] = field(default_factory=dict)
    #: Wall-to-wall simulated duration per *terminal* saga (the bench's
    #: latency sample; deterministic, so deliberately outside the digest).
    saga_elapsed: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def digest(self) -> str:
        """Fingerprint of the observable outcome; replays must match it."""
        payload = {
            "violations": self.violations,
            "violated_at": self.violated_at,
            "decisions": self.decisions,
            "sim_time": self.sim_time,
            "submitted": self.submitted,
            "committed": self.committed,
            "compensated": self.compensated,
            "abandoned": self.abandoned,
            "dead_lettered": self.dead_lettered,
            "recoveries": self.recoveries,
            "effects_applied": self.effects_applied,
            "fired": self.fired,
            "saga_states": self.saga_states,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _Fleet:
    """``all_peers()`` over several deployed services, for the injector
    (and the ledger audits, which want every backend in one sweep)."""

    def __init__(self, services: Sequence[Any]):
        self.services = list(services)

    def all_peers(self) -> List[Any]:
        return [peer for service in self.services for peer in service.all_peers()]


# -- the loan-solvency pipeline (shared with the saga benchmark) ---------------------


def build_loan_fleet(system: WhisperSystem, replicas: int) -> Tuple[Dict[str, Any], _Fleet]:
    """Deploy the CRUD → business-logic → orchestration loan pipeline.

    Each service's forward and compensating operation groups share ONE
    operational :class:`~repro.backend.store.Database` across all
    replicas — the one real store behind the service, which is what
    makes a compensation actually undo the forward effect (and what the
    effect-ledger audit reads; ``effect_totals`` dedups backends by
    identity, so the shared store is counted once).
    """
    loan_db = loan_desk_database()
    solvency_db = solvency_database()
    booking_db = loan_booking_database()
    loan_desk = system.deploy_service(
        loan_desk_wsdl(),
        {
            "RegisterLoan": [register_loan(loan_db) for _ in range(replicas)],
            "CancelLoan": [cancel_loan(loan_db) for _ in range(replicas)],
        },
        web_host="loan-web",
    )
    solvency = system.deploy_service(
        solvency_wsdl(),
        {
            "ReserveFunds": [reserve_funds(solvency_db) for _ in range(replicas)],
            "ReleaseFunds": [release_funds(solvency_db) for _ in range(replicas)],
        },
        web_host="solvency-web",
    )
    booking = system.deploy_service(
        loan_booking_wsdl(),
        {
            "BookLoan": [book_loan(booking_db) for _ in range(replicas)],
            "UnbookLoan": [unbook_loan(booking_db) for _ in range(replicas)],
        },
        web_host="booking-web",
    )
    services = {"loan_desk": loan_desk, "solvency": solvency, "booking": booking}
    return services, _Fleet(list(services.values()))


def loan_saga(
    services: Dict[str, Any],
    timeout: float = 1.5,
    budget: Optional[float] = 6.0,
) -> "Saga":
    """The three-step loan saga: register → reserve funds → book."""
    # Imported lazily: repro.core's campaign imports this package's
    # invariants, so a module-level workflow import here would close a
    # cycle back through workflow.engine → core.errors → core.
    from ..workflow.saga import CompensableTask, Saga

    def args_full(context):
        return {
            "loanId": context["loan_id"],
            "applicant": context["applicant"],
            "amount": context["amount"],
        }

    def args_booking(context):
        return {"loanId": context["loan_id"], "amount": context["amount"]}

    def args_id(context):
        return {"loanId": context["loan_id"]}

    common = dict(
        timeout=timeout,
        budget=budget,
        compensate_timeout=timeout,
        compensate_budget=budget,
    )
    return Saga(
        name="loan",
        steps=[
            CompensableTask(
                name="register",
                service=services["loan_desk"],
                operation="RegisterLoan",
                input_mapping=args_full,
                compensate_operation="CancelLoan",
                compensate_mapping=args_id,
                output_key="registration",
                **common,
            ),
            CompensableTask(
                name="reserve",
                service=services["solvency"],
                operation="ReserveFunds",
                input_mapping=args_full,
                compensate_operation="ReleaseFunds",
                compensate_mapping=args_id,
                output_key="reservation",
                **common,
            ),
            CompensableTask(
                name="book",
                service=services["booking"],
                operation="BookLoan",
                input_mapping=args_booking,
                compensate_operation="UnbookLoan",
                compensate_mapping=args_id,
                output_key="booking",
                **common,
            ),
        ],
    )


def loan_saga_context(scenario: SagaCheckScenario, index: int) -> Dict[str, Any]:
    """Deterministic inputs for the ``index``-th saga of a run.

    Insolvent submissions cycle through the lowest credit tier
    (``APP-0000``, ``APP-0004``, ...; limit 5 000) asking for more than
    the tier covers, so ``ReserveFunds`` faults and the saga compensates.
    Solvent ones draw from the higher tiers with small amounts.
    """
    insolvent = (
        scenario.insolvent_every > 0 and index % scenario.insolvent_every == 0
    )
    if insolvent:
        applicant = f"APP-{(index % 8) * 4:04d}"
        amount = scenario.insolvent_amount
    else:
        applicant = f"APP-{(index % 8) * 4 + 1 + (index % 3):04d}"
        amount = scenario.solvent_amount
    return {
        "loan_id": f"LOAN-{index:04d}",
        "applicant": applicant,
        "amount": amount,
        "insolvent": insolvent,
    }


# -- one run -----------------------------------------------------------------------


def run_saga_schedule(
    scenario: SagaCheckScenario,
    schedule: Schedule,
    halt_on_violation: bool = True,
) -> SagaRunResult:
    """Execute one (scenario, schedule) pair and audit it slice by slice.

    ``halt_on_violation=False`` runs the full horizon regardless and
    reports the final audit — the benchmark's baseline mode, which wants
    to *count* the stranded effects a violating run leaves behind, not
    stop at the first one.
    """
    from ..workflow.dlq import DeadLetterQueue
    from ..workflow.saga import SagaLog, SagaOrchestrator

    config = ScenarioConfig(
        seed=scenario.seed,
        settle=scenario.settle,
        heartbeat_interval=scenario.heartbeat_interval,
        miss_threshold=scenario.miss_threshold,
        replicas=scenario.replicas,
        request_timeout=scenario.step_timeout,
        deadline_budget=scenario.step_budget,
    )
    system = WhisperSystem(config)
    services, fleet = build_loan_fleet(system, scenario.replicas)
    system.env.tiebreak = build_tiebreak(schedule.tiebreak)
    system.settle(scenario.settle)
    if scenario.loss_rate:
        system.network.loss_rate = scenario.loss_rate

    injector = DecisionFaultInjector(system, fleet, schedule.ops)
    injector.install()
    result = SagaRunResult(
        hosts=sorted(injector.watched | {ORCHESTRATOR_HOST})
    )

    env = system.env
    host = system.network.add_host(ORCHESTRATOR_HOST)
    client = system.network.add_host("saga-client")
    saga_log = SagaLog()
    dlq = DeadLetterQueue()
    definition_box: Dict[str, Any] = {}

    def make_orchestrator() -> SagaOrchestrator:
        orchestrator = SagaOrchestrator(
            host,
            log=saga_log,
            dlq=dlq,
            compensation_enabled=scenario.compensation_enabled,
            max_compensation_attempts=scenario.compensation_attempts,
        )
        orchestrator.register(definition_box["saga"])
        return orchestrator

    definition_box["saga"] = loan_saga(
        services, timeout=scenario.step_timeout, budget=scenario.step_budget
    )
    orchestrator_box = {"current": make_orchestrator()}
    #: saga_id -> the process currently driving it (dead = orphaned).
    active: Dict[str, Any] = {}
    submitted = {"count": 0}

    def drive_one(saga_id: str, context: Dict[str, Any]):
        try:
            yield from orchestrator_box["current"].execute(
                definition_box["saga"], context, saga_id=saga_id
            )
        except Interrupt:
            return

    def recover_batch(orchestrator: SagaOrchestrator, saga_ids: List[str]):
        try:
            yield from orchestrator.recover(saga_ids=saga_ids)
        except Interrupt:
            return

    def driver():
        for index in range(scenario.sagas):
            if host.up:
                saga_id = f"loan-{index:04d}"
                context = loan_saga_context(scenario, index)
                process = host.spawn(
                    drive_one(saga_id, context), name=f"saga-{saga_id}"
                )
                active[saga_id] = process
                submitted["count"] += 1
            yield env.timeout(scenario.saga_period)

    client.spawn(driver(), name="saga-driver")

    horizon = env.now + scenario.sagas * scenario.saga_period + scenario.cooldown
    hard_stop = horizon + 10 * scenario.cooldown
    seen_crashes = host.crash_count
    violations: List[str] = []
    while env.now < horizon:
        system.run_until(min(env.now + scenario.slice_seconds, horizon))
        result.timeline.append((env.now, injector.decisions))
        # Restart-driven recovery: when the orchestrator host has crashed
        # since the last slice and is back up, a *fresh* orchestrator
        # (sharing only the durable log + DLQ) resumes the orphaned
        # sagas — never ones still held by a live process.
        if host.up and host.crash_count > seen_crashes:
            seen_crashes = host.crash_count
            orphans = [
                record.saga_id
                for record in saga_log.incomplete()
                if not (
                    record.saga_id in active
                    and active[record.saga_id].is_alive
                )
            ]
            if orphans:
                orchestrator_box["current"] = make_orchestrator()
                process = host.spawn(
                    recover_batch(orchestrator_box["current"], orphans),
                    name=f"saga-recover-{result.recoveries}",
                )
                for saga_id in orphans:
                    active[saga_id] = process
                result.recoveries += 1
        peers = fleet.all_peers()
        violations = saga_atomicity_violations(saga_log, peers)
        violations.extend(exactly_once_violations(peers))
        if violations:
            if result.violated_at is None:
                result.violated_at = env.now
            if halt_on_violation:
                break
            violations = []
        # Stretch the horizon past the last fault's heal (mirroring the
        # explorer) and past any still-incomplete saga: recovery can only
        # start after the restart, and compensation retries take time.
        last_heal = max(
            (f["time"] + f["op"]["duration"] for f in injector.fired),
            default=0.0,
        )
        horizon = max(horizon, last_heal + scenario.cooldown)
        if saga_log.incomplete() and horizon < hard_stop:
            horizon = min(max(horizon, env.now + scenario.cooldown), hard_stop)

    if not violations:
        peers = fleet.all_peers()
        violations = saga_atomicity_violations(saga_log, peers, final=True)
        violations.extend(exactly_once_violations(peers))
        if violations and result.violated_at is None:
            result.violated_at = env.now

    injector.uninstall()
    result.violations = violations
    result.decisions = injector.decisions
    result.sim_time = env.now
    result.submitted = submitted["count"]
    for record in saga_log.records():
        result.saga_states[record.saga_id] = record.state
        if record.elapsed is not None:
            result.saga_elapsed[record.saga_id] = record.elapsed
        if record.state == "committed":
            result.committed += 1
        elif record.state == "compensated":
            result.compensated += 1
        elif record.state == "abandoned":
            result.abandoned += 1
        elif record.state == "dead-lettered":
            result.dead_lettered += 1
    seen_backends = set()
    for peer in fleet.all_peers():
        backend = peer.implementation.backend
        if id(backend) in seen_backends:
            continue
        seen_backends.add(id(backend))
        result.effects_applied += len(backend.effect_log)
    result.fired = injector.fired
    result.skipped = injector.skipped
    return result


# -- shrinking ----------------------------------------------------------------------


def shrink_saga_schedule(
    scenario: SagaCheckScenario,
    schedule: Schedule,
    max_runs: int = 32,
) -> Tuple[Schedule, SagaRunResult, int]:
    """ddmin the fault ops; the oracle is "still violates something"."""
    runs = 0
    best: Optional[SagaRunResult] = None

    def violates(candidate: Schedule) -> Optional[SagaRunResult]:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        outcome = run_saga_schedule(scenario, candidate)
        return outcome if outcome.violations else None

    if schedule.ops:
        bare = Schedule(tiebreak=schedule.tiebreak, ops=(), label=schedule.label)
        outcome = violates(bare)
        if outcome is not None:
            schedule, best = bare, outcome

    kept = list(range(len(schedule.ops)))
    granularity = 2
    while len(kept) >= 2 and runs < max_runs:
        chunk = max(1, len(kept) // granularity)
        reduced = False
        for start in range(0, len(kept), chunk):
            candidate_idx = kept[:start] + kept[start + chunk:]
            if not candidate_idx:
                continue
            candidate = Schedule(
                tiebreak=schedule.tiebreak,
                ops=tuple(schedule.ops[i] for i in candidate_idx),
                label=schedule.label,
            )
            outcome = violates(candidate)
            if outcome is not None:
                kept, best = candidate_idx, outcome
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(kept), granularity * 2)
    minimal = Schedule(
        tiebreak=schedule.tiebreak,
        ops=tuple(schedule.ops[i] for i in kept),
        label=schedule.label,
    )
    if (minimal.tiebreak or {}).get("kind", "fifo") != "fifo" and runs < max_runs:
        fifo = Schedule(tiebreak=None, ops=minimal.ops, label=minimal.label)
        outcome = violates(fifo)
        if outcome is not None:
            minimal, best = fifo, outcome
    if best is None:
        best = run_saga_schedule(scenario, minimal)
        runs += 1
    return minimal, best, runs


# -- repro files --------------------------------------------------------------------


def save_saga_repro(
    path: str,
    scenario: SagaCheckScenario,
    schedule: Schedule,
    result: SagaRunResult,
) -> Dict[str, Any]:
    """Write a replayable saga counterexample file; returns its payload."""
    payload = {
        "format": SAGA_REPRO_FORMAT,
        "scenario": scenario.to_dict(),
        "schedule": schedule.to_dict(),
        "violations": result.violations,
        "violated_at": result.violated_at,
        "decisions": result.decisions,
        "sim_time": result.sim_time,
        "saga_states": result.saga_states,
        "fired": result.fired,
        "digest": result.digest(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_saga_repro(path: str) -> Tuple[SagaCheckScenario, Schedule, Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != SAGA_REPRO_FORMAT:
        raise ValueError(
            f"{path}: not a {SAGA_REPRO_FORMAT} repro file "
            f"(format={payload.get('format')!r})"
        )
    return (
        SagaCheckScenario.from_dict(payload["scenario"]),
        Schedule.from_dict(payload["schedule"]),
        payload,
    )


def replay_saga_repro(path: str) -> Tuple[bool, SagaRunResult, Dict[str, Any]]:
    """Re-execute a saga repro file; True iff the digest matches."""
    scenario, schedule, expected = load_saga_repro(path)
    result = run_saga_schedule(scenario, schedule)
    return result.digest() == expected["digest"], result, expected


# -- the compensation-off self-test -------------------------------------------------


def _decision_near(timeline: Sequence[Tuple[float, int]], at_time: float) -> int:
    last = 0
    for when, count in timeline:
        if when > at_time:
            break
        last = count
    return max(1, last)


def saga_self_test(
    seed: int = 42,
    repro_path: Optional[str] = None,
    max_tries: int = 8,
    time_budget: Optional[float] = None,
) -> Dict[str, Any]:
    """Prove the atomicity audit catches what compensation prevents.

    Runs the loan scenario **with compensation disabled**: a failed saga
    abandons its partial effects (the registered-but-never-reserved loan
    stranded in the CRUD store), which the invariant must flag.  The
    insolvent submissions trip it on the unperturbed baseline already —
    no faults needed, the defect is in the (disabled) recovery logic
    itself — and the found violation must shrink and replay
    byte-identically through a repro file.  If a quiet baseline ever
    slips through, directed orchestrator-crash schedules are tried as a
    fallback.  ``ok`` is True only when a violation was found *and*
    replayed to the same digest.
    """
    scenario = SagaCheckScenario(seed=seed, compensation_enabled=False)
    deadline = (
        time.monotonic() + time_budget if time_budget is not None else None
    )
    baseline = run_saga_schedule(scenario, Schedule(label="baseline"))
    outcome: Dict[str, Any] = {
        "ok": False,
        "seed": seed,
        "tries": 0,
        "baseline_violations": baseline.violations,
    }

    def seal(schedule: Schedule, result: SagaRunResult) -> Dict[str, Any]:
        shrunk, shrunk_result, shrink_runs = (
            shrink_saga_schedule(scenario, schedule)
            if schedule.ops
            else (schedule, result, 0)
        )
        outcome["violations"] = result.violations
        outcome["schedule"] = schedule.describe()
        outcome["shrunk_schedule"] = shrunk.describe()
        outcome["shrunk_violations"] = shrunk_result.violations
        outcome["shrink_runs"] = shrink_runs
        if repro_path:
            save_saga_repro(repro_path, scenario, shrunk, shrunk_result)
            replay_ok, _result, _expected = replay_saga_repro(repro_path)
            outcome["repro_path"] = repro_path
            outcome["replay_ok"] = replay_ok
            outcome["ok"] = replay_ok
        else:
            outcome["ok"] = (
                run_saga_schedule(scenario, shrunk).digest()
                == shrunk_result.digest()
            )
        return outcome

    if baseline.violations:
        return seal(Schedule(label="baseline"), baseline)

    # Fallback: crash the orchestrator at commit-boundary decisions.
    probe_start = scenario.settle
    offsets = (1.0, 2.0, 3.0, 4.0, 1.5, 2.5, 3.5, 4.5)
    for index, offset in enumerate(offsets[:max_tries]):
        if deadline is not None and time.monotonic() > deadline:
            outcome["truncated"] = True
            break
        schedule = Schedule(
            ops=(
                FaultOp(
                    at_decision=_decision_near(
                        baseline.timeline, probe_start + offset
                    ),
                    action="crash",
                    target=ORCHESTRATOR_HOST,
                    duration=3.0,
                    point="pre-commit",
                ),
            ),
            label=f"crash-orchestrator/{index}",
        )
        result = run_saga_schedule(scenario, schedule)
        outcome["tries"] = index + 1
        if result.violations:
            return seal(schedule, result)
    return outcome


# -- random saga schedule exploration ------------------------------------------------


def explore_saga_schedules(
    scenario: Optional[SagaCheckScenario] = None,
    seeds: Sequence[int] = (0, 1, 2),
    schedules_per_seed: int = 10,
    max_ops: int = 4,
    time_budget: Optional[float] = None,
    repro_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Random fault schedules against the saga scenario, atomicity on.

    The saga-flavoured sibling of the main explorer loop: per seed, run
    the unperturbed baseline, then ``schedules_per_seed`` random
    schedules sampled against the fleet's b-peer hosts *plus* the
    orchestrator host — so the sampler crashes the orchestrator
    mid-saga as readily as it crashes coordinators.  The first violating
    run is shrunk and dumped as a replayable repro file.
    """
    if scenario is None:
        scenario = SagaCheckScenario()
    deadline = (
        time.monotonic() + time_budget if time_budget is not None else None
    )
    report: Dict[str, Any] = {
        "clean": True,
        "runs": 0,
        "seeds": list(seeds),
        "schedules_per_seed": schedules_per_seed,
        "truncated": False,
    }
    for seed in seeds:
        per_seed = scenario.replace(seed=seed)
        baseline = run_saga_schedule(per_seed, Schedule(label=f"seed{seed}/baseline"))
        report["runs"] += 1

        def found(schedule: Schedule, result: SagaRunResult) -> Dict[str, Any]:
            shrunk, shrunk_result, shrink_runs = (
                shrink_saga_schedule(per_seed, schedule)
                if schedule.ops
                else (schedule, result, 0)
            )
            report["clean"] = False
            report["runs"] += shrink_runs
            report["seed"] = seed
            report["violations"] = result.violations
            report["schedule"] = schedule.describe()
            report["shrunk_schedule"] = shrunk.describe()
            report["shrunk_violations"] = shrunk_result.violations
            if repro_path:
                save_saga_repro(repro_path, per_seed, shrunk, shrunk_result)
                report["repro_path"] = repro_path
            return report

        if baseline.violations:
            return found(Schedule(label=f"seed{seed}/baseline"), baseline)
        rng = random.Random(seed * 7919 + 13)
        for index in range(schedules_per_seed):
            if deadline is not None and time.monotonic() > deadline:
                report["truncated"] = True
                return report
            schedule = random_schedule(
                rng,
                baseline.hosts,
                baseline.decisions,
                max_ops=max_ops,
                label=f"seed{seed}/{index}",
            )
            result = run_saga_schedule(per_seed, schedule)
            report["runs"] += 1
            if result.violations:
                return found(schedule, result)
    return report


# -- the dead-letter queue demo ------------------------------------------------------


def run_dlq_demo(
    seed: int = 42,
    sagas: int = 3,
    requeue: bool = False,
    outage: float = 20.0,
) -> Dict[str, Any]:
    """Deterministically park sagas in the DLQ; optionally requeue them.

    Every submission is insolvent (``ReserveFunds`` faults), so each
    saga must compensate its registered loan — but every replica of the
    ``CancelLoan`` operation group is crashed for ``outage`` seconds
    before the workload starts.  The forward ``RegisterLoan`` group is a
    *different* set of hosts and keeps committing, so compensation
    exhausts its attempt budget against the dead group and the sagas
    park in the dead-letter queue.  With ``requeue=True`` the demo then
    waits out the outage and requeues every pending entry
    (:meth:`~repro.workflow.saga.SagaOrchestrator.requeue`), after which
    the atomicity audit must be silent and the queue empty.
    """
    from ..workflow.dlq import DeadLetterQueue
    from ..workflow.saga import SagaLog, SagaOrchestrator

    scenario = SagaCheckScenario(
        seed=seed,
        sagas=sagas,
        insolvent_every=1,
        step_timeout=1.0,
        step_budget=2.5,
        compensation_attempts=2,
    )
    config = ScenarioConfig(
        seed=scenario.seed,
        settle=scenario.settle,
        heartbeat_interval=scenario.heartbeat_interval,
        miss_threshold=scenario.miss_threshold,
        replicas=scenario.replicas,
        request_timeout=scenario.step_timeout,
        deadline_budget=scenario.step_budget,
    )
    system = WhisperSystem(config)
    services, fleet = build_loan_fleet(system, scenario.replicas)
    system.settle(scenario.settle)
    env = system.env

    cancel_hosts = [
        peer.node.name
        for peer in services["loan_desk"].group_for("CancelLoan").peers
    ]
    crash_time = env.now + 0.05
    for host_name in cancel_hosts:
        system.failures.crash_for(crash_time, host_name, outage)

    host = system.network.add_host(ORCHESTRATOR_HOST)
    saga_log = SagaLog()
    dlq = DeadLetterQueue()
    orchestrator = SagaOrchestrator(
        host,
        log=saga_log,
        dlq=dlq,
        max_compensation_attempts=scenario.compensation_attempts,
    )
    saga = loan_saga(
        services, timeout=scenario.step_timeout, budget=scenario.step_budget
    )
    orchestrator.register(saga)
    client = system.network.add_host("saga-client")

    def driver():
        for index in range(sagas):
            context = loan_saga_context(scenario, index)
            host.spawn(
                orchestrator.execute(saga, context, saga_id=f"loan-{index:04d}"),
                name=f"saga-loan-{index:04d}",
            )
            yield env.timeout(scenario.saga_period)

    client.spawn(driver(), name="dlq-driver")
    deadline = env.now + outage + 60.0
    while env.now < deadline and (
        len(saga_log.records()) < sagas or saga_log.incomplete()
    ):
        system.run_until(env.now + 1.0)

    parked = [entry.describe() for entry in dlq.entries()]
    result: Dict[str, Any] = {
        "seed": seed,
        "sagas": sagas,
        "outage": outage,
        "cancel_hosts": cancel_hosts,
        "parked": dlq.parked,
        "entries": parked,
        "export": dlq.export(),
        "requeue": requeue,
        "sim_time": env.now,
    }
    if requeue:
        system.run_until(max(env.now, crash_time + outage + 2.0))
        processes = [
            host.spawn(
                orchestrator.requeue(entry.saga_id),
                name=f"requeue-{entry.saga_id}",
            )
            for entry in dlq.pending()
        ]
        guard = env.now + 30.0
        while any(p.is_alive for p in processes) and env.now < guard:
            system.run_until(env.now + 1.0)
        result["entries_after"] = [entry.describe() for entry in dlq.entries()]
        result["export"] = dlq.export()
        result["sim_time"] = env.now
    peers = fleet.all_peers()
    violations = saga_atomicity_violations(saga_log, peers, final=True)
    violations.extend(exactly_once_violations(peers))
    result["pending_after"] = len(dlq.pending())
    result["states"] = {
        record.saga_id: record.state for record in saga_log.records()
    }
    result["violations"] = violations
    return result
