"""Protocol safety invariants, as reusable audit functions + a registry.

Each function inspects live system state and returns human-readable
violation strings (empty list = invariant holds).  They are shared with
the fault campaign's post-run audit (:mod:`repro.core.campaign`); the
schedule checker additionally evaluates them **after every slice** of a
run through a stateful :class:`InvariantRegistry`, which also tracks
cursors for the invariants that are about *trajectories* (per-peer
accepted epochs must never regress) rather than final states.

The invariants:

* **election safety** — every announced epoch is owned by its announcer,
  each peer's announced epochs strictly increase, and no full epoch is
  announced by two peers (at most one coordinator per epoch);
* **epoch monotonicity** — the epoch a peer has *accepted* never
  regresses (a regression means a stale coordinator re-captured it);
* **no stale result** — the proxy never delivers a result under an epoch
  lower than one it already delivered for the same group;
* **exactly-once** — no invocation id is applied more than once across
  all backend effect ledgers (journal-enabled runs only);
* **queue bound** — no member's admission ledger exceeds the configured
  bound;
* **convergence** — after cooldown, at most one live peer claims
  coordination (final check, meaningless mid-fault);
* **eventual rebind** — a post-cooldown probe completes within its
  deadline budget (checked by the explorer, which owns the probe).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..election.epoch import Epoch

__all__ = [
    "announced_epoch_violations",
    "stale_result_violations",
    "effect_totals",
    "exactly_once_violations",
    "queue_bound_violations",
    "convergence_violations",
    "saga_effects",
    "saga_atomicity_violations",
    "autoscale_violations",
    "retirement_violations",
    "breaker_violations",
    "rescache_violations",
    "InvariantRegistry",
]


# -- shared audit functions (also used by the fault campaign) --------------------------


def announced_epoch_violations(peers) -> List[str]:
    """Election safety over the peers' announcement logs."""
    violations: List[str] = []
    seen: Dict[Tuple[int, str], str] = {}
    for peer in peers:
        elector = peer.coordinator_mgr.elector
        previous = None
        for when, epoch in elector.announced:
            if epoch.owner_hex != peer.peer_id.uuid_hex:
                violations.append(
                    f"{peer.name}: announced {epoch} it does not own "
                    f"(t={when:.3f})"
                )
            if previous is not None and not previous < epoch:
                violations.append(
                    f"{peer.name}: announced {epoch} after {previous} "
                    f"(t={when:.3f}, not increasing)"
                )
            previous = epoch
            holder = seen.get(epoch.key())
            if holder is not None and holder != peer.name:
                violations.append(
                    f"epoch {epoch} announced by both {holder} and {peer.name}"
                )
            seen[epoch.key()] = peer.name
    return violations


def stale_result_violations(proxy) -> List[str]:
    """Delivered-result epochs must be monotone per group."""
    violations: List[str] = []
    high: Dict[object, Epoch] = {}
    for group_id, epoch in proxy.result_epoch_log:
        last = high.get(group_id)
        if last is not None and epoch < last:
            violations.append(
                f"proxy delivered result under {epoch} after {last} "
                f"(group {group_id})"
            )
        if last is None or epoch > last:
            high[group_id] = epoch
    return violations


def effect_totals(peers) -> Counter:
    """invocation id -> application count over all distinct backends."""
    totals: Counter = Counter()
    seen_backends = set()
    for peer in peers:
        backend = peer.implementation.backend
        if id(backend) in seen_backends:
            continue
        seen_backends.add(id(backend))
        totals.update(backend.effect_counts())
    return totals


def exactly_once_violations(peers) -> List[str]:
    """No invocation id applied more than once, ledger-wide."""
    return [
        f"invocation {invocation_id} applied {count} times "
        f"(exactly-once violated)"
        for invocation_id, count in sorted(effect_totals(peers).items())
        if count > 1
    ]


def queue_bound_violations(peers, bound: Optional[int]) -> List[str]:
    """No admission ledger entry may exceed the configured queue bound."""
    if bound is None:
        return []
    violations: List[str] = []
    for peer in peers:
        for member, state in peer._member_load.items():
            if state.outstanding > bound:
                violations.append(
                    f"{peer.name}: member {member} has {state.outstanding} "
                    f"outstanding (> bound {bound})"
                )
    return violations


def convergence_violations(peers, group: str = "") -> List[str]:
    """At most one live self-believed coordinator (post-cooldown only).

    ``group`` labels the violation for sharded deployments, where the
    check runs once per federated shard group (each group legitimately
    has its own coordinator).  Left empty for single-group audits so the
    message — and therefore existing repro-file digests — is unchanged.
    """
    claimants = [
        peer.name
        for peer in peers
        if peer.node.up and peer.coordinator_mgr.is_coordinator
    ]
    if len(claimants) > 1:
        where = f" in group {group}" if group else ""
        return [
            f"{len(claimants)} live peers claim coordination "
            f"after cooldown{where}: {claimants}"
        ]
    return []


# -- adaptive capacity -----------------------------------------------------------------


def autoscale_violations(autoscalers) -> List[str]:
    """Replica count within [min, max]; unforced events respect cooldown.

    Checker-forced scale ops (:class:`FaultOp` ``scale-up``/``scale-down``)
    legitimately bypass the cooldown, so only controller-decided events
    count toward the quiescence bound (≤1 per cooldown window).
    """
    violations: List[str] = []
    for controller in autoscalers:
        spec = controller.spec
        active = len(controller.active_peers())
        if not spec.min_replicas <= active <= spec.max_replicas:
            violations.append(
                f"group {controller.group.name}: {active} active replicas "
                f"outside [{spec.min_replicas}, {spec.max_replicas}]"
            )
        previous = None
        for event in controller.events:
            if event.forced:
                continue
            if previous is not None and event.at - previous < spec.cooldown - 1e-9:
                violations.append(
                    f"group {controller.group.name}: scale events at "
                    f"{previous:.3f} and {event.at:.3f} violate the "
                    f"{spec.cooldown:.1f}s cooldown (flapping)"
                )
            previous = event.at
    return violations


def retirement_violations(autoscalers) -> List[str]:
    """No retirement may strand queued, in-flight, or parked work."""
    violations: List[str] = []
    for controller in autoscalers:
        for record in controller.retirements:
            if record.queued_at_exit or record.parked_at_exit or not record.drained:
                violations.append(
                    f"group {controller.group.name}: retired {record.peer} at "
                    f"t={record.at:.3f} with {record.queued_at_exit} queued and "
                    f"{record.parked_at_exit} parked requests stranded"
                )
    return violations


def breaker_violations(proxy) -> List[str]:
    """The breaker never rejects a provably healthy service.

    Auditable form: every closed→open trip must be justified by the
    evidence the spec demands (≥ ``min_calls`` samples at ≥ the failure
    threshold) — a half-open→open re-trip is justified by its failed
    probe — and every rejection must fall inside a not-closed interval.
    """
    violations: List[str] = []
    for breaker in getattr(proxy, "_breakers", {}).values():
        spec = breaker.spec
        for tr in breaker.transitions:
            if tr.target != "open" or tr.source != "closed":
                continue
            rate = tr.failures / tr.calls if tr.calls else 0.0
            if tr.calls < spec.min_calls or rate < spec.failure_threshold:
                violations.append(
                    f"breaker {breaker.scope}: tripped open at t={tr.at:.3f} "
                    f"on {tr.failures}/{tr.calls} failures — below the "
                    f"min_calls={spec.min_calls} / "
                    f"threshold={spec.failure_threshold} evidence bar"
                )
        intervals = breaker.open_intervals(horizon=float("inf"))
        for rejected_at in breaker.rejections:
            if not any(start <= rejected_at <= end for start, end in intervals):
                violations.append(
                    f"breaker {breaker.scope}: rejected a call at "
                    f"t={rejected_at:.3f} while closed (service healthy)"
                )
    return violations


def rescache_violations(proxy) -> List[str]:
    """The cache never serves a fenced-epoch or staleness-bound-busting value."""
    cache = getattr(proxy, "result_cache", None)
    if cache is None:
        return []
    violations: List[str] = []
    if cache.stale_epoch_serves:
        violations.append(
            f"result cache served {cache.stale_epoch_serves} values from a "
            f"fenced epoch"
        )
    bound = cache.spec.staleness_bound
    for serve in cache.serves:
        if serve.age > bound + 1e-9:
            violations.append(
                f"result cache served {serve.key} aged {serve.age:.3f}s at "
                f"t={serve.at:.3f} (> staleness bound {bound:.1f}s)"
            )
        if (
            serve.fence_epoch is not None
            and serve.entry_epoch is not None
            and serve.entry_epoch < serve.fence_epoch
        ):
            violations.append(
                f"result cache served {serve.key} under epoch "
                f"{serve.entry_epoch} at t={serve.at:.3f} despite fence "
                f"{serve.fence_epoch}"
            )
    return violations


# -- saga atomicity --------------------------------------------------------------------


def saga_effects(peers) -> Tuple[Dict[str, Counter], Dict[str, Counter]]:
    """Parse saga-structured invocation ids out of the effect ledgers.

    The orchestrator mints ``saga:<saga_id>:<step>:<fwd|comp>`` keys (see
    :func:`repro.workflow.saga.saga_invocation_id`), so backend effect
    logs carry saga membership.  Returns two maps, forward and
    compensation: ``saga_id -> Counter(step -> application count)``.
    """
    forward: Dict[str, Counter] = {}
    compensation: Dict[str, Counter] = {}
    for invocation_id, count in effect_totals(peers).items():
        if not invocation_id.startswith("saga:"):
            continue
        try:
            saga_id, step, phase = invocation_id[len("saga:"):].rsplit(":", 2)
        except ValueError:
            continue
        if phase == "fwd":
            forward.setdefault(saga_id, Counter())[step] += count
        elif phase == "comp":
            compensation.setdefault(saga_id, Counter())[step] += count
    return forward, compensation


def saga_atomicity_violations(saga_log, peers, final: bool = False) -> List[str]:
    """Every saga is atomic: all committed, or every applied step undone.

    Audits the durable saga log against the backend effect ledgers
    (``saga_log`` duck-types :class:`repro.workflow.saga.SagaLog`; state
    strings are compared literally to avoid a circular import with the
    campaign).  Always checked:

    * no compensation applied more than once (double rollback);
    * a ``committed`` saga has no compensation effects;
    * a ``compensated`` saga has every applied forward step compensated;
    * an ``abandoned`` saga (compensation disabled) with a strict subset
      of its mutating steps applied and not fully compensated stranded
      partial effects — the defect compensation exists to prevent.

    With ``final=True`` (post-cooldown only), a non-terminal saga is
    itself a violation: the orchestrator should have driven it to a
    terminal state once faults drained.  ``dead-lettered`` sagas are
    excused — their incompleteness is explicitly parked in the DLQ.
    """
    violations: List[str] = []
    forward, compensation = saga_effects(peers)
    terminal = ("committed", "compensated", "abandoned", "dead-lettered")
    for record in saga_log.records():
        saga_id = record.saga_id
        applied = forward.get(saga_id, Counter())
        undone = compensation.get(saga_id, Counter())
        for step, count in sorted(undone.items()):
            if count > 1:
                violations.append(
                    f"saga {saga_id}: compensation of {step} applied "
                    f"{count} times (double rollback)"
                )
        if record.state == "committed":
            if undone:
                violations.append(
                    f"saga {saga_id}: committed but steps "
                    f"{sorted(undone)} were compensated"
                )
        elif record.state == "compensated":
            stranded = sorted(set(applied) - set(undone))
            if stranded:
                violations.append(
                    f"saga {saga_id}: compensated but applied steps "
                    f"{stranded} have no compensation effect"
                )
        elif record.state == "abandoned":
            mutating = {
                step.name
                for step in record.steps
                if getattr(step, "mutating", True)
            }
            stranded = sorted(set(applied) - set(undone))
            if stranded and set(applied) != mutating:
                violations.append(
                    f"saga {saga_id}: abandoned with partial effects "
                    f"stranded (applied {sorted(applied)}, "
                    f"never compensated {stranded})"
                )
        if final and record.state not in terminal:
            violations.append(
                f"saga {saga_id}: still {record.state} after cooldown "
                f"(applied {sorted(applied)}, compensated {sorted(undone)})"
            )
    return violations


# -- the stateful registry ----------------------------------------------------------


class InvariantRegistry:
    """Step + final invariant evaluation for one explored run.

    A registry instance is per-run: it carries the accepted-epoch cursors
    that turn per-peer epoch monotonicity from a final-state property
    into a trajectory property (a regression that later self-corrects
    would be invisible to an end-of-run audit).
    """

    def __init__(self, queue_bound: Optional[int] = None, dedup_journal: bool = True):
        self.queue_bound = queue_bound
        self.dedup_journal = dedup_journal
        self._accepted: Dict[str, Epoch] = {}

    def check_step(self, service) -> List[str]:
        """Invariants that must hold at every instant of the run.

        Audits every peer of every federated shard group (epoch keys are
        owner-qualified, so cross-group announcements can never collide);
        for single-group services this is exactly ``service.group.peers``.
        """
        peers = service.all_peers()
        violations = announced_epoch_violations(peers)
        violations.extend(self._accepted_epoch_step(peers))
        violations.extend(stale_result_violations(service.proxy))
        if self.dedup_journal:
            violations.extend(exactly_once_violations(peers))
        violations.extend(queue_bound_violations(peers, self.queue_bound))
        # Adaptive-capacity invariants: all vacuous (empty inputs) unless
        # the scenario enabled autoscale / breaker / result cache.
        autoscalers = getattr(service, "autoscalers", ())
        violations.extend(autoscale_violations(autoscalers))
        violations.extend(retirement_violations(autoscalers))
        violations.extend(breaker_violations(service.proxy))
        violations.extend(rescache_violations(service.proxy))
        return violations

    def check_final(self, service) -> List[str]:
        """Invariants that only make sense once the faults have drained.

        Convergence is per shard group: each federated group elects its
        own coordinator, so "at most one claimant" applies within each
        group, never across them.
        """
        groups = service.all_groups()
        if len(groups) == 1:
            return convergence_violations(groups[0].peers)
        violations: List[str] = []
        for group in groups:
            violations.extend(convergence_violations(group.peers, group=group.name))
        return violations

    def _accepted_epoch_step(self, peers) -> List[str]:
        violations: List[str] = []
        for peer in peers:
            current = peer.coordinator_mgr.epoch
            last = self._accepted.get(peer.name)
            if last is not None and current < last:
                violations.append(
                    f"{peer.name}: accepted epoch regressed from {last} "
                    f"to {current}"
                )
            if last is None or current > last:
                self._accepted[peer.name] = current
        return violations
