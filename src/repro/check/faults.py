"""Decision-point fault injection.

The :class:`DecisionFaultInjector` turns a schedule's fault ops into
actual failures by observing the protocol's **decision points**:

* ``pre-send`` — a message involving a watched host is about to leave
  its source (network hook);
* ``pre-deliver`` — such a message is about to be handed to its
  destination, after the latency delay (network hook);
* ``pre-commit`` — a b-peer is about to apply a request's side effect
  (the :attr:`~repro.core.bpeer.BPeer.pre_commit_hook`).

Every observed decision increments one global counter; an op armed for
``at_decision`` fires at the first matching decision whose index reaches
it.  ``drop`` consumes the decision (the message vanishes, exercising
loss at an exact protocol step); ``crash``/``partition`` mutate the world
through the system's :class:`~repro.simnet.failure.FailureInjector` so
the usual failure log and alternation audit cover injected faults too.
Coordinator-targeted ops resolve their victim **at fire time** — the
live peer currently claiming coordination with the highest epoch — which
is what lets a two-op schedule depose a coordinator and then kill its
successor without naming either in advance.

All faults are bounded: crashes restart and partitions heal after the
op's ``duration``, so the post-schedule cooldown can always converge.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..simnet.message import Message
from .schedule import FaultOp

__all__ = ["DecisionFaultInjector"]


class DecisionFaultInjector:
    """Fires one schedule's fault ops at protocol decision points."""

    def __init__(self, system, service, ops: Sequence[FaultOp]):
        self.system = system
        self.service = service
        #: Hosts whose traffic defines the decision space: the b-peer
        #: replicas across every federated shard group.  Probe/client and
        #: rendezvous chatter that never touches a replica is not a
        #: protocol decision worth perturbing.
        self.watched = {peer.node.name for peer in service.all_peers()}
        self._pending: List[FaultOp] = sorted(ops, key=lambda op: op.at_decision)
        #: Global decision counter (1-based after the first decision).
        self.decisions = 0
        #: Ops that actually fired: ``{op, decision, time, victim}``.
        self.fired: List[Dict[str, Any]] = []
        #: Ops that could not fire (no live coordinator to target).
        self.skipped: List[Dict[str, Any]] = []
        self._installed = False

    # -- wiring ------------------------------------------------------------------------

    def install(self) -> None:
        if self._installed:
            return
        self.system.network.add_hook(self._network_hook)
        for peer in self.service.all_peers():
            peer.pre_commit_hook = self._pre_commit_hook
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        self.system.network.remove_hook(self._network_hook)
        for peer in self.service.all_peers():
            peer.pre_commit_hook = None
        self._installed = False

    @property
    def exhausted(self) -> bool:
        """Every armed op has fired (or been skipped)."""
        return not self._pending

    # -- decision points ---------------------------------------------------------------

    def _network_hook(self, point: str, message: Message) -> Optional[str]:
        if message.src[0] not in self.watched and message.dst[0] not in self.watched:
            return None
        return self._advance(point)

    def _pre_commit_hook(self, peer, request) -> None:
        self._advance("pre-commit")

    def _advance(self, point: str) -> Optional[str]:
        self.decisions += 1
        if not self._pending:
            return None
        to_fire: List[FaultOp] = []
        still_armed: List[FaultOp] = []
        for op in self._pending:
            if op.at_decision <= self.decisions and op.point in ("any", point):
                to_fire.append(op)
            else:
                still_armed.append(op)
        # Disarm *before* firing: a scale-up spawns a peer whose joins and
        # publishes synchronously re-enter these hooks, and a still-armed
        # op would double-fire.
        self._pending = still_armed
        verdict: Optional[str] = None
        for op in to_fire:
            if self._fire(op) == "drop":
                verdict = "drop"
        return verdict

    # -- firing ------------------------------------------------------------------------

    def _fire(self, op: FaultOp) -> Optional[str]:
        now = self.system.env.now
        if op.action == "drop":
            self._record(op, victim="<message>")
            return "drop"
        if op.action == "partition-region":
            self.system.failures.partition_region_at(
                now, op.target, duration=op.duration
            )
            self._record(op, victim=f"region:{op.target}")
            return None
        if op.action in ("scale-up", "scale-down"):
            # Drive the autoscaling controller directly (bypassing its
            # cooldown, never its [min, max] bounds) so scale transitions
            # race the schedule's other faults.  Capacity scenarios only;
            # recorded as skipped when the deployment has no controller
            # or the bound/drain state refuses the transition.
            controller = next(iter(getattr(self.service, "autoscalers", ())), None)
            accepted = False
            if controller is not None:
                if op.action == "scale-up":
                    accepted = controller.force_scale_up()
                else:
                    accepted = controller.force_scale_down()
            if accepted:
                self._record(op, victim=f"group:{controller.group.name}")
            else:
                self.skipped.append(
                    {"op": op.to_dict(), "decision": self.decisions, "time": now}
                )
            return None
        if op.action in ("crash", "partition"):
            victim = op.target
        else:
            peer = self._resolve_coordinator()
            if peer is None:
                self.skipped.append(
                    {"op": op.to_dict(), "decision": self.decisions, "time": now}
                )
                return None
            victim = peer.node.name
        if op.action.startswith("crash"):
            self.system.failures.crash_for(now, victim, op.duration)
        else:
            others = [
                name for name in self.system.network.hosts if name != victim
            ]
            self.system.failures.partition_at(
                now, [victim], others, duration=op.duration
            )
        self._record(op, victim=victim)
        return None

    def _resolve_coordinator(self):
        """The live peer claiming coordination under the highest epoch.

        In sharded deployments every group has a coordinator; the highest
        epoch across all of them is still "the most recently legitimate
        authority" — directed schedules that must hit one specific shard
        group name its hosts with ``crash``/``partition`` targets instead.
        """
        best = None
        for peer in self.service.all_peers():
            if not (peer.node.up and peer.coordinator_mgr.is_coordinator):
                continue
            if best is None or peer.coordinator_mgr.epoch > best.coordinator_mgr.epoch:
                best = peer
        return best

    def _record(self, op: FaultOp, victim: str) -> None:
        self.fired.append(
            {
                "op": op.to_dict(),
                "decision": self.decisions,
                "time": self.system.env.now,
                "victim": victim,
            }
        )
