"""Same-timestamp orderings for schedule exploration.

A :class:`~repro.simnet.environment.TiebreakPolicy` decides how events
scheduled for the same instant (and the same urgency class) are ordered
relative to one another.  The environment's default is FIFO; the policies
here replace that single ordering with a *chosen* one, which is how the
checker samples many legal interleavings of the same scenario:

* :class:`FifoTiebreak` — the identity policy (explicit baseline);
* :class:`SeededShuffleTiebreak` — every event draws a random rank from a
  private seeded stream, uniformly permuting each same-timestamp class;
* :class:`AdversarialDelayTiebreak` — events scheduled by a *victim*
  process (matched by substring on the process name) sort after all of
  their same-timestamp peers, modelling a consistently slow or
  starved participant.

All three are pure functions of (policy state, scheduling sequence), so a
run under any of them is exactly as deterministic and replayable as a
FIFO run: rebuild the policy from its spec and the same schedule falls
out.  Specs are plain JSON dicts (``{"kind": "shuffle", "seed": 7}``) so
repro files can round-trip them.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from ..simnet.environment import Environment, TiebreakPolicy
from ..simnet.events import Event

__all__ = [
    "FifoTiebreak",
    "SeededShuffleTiebreak",
    "AdversarialDelayTiebreak",
    "build_tiebreak",
]

#: Shuffle ranks are drawn below this bound; the adversarial policy uses
#: the bound itself so a delayed event outranks every shuffled peer.
_RANK_BOUND = 1 << 16


class FifoTiebreak(TiebreakPolicy):
    """Scheduling order (the environment default, made explicit)."""

    kind = "fifo"

    def key(self, env: Environment, urgent: bool, event: Event) -> int:
        return 0

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind}


class SeededShuffleTiebreak(TiebreakPolicy):
    """Uniformly permute every same-timestamp class of events.

    Each scheduled event draws its rank from a private
    :class:`random.Random` stream — independent of the simulation's
    :class:`~repro.simnet.rng.RngRegistry`, so installing the policy
    perturbs *ordering only*, never the payload randomness (latencies,
    churn samples) of the run it perturbs.
    """

    kind = "shuffle"

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._rng = random.Random(f"tiebreak-shuffle:{self.seed}")

    def key(self, env: Environment, urgent: bool, event: Event) -> int:
        return self._rng.randrange(_RANK_BOUND)

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind, "seed": self.seed}


class AdversarialDelayTiebreak(TiebreakPolicy):
    """Starve one participant: its events always lose the tiebreak.

    ``victim`` is matched as a substring of the *scheduling* process name
    (processes spawned by a node default to ``"<host>/proc"``, so a host
    name tags everything that host does).  Events scheduled outside any
    process (timer callbacks, injected stimuli) keep FIFO order.
    """

    kind = "adversarial"

    def __init__(self, victim: str):
        if not victim:
            raise ValueError("adversarial tiebreak needs a victim substring")
        self.victim = victim

    def key(self, env: Environment, urgent: bool, event: Event) -> int:
        process = env.active_process
        if process is not None and process.name and self.victim in process.name:
            return _RANK_BOUND
        return 0

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind, "victim": self.victim}


def build_tiebreak(spec: Optional[Dict[str, Any]]) -> Optional[TiebreakPolicy]:
    """Rebuild a policy from its JSON spec (``None``/``fifo`` -> ``None``).

    Returning ``None`` for FIFO keeps the environment on its zero-cost
    default path; a fresh policy instance is built otherwise so replays
    never share mutable stream state with the run that produced the spec.
    """
    if spec is None:
        return None
    kind = spec.get("kind", "fifo")
    if kind == "fifo":
        return None
    if kind == "shuffle":
        return SeededShuffleTiebreak(spec["seed"])
    if kind == "adversarial":
        return AdversarialDelayTiebreak(spec["victim"])
    raise ValueError(f"unknown tiebreak kind {kind!r}")
