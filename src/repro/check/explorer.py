"""The exploration loop: sample schedules, shrink violations, replay them.

One **run** = one :class:`CheckScenario` (a small enroll deployment with
a mutating workload and an open-loop probe driver) executed under one
:class:`~repro.check.schedule.Schedule` (tiebreak perturbation + fault
ops).  The run advances in short slices; after every slice the
:class:`~repro.check.invariants.InvariantRegistry` re-audits the system,
so a transient violation (a stale delivery that later self-corrects) is
caught at the slice it happens, not lost to an end-of-run audit.

On a violation the explorer shrinks the schedule — ddmin over the fault
ops, then an attempt to drop the tiebreak perturbation — to a minimal
counterexample, dumps a **repro file** (scenario + schedule + expected
violations + a run digest), and re-executes it to prove the file
replays byte-identically.  ``python -m repro check --replay FILE`` does
the same re-execution standalone.

:func:`self_test` is the checker's own regression test: it disables
epoch fencing (``ScenarioConfig.epoch_fencing=False``), drives directed
depose-then-kill schedules until an invariant trips, and requires the
find/shrink/replay pipeline to succeed end to end — proof the invariants
have teeth, not just that quiet runs stay quiet.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..backend.datasets import student_database
from ..backend.services import student_enrollment
from ..core.autoscale import AutoscaleSpec
from ..core.breaker import BreakerSpec
from ..core.config import ScenarioConfig
from ..core.rescache import ResultCacheSpec
from ..core.errors import WhisperError
from ..core.system import WhisperSystem
from ..core.topology import Topology
from ..simnet.events import Interrupt
from ..soap.fault import SoapFault
from ..wsdl.samples import student_admin_wsdl
from .faults import DecisionFaultInjector
from .invariants import InvariantRegistry
from .schedule import FaultOp, Schedule, random_schedule
from .tiebreak import build_tiebreak

__all__ = [
    "CheckScenario",
    "RunResult",
    "ExploreReport",
    "ScheduleExplorer",
    "run_schedule",
    "shrink_schedule",
    "save_repro",
    "load_repro",
    "replay_repro",
    "self_test",
    "REPRO_FORMAT",
]

REPRO_FORMAT = "whisper-check/1"


@dataclass(frozen=True)
class CheckScenario:
    """The fixed half of an explored run (the schedule is the other half).

    Small on purpose: three replicas and a dozen probes already contain
    every protocol interaction the invariants watch (election, dispatch,
    journalling, rebind), and a run must stay cheap — the explorer's
    power comes from how many orderings it visits, not from how big any
    one of them is.  ``load_sharing`` stays off so the queue-bound audit
    sees the coordinator-only admission ledger the bound governs.
    ``shards`` and ``regions`` are mutually exclusive axes (the system
    does not support sharded multi-region deployments).
    """

    seed: int = 0
    replicas: int = 3
    students: int = 40
    queue_bound: Optional[int] = 4
    heartbeat_interval: float = 0.5
    miss_threshold: int = 2
    settle: float = 6.0
    probe_duration: float = 12.0
    probe_period: float = 0.4
    probe_timeout: float = 1.5
    probe_budget: float = 8.0
    cooldown: float = 12.0
    #: Invariants are re-audited every this many simulated seconds.
    slice_seconds: float = 0.5
    dedup_journal: bool = True
    epoch_fencing: bool = True
    #: Federated shard groups for the enroll service; 1 keeps the
    #: deployment (and every existing repro file's digest) unchanged.
    shards: int = 1
    #: WAN regions the deployment spans; 1 keeps the flat single LAN.
    #: With more, the group is *span*-placed — one election domain whose
    #: replicas straddle the WAN — and schedules gain whole-region
    #: isolation ops, so election safety and exactly-once are audited
    #: across WAN splits and heals.
    regions: int = 1
    #: Adaptive-capacity exploration: the deployment gains an autoscaling
    #: controller, a proxy circuit breaker, and the semantic result cache,
    #: and schedules gain forced ``scale-up``/``scale-down`` ops — so
    #: retirements, breaker trips, and cache fencing race crashes,
    #: partitions, and drops while the capacity invariants (drained
    #: retirement, justified breaker opens, zero fenced-epoch serves)
    #: are audited every slice.  ``False`` keeps the deployment (and
    #: every existing repro file's digest) unchanged.
    capacity: bool = False

    def region_names(self) -> List[str]:
        return [f"r{index}" for index in range(self.regions)]

    def replace(self, **changes: Any) -> "CheckScenario":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CheckScenario":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass
class RunResult:
    """Everything one run produced, digestible for replay comparison."""

    violations: List[str] = field(default_factory=list)
    violated_at: Optional[float] = None
    decisions: int = 0
    sim_time: float = 0.0
    probes_ok: int = 0
    probes_failed: int = 0
    effects_applied: int = 0
    fired: List[Dict[str, Any]] = field(default_factory=list)
    skipped: List[Dict[str, Any]] = field(default_factory=list)
    #: ``(sim_time, decision_count)`` at every slice boundary — the map
    #: directed schedules use to aim an op at a wall-clock moment.
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    hosts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def digest(self) -> str:
        """Fingerprint of the observable outcome; replays must match it."""
        payload = {
            "violations": self.violations,
            "violated_at": self.violated_at,
            "decisions": self.decisions,
            "sim_time": self.sim_time,
            "probes_ok": self.probes_ok,
            "probes_failed": self.probes_failed,
            "effects_applied": self.effects_applied,
            "fired": self.fired,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- one run -----------------------------------------------------------------------


def _build_system(scenario: CheckScenario):
    """Deploy the check workload: §3's mutating EnrollStudent service,
    one independent operational store per replica (so the effect ledgers
    attribute every application unambiguously).  With ``shards > 1`` the
    same workload runs against federated shard groups — each a full
    replica set with its own stores — which is what lets a schedule
    crash one whole shard group and audit that exactly-once and election
    safety survive the ring handoff.  With ``regions > 1`` the group is
    instead *span*-placed over a WAN mesh (one election domain, replicas
    round-robin across regions), so region-isolation schedules audit the
    same invariants across WAN splits and heals."""
    if scenario.shards > 1 and scenario.regions > 1:
        raise ValueError("shards and regions cannot both exceed 1")
    if scenario.capacity and (scenario.shards > 1 or scenario.regions > 1):
        raise ValueError("capacity scenarios require shards == regions == 1")
    topology = (
        Topology.mesh(scenario.region_names(), placement="span")
        if scenario.regions > 1
        else None
    )
    capacity_specs: Dict[str, Any] = {}
    if scenario.capacity:
        capacity_specs = dict(
            # Short cooldown/interval so forced and policy-driven scale
            # transitions both land inside the probe window; the breaker
            # re-closes well before the post-cooldown final probes, so a
            # trip mid-schedule never dooms eventual rebind.
            autoscale=AutoscaleSpec(
                min_replicas=2,
                max_replicas=scenario.replicas + 2,
                cooldown=2.0,
                interval=0.5,
                drain_timeout=8.0,
            ),
            circuit_breaker=BreakerSpec(
                window=8,
                min_calls=4,
                failure_threshold=0.75,
                open_duration=1.0,
            ),
            result_cache=ResultCacheSpec(capacity=128, staleness_bound=2.0),
        )
    config = ScenarioConfig(
        seed=scenario.seed,
        settle=scenario.settle,
        heartbeat_interval=scenario.heartbeat_interval,
        miss_threshold=scenario.miss_threshold,
        epoch_fencing=scenario.epoch_fencing,
        queue_bound=scenario.queue_bound,
        dedup_journal=scenario.dedup_journal,
        replicas=scenario.replicas,
        students=scenario.students,
        request_timeout=scenario.probe_timeout,
        deadline_budget=scenario.probe_budget,
        shards=scenario.shards,
        topology=topology,
        **capacity_specs,
    )
    system = WhisperSystem(config)
    if scenario.shards > 1:
        implementations = lambda shard: [  # noqa: E731 — per-shard stores
            student_enrollment(student_database(scenario.students))
            for _ in range(scenario.replicas)
        ]
    else:
        implementations = [
            student_enrollment(student_database(scenario.students))
            for _ in range(scenario.replicas)
        ]
    service = system.deploy_service(
        student_admin_wsdl(),
        {"EnrollStudent": implementations},
        web_host="web0",
        replica_factory=(
            (
                lambda index: student_enrollment(
                    student_database(scenario.students)
                )
            )
            if scenario.capacity
            else None
        ),
    )
    return system, service


def run_schedule(scenario: CheckScenario, schedule: Schedule) -> RunResult:
    """Execute one (scenario, schedule) pair and audit it slice by slice."""
    system, service = _build_system(scenario)
    # Install the tiebreak before any perturbable traffic: deployment
    # events are already queued, but they precede the faulted window and
    # replays rebuild them identically either way.
    system.env.tiebreak = build_tiebreak(schedule.tiebreak)
    system.settle(scenario.settle)

    injector = DecisionFaultInjector(system, service, schedule.ops)
    injector.install()
    registry = InvariantRegistry(
        queue_bound=scenario.queue_bound, dedup_journal=scenario.dedup_journal
    )
    result = RunResult(hosts=sorted(injector.watched))

    env = system.env
    node = system.network.add_host("check-client")
    probes = {"ok": 0, "failed": 0}

    def one_probe(sequence: int):
        try:
            yield from service.invoke(
                "EnrollStudent",
                {
                    "ID": f"S{sequence % scenario.students + 1:05d}",
                    "course": f"C{sequence:05d}",
                },
                timeout=scenario.probe_timeout,
                budget=scenario.probe_budget,
            )
        except (SoapFault, WhisperError):
            probes["failed"] += 1
        except Interrupt:
            return
        else:
            probes["ok"] += 1

    def driver():
        clock = 0.0
        sequence = 0
        while clock < scenario.probe_duration:
            node.spawn(one_probe(sequence), name=f"check-probe-{sequence}")
            sequence += 1
            yield env.timeout(scenario.probe_period)
            clock += scenario.probe_period

    node.spawn(driver(), name="check-driver")

    horizon = env.now + scenario.probe_duration + scenario.cooldown
    violations: List[str] = []
    while env.now < horizon:
        system.run_until(min(env.now + scenario.slice_seconds, horizon))
        result.timeline.append((env.now, injector.decisions))
        violations = registry.check_step(service)
        if violations:
            result.violated_at = env.now
            break
        # Ops fire at decision points, which can land deep inside the
        # cooldown window: convergence needs a full quiet cooldown AFTER
        # the last fault heals (membership anti-entropy alone takes an
        # announce period, then re-affirmation another watchdog tick), so
        # stretch the horizon accordingly.  Fired times are part of the
        # replayed trajectory, so the stretch is exactly reproducible.
        last_heal = max(
            (f["time"] + f["op"]["duration"] for f in injector.fired),
            default=0.0,
        )
        horizon = max(horizon, last_heal + scenario.cooldown)

    if not violations:
        violations = registry.check_final(service)
        if not violations:
            violations = _eventual_rebind_violations(
                system, service, node, scenario
            )
        if violations:
            result.violated_at = env.now

    injector.uninstall()
    result.violations = violations
    result.decisions = injector.decisions
    result.sim_time = env.now
    result.probes_ok = probes["ok"]
    result.probes_failed = probes["failed"]
    result.effects_applied = sum(
        len(peer.implementation.backend.effect_log)
        for peer in service.all_peers()
    )
    result.fired = injector.fired
    result.skipped = injector.skipped
    return result


def _eventual_rebind_violations(system, service, node, scenario) -> List[str]:
    """Post-cooldown liveness: one probe must land within its budget.

    Every schedule is bounded (crashes restart, partitions heal), so
    after the cooldown the group must have re-elected and the proxy must
    be able to rebind and serve — if it cannot, recovery is broken even
    though no safety invariant tripped.
    """
    outcome: Dict[str, Any] = {}
    started = system.env.now

    def probe():
        try:
            yield from service.invoke(
                "EnrollStudent",
                {"ID": "S00001", "course": "C-rebind-final"},
                timeout=scenario.probe_timeout,
                budget=scenario.probe_budget,
            )
        except (SoapFault, WhisperError) as exc:
            outcome["error"] = f"{type(exc).__name__}: {exc}"

    system.env.run(until=node.spawn(probe(), name="check-rebind-probe"))
    elapsed = system.env.now - started
    if "error" in outcome:
        return [
            f"eventual-rebind: post-cooldown probe failed after "
            f"{elapsed:.3f}s ({outcome['error']})"
        ]
    if elapsed > scenario.probe_budget:
        return [
            f"eventual-rebind: post-cooldown probe took {elapsed:.3f}s "
            f"(> budget {scenario.probe_budget:.3f}s)"
        ]
    return []


# -- shrinking ----------------------------------------------------------------------


def shrink_schedule(
    scenario: CheckScenario,
    schedule: Schedule,
    max_runs: int = 48,
) -> Tuple[Schedule, RunResult, int]:
    """ddmin the fault ops, then try dropping the tiebreak perturbation.

    The oracle is "the reduced schedule still violates *some* invariant"
    — a reduced schedule that trips a different checker is still a valid
    (and smaller) counterexample.  Returns the minimal schedule, its run
    result, and how many shrink runs were spent.
    """
    runs = 0
    best: Optional[RunResult] = None

    def violates(candidate: Schedule) -> Optional[RunResult]:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        outcome = run_schedule(scenario, candidate)
        return outcome if outcome.violations else None

    # Maybe the tiebreak alone already breaks it (no faults needed).
    if schedule.ops:
        bare = Schedule(tiebreak=schedule.tiebreak, ops=(), label=schedule.label)
        outcome = violates(bare)
        if outcome is not None:
            schedule, best = bare, outcome

    # ddmin over the op list: remove progressively smaller chunks.
    kept = list(range(len(schedule.ops)))
    granularity = 2
    while len(kept) >= 2 and runs < max_runs:
        chunk = max(1, len(kept) // granularity)
        reduced = False
        for start in range(0, len(kept), chunk):
            candidate_idx = kept[:start] + kept[start + chunk:]
            if not candidate_idx:
                continue
            candidate = Schedule(
                tiebreak=schedule.tiebreak,
                ops=tuple(schedule.ops[i] for i in candidate_idx),
                label=schedule.label,
            )
            outcome = violates(candidate)
            if outcome is not None:
                kept, best = candidate_idx, outcome
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(kept), granularity * 2)
    minimal = Schedule(
        tiebreak=schedule.tiebreak,
        ops=tuple(schedule.ops[i] for i in kept),
        label=schedule.label,
    )

    # A counterexample that survives FIFO ordering is simpler still.
    if (minimal.tiebreak or {}).get("kind", "fifo") != "fifo" and runs < max_runs:
        fifo = Schedule(tiebreak=None, ops=minimal.ops, label=minimal.label)
        outcome = violates(fifo)
        if outcome is not None:
            minimal, best = fifo, outcome

    if best is None:
        # Nothing smaller violated (or the budget ran out on the first
        # probes): re-run the original to pin down its result.
        best = run_schedule(scenario, minimal)
        runs += 1
    return minimal, best, runs


# -- repro files --------------------------------------------------------------------


def save_repro(
    path: str,
    scenario: CheckScenario,
    schedule: Schedule,
    result: RunResult,
) -> Dict[str, Any]:
    """Write a replayable counterexample file; returns its payload."""
    payload = {
        "format": REPRO_FORMAT,
        "scenario": scenario.to_dict(),
        "schedule": schedule.to_dict(),
        "violations": result.violations,
        "violated_at": result.violated_at,
        "decisions": result.decisions,
        "sim_time": result.sim_time,
        "fired": result.fired,
        "digest": result.digest(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_repro(path: str) -> Tuple[CheckScenario, Schedule, Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"{path}: not a {REPRO_FORMAT} repro file "
            f"(format={payload.get('format')!r})"
        )
    return (
        CheckScenario.from_dict(payload["scenario"]),
        Schedule.from_dict(payload["schedule"]),
        payload,
    )


def replay_repro(path: str) -> Tuple[bool, RunResult, Dict[str, Any]]:
    """Re-execute a repro file; True iff the outcome digest matches."""
    scenario, schedule, expected = load_repro(path)
    result = run_schedule(scenario, schedule)
    return result.digest() == expected["digest"], result, expected


# -- the explorer -------------------------------------------------------------------


@dataclass
class ExploreReport:
    """What one ``repro check`` invocation did and found."""

    seeds: List[int] = field(default_factory=list)
    schedules_per_seed: int = 0
    runs: int = 0
    shrink_runs: int = 0
    truncated: bool = False
    #: Set when a violation was found: seed, schedules, violations, paths.
    found: Optional[Dict[str, Any]] = None

    @property
    def clean(self) -> bool:
        return self.found is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seeds": list(self.seeds),
            "schedules_per_seed": self.schedules_per_seed,
            "runs": self.runs,
            "shrink_runs": self.shrink_runs,
            "truncated": self.truncated,
            "clean": self.clean,
            "found": self.found,
        }

    def format(self) -> str:
        lines = [
            f"schedule exploration — seeds {self.seeds}, "
            f"{self.schedules_per_seed} schedules/seed, {self.runs} runs"
            + (" (wall-clock budget hit)" if self.truncated else ""),
        ]
        if self.found is None:
            lines.append("  invariants    : all hold on every explored schedule")
            return "\n".join(lines)
        found = self.found
        lines.append(
            f"  COUNTEREXAMPLE (seed={found['seed']}, "
            f"schedule #{found['schedule_index']})"
        )
        lines.append(f"  schedule      : {found['schedule']}")
        lines.append(
            f"  shrunk to     : {found['shrunk_schedule']} "
            f"({self.shrink_runs} shrink runs)"
        )
        for violation in found["violations"]:
            lines.append(f"    - {violation}")
        if found.get("repro_path"):
            replay = "verified" if found.get("replay_ok") else "FAILED TO REPLAY"
            lines.append(f"  repro file    : {found['repro_path']} ({replay})")
        return "\n".join(lines)


class ScheduleExplorer:
    """Run many perturbed schedules per root seed; shrink what breaks."""

    def __init__(
        self,
        scenario: CheckScenario,
        seeds: Sequence[int],
        schedules_per_seed: int,
        max_ops: int = 4,
        time_budget: Optional[float] = None,
        repro_path: Optional[str] = None,
        shrink: bool = True,
    ):
        self.scenario = scenario
        self.seeds = list(seeds)
        self.schedules_per_seed = schedules_per_seed
        self.max_ops = max_ops
        self.time_budget = time_budget
        self.repro_path = repro_path
        self.shrink = shrink

    def explore(self) -> ExploreReport:
        report = ExploreReport(
            seeds=self.seeds, schedules_per_seed=self.schedules_per_seed
        )
        deadline = (
            time.monotonic() + self.time_budget
            if self.time_budget is not None
            else None
        )
        for seed in self.seeds:
            scenario = self.scenario.replace(seed=seed)
            baseline = run_schedule(scenario, Schedule(label="baseline"))
            report.runs += 1
            if baseline.violations:
                # The unperturbed run already violates: report it as a
                # counterexample with an empty schedule (nothing to shrink).
                self._record_found(
                    report, scenario, Schedule(label="baseline"), baseline,
                    schedule_index=-1,
                )
                return report
            rng = random.Random(f"check-schedules:{seed}")
            for index in range(self.schedules_per_seed):
                if deadline is not None and time.monotonic() > deadline:
                    report.truncated = True
                    return report
                schedule = random_schedule(
                    rng,
                    baseline.hosts,
                    decision_horizon=baseline.decisions,
                    max_ops=self.max_ops,
                    label=f"seed{seed}/{index}",
                    regions=(
                        scenario.region_names()
                        if scenario.regions > 1
                        else ()
                    ),
                    scale_events=scenario.capacity,
                )
                result = run_schedule(scenario, schedule)
                report.runs += 1
                if result.violations:
                    self._finish_found(report, scenario, schedule, result, index)
                    return report
        return report

    def _finish_found(
        self,
        report: ExploreReport,
        scenario: CheckScenario,
        schedule: Schedule,
        result: RunResult,
        schedule_index: int,
    ) -> None:
        shrunk, shrunk_result = schedule, result
        if self.shrink and schedule.ops:
            shrunk, shrunk_result, shrink_runs = shrink_schedule(
                scenario, schedule
            )
            report.shrink_runs = shrink_runs
            report.runs += shrink_runs
        self._record_found(
            report, scenario, schedule, result,
            schedule_index=schedule_index,
            shrunk=shrunk, shrunk_result=shrunk_result,
        )

    def _record_found(
        self,
        report: ExploreReport,
        scenario: CheckScenario,
        schedule: Schedule,
        result: RunResult,
        schedule_index: int,
        shrunk: Optional[Schedule] = None,
        shrunk_result: Optional[RunResult] = None,
    ) -> None:
        shrunk = shrunk if shrunk is not None else schedule
        shrunk_result = shrunk_result if shrunk_result is not None else result
        found: Dict[str, Any] = {
            "seed": scenario.seed,
            "schedule_index": schedule_index,
            "schedule": schedule.describe(),
            "shrunk_schedule": shrunk.describe(),
            "violations": shrunk_result.violations,
            "violated_at": shrunk_result.violated_at,
            "original_violations": result.violations,
        }
        if self.repro_path:
            save_repro(self.repro_path, scenario, shrunk, shrunk_result)
            replay_ok, _replayed, _expected = replay_repro(self.repro_path)
            found["repro_path"] = self.repro_path
            found["replay_ok"] = replay_ok
            report.runs += 1
        report.found = found


# -- the fencing-off self-test ------------------------------------------------------


def _decision_near(timeline: Sequence[Tuple[float, int]], at_time: float) -> int:
    """The decision count just before ``at_time`` on a baseline timeline."""
    last = 0
    for when, count in timeline:
        if when > at_time:
            break
        last = count
    return max(1, last)


def _depose_then_kill(
    baseline: RunResult,
    probe_start: float,
    partition_offset: float,
    kill_gap: float,
    tiebreak_seed: Optional[int],
) -> Schedule:
    """The canonical split-brain schedule the fencing exists to stop.

    Partition the coordinator (the group elects a successor and the proxy
    starts delivering the successor's higher-epoch results), heal, then
    kill the successor: the unfenced proxy re-resolves first-answer-wins
    and can bind the deposed coordinator's stale claim, delivering an
    old-epoch result after a newer one.
    """
    partition_duration = 4.0
    partition_at = probe_start + partition_offset
    kill_at = partition_at + partition_duration + kill_gap
    tiebreak = (
        {"kind": "shuffle", "seed": tiebreak_seed}
        if tiebreak_seed is not None
        else None
    )
    return Schedule(
        tiebreak=tiebreak,
        ops=(
            FaultOp(
                at_decision=_decision_near(baseline.timeline, partition_at),
                action="partition-coordinator",
                duration=partition_duration,
            ),
            FaultOp(
                at_decision=_decision_near(baseline.timeline, kill_at),
                action="crash-coordinator",
                duration=6.0,
            ),
        ),
        label="depose-then-kill",
    )


def self_test(
    seed: int = 42,
    repro_path: Optional[str] = None,
    max_tries: int = 36,
    time_budget: Optional[float] = None,
) -> Dict[str, Any]:
    """Prove the checker catches what fencing prevents.

    Runs the scenario **with epoch fencing disabled** under directed
    depose-then-kill schedules (varying timing offsets and shuffle
    seeds) until an invariant trips, then requires shrink + repro-file
    replay to succeed.  Returns a structured outcome; ``ok`` is True only
    if a violation was found, shrunk, and replayed byte-identically.
    """
    scenario = CheckScenario(seed=seed, epoch_fencing=False)
    deadline = (
        time.monotonic() + time_budget if time_budget is not None else None
    )
    baseline = run_schedule(scenario, Schedule(label="baseline"))
    outcome: Dict[str, Any] = {
        "ok": False,
        "seed": seed,
        "tries": 0,
        "baseline_violations": baseline.violations,
    }
    if baseline.violations:
        # Even the unperturbed unfenced run violates — that still proves
        # the invariants bite, but there is no schedule to shrink.
        outcome["ok"] = True
        outcome["violations"] = baseline.violations
        outcome["schedule"] = "baseline (no faults needed)"
        return outcome

    probe_start = scenario.settle
    partition_offsets = (1.0, 1.6, 2.2, 0.6)
    kill_gaps = (0.8, 1.6)
    tiebreak_seeds: Tuple[Optional[int], ...] = (None, 1, 2, 3, 5, 8, 13, 21, 34)
    variants = [
        (offset, gap, tb_seed)
        for tb_seed in tiebreak_seeds
        for offset in partition_offsets
        for gap in kill_gaps
    ]
    for index, (offset, gap, tb_seed) in enumerate(variants[:max_tries]):
        if deadline is not None and time.monotonic() > deadline:
            outcome["truncated"] = True
            break
        schedule = _depose_then_kill(baseline, probe_start, offset, gap, tb_seed)
        result = run_schedule(scenario, schedule)
        outcome["tries"] = index + 1
        if not result.violations:
            continue
        shrunk, shrunk_result, shrink_runs = shrink_schedule(scenario, schedule)
        outcome["violations"] = result.violations
        outcome["schedule"] = schedule.describe()
        outcome["shrunk_schedule"] = shrunk.describe()
        outcome["shrunk_violations"] = shrunk_result.violations
        outcome["shrink_runs"] = shrink_runs
        if repro_path:
            save_repro(repro_path, scenario, shrunk, shrunk_result)
            replay_ok, _result, _expected = replay_repro(repro_path)
            outcome["repro_path"] = repro_path
            outcome["replay_ok"] = replay_ok
            outcome["ok"] = replay_ok
        else:
            # Replay in place of a file round-trip: same schedule, same
            # digest.
            outcome["ok"] = (
                run_schedule(scenario, shrunk).digest() == shrunk_result.digest()
            )
        return outcome
    return outcome
