"""Deterministic schedule exploration: many legal interleavings, one seed.

The simulator is deterministic per root seed, which makes every benchmark
reproducible — and every run *one* sample from the space of legal event
interleavings.  Protocol bugs (split-brain windows, stale deliveries,
double executions) live in the orderings a single FIFO run never visits.
This package explores that space without giving up determinism:

* :mod:`~repro.check.tiebreak` — pluggable same-timestamp orderings
  (seeded shuffle, adversarial delay of a tagged process) installed as
  the :class:`~repro.simnet.environment.TiebreakPolicy` of a run;
* :mod:`~repro.check.schedule` — fault schedules indexed by *decision
  point* (the N-th protocol decision), not wall-clock time, so a fault
  lands on the same protocol step across perturbed runs;
* :mod:`~repro.check.faults` — the injector that fires those schedules
  from the network's pre-send/pre-deliver hooks and the b-peers'
  pre-commit hook;
* :mod:`~repro.check.invariants` — the safety checkers (election safety,
  epoch monotonicity, exactly-once, queue bounds, no stale result,
  convergence) evaluated after every slice of the run;
* :mod:`~repro.check.explorer` — the loop that samples schedules, shrinks
  a violating one to a minimal counterexample (ddmin over fault ops),
  dumps a replayable repro file, and re-executes it byte-identically.

``python -m repro check`` is the command-line entry point.
"""

from .explorer import (
    CheckScenario,
    ExploreReport,
    RunResult,
    ScheduleExplorer,
    load_repro,
    replay_repro,
    run_schedule,
    self_test,
    shrink_schedule,
)
from .faults import DecisionFaultInjector
from .invariants import (
    InvariantRegistry,
    announced_epoch_violations,
    convergence_violations,
    exactly_once_violations,
    queue_bound_violations,
    saga_atomicity_violations,
    saga_effects,
    stale_result_violations,
)
from .saga import (
    SAGA_REPRO_FORMAT,
    SagaCheckScenario,
    SagaRunResult,
    explore_saga_schedules,
    replay_saga_repro,
    run_dlq_demo,
    run_saga_schedule,
    saga_self_test,
    save_saga_repro,
    shrink_saga_schedule,
)
from .schedule import FaultOp, Schedule, random_schedule
from .tiebreak import (
    AdversarialDelayTiebreak,
    FifoTiebreak,
    SeededShuffleTiebreak,
    build_tiebreak,
)

__all__ = [
    "AdversarialDelayTiebreak",
    "CheckScenario",
    "DecisionFaultInjector",
    "ExploreReport",
    "FaultOp",
    "FifoTiebreak",
    "InvariantRegistry",
    "RunResult",
    "SAGA_REPRO_FORMAT",
    "SagaCheckScenario",
    "SagaRunResult",
    "Schedule",
    "ScheduleExplorer",
    "SeededShuffleTiebreak",
    "announced_epoch_violations",
    "build_tiebreak",
    "convergence_violations",
    "exactly_once_violations",
    "explore_saga_schedules",
    "load_repro",
    "queue_bound_violations",
    "random_schedule",
    "replay_repro",
    "replay_saga_repro",
    "run_dlq_demo",
    "run_saga_schedule",
    "run_schedule",
    "saga_atomicity_violations",
    "saga_effects",
    "saga_self_test",
    "save_saga_repro",
    "self_test",
    "shrink_saga_schedule",
    "shrink_schedule",
    "stale_result_violations",
]
