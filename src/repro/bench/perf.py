"""Simulator throughput record: the ``make perf`` harness.

Measures the simulation core on six scenarios — four kernel
microbenchmarks (timer-dense, ready-chain, store-pingpong, cancel-storm)
and two full-stack deployments (discovery-flood, whisper-loop) — in two
modes on the same machine in the same run:

* **baseline** — the seed's behaviour, reconstructed: the ``"heap"``
  scheduler (every event through one heapq), eager advertisement XML
  rendering (``CACHE_XML = False``), remove-based O(n) store-waiter
  cancellation, and full (unsampled) request tracing.
* **current** — the shipped defaults: the batched scheduler, cached XML,
  tombstone cancellation, and sampled tracing for the high-throughput
  deployment scenario.

Each mode runs in its own subprocess so peak RSS and module globals are
clean per mode; ``--in-process`` falls back to one process (globals are
saved/restored).  The record lands in ``BENCH_simnet.json``: per-scenario
events/sec and messages/sec for both modes, aggregate totals, peak RSS,
and the headline speedup.  The headline scenario is **cancel-storm**
(crash-heavy campaigns interrupting deep inboxes), where the seed's
``deque.remove`` cancellation is quadratic — the bug class this PR fixes —
so that is where the order-of-magnitude shows up; the uniform kernel
scenarios gain the scheduler's 1.1–1.5×.

``--check RECORD`` is the CI regression gate: it compares *speedup
ratios* (current vs baseline measured in the same run, so the comparison
is machine- and scale-independent) against the committed record and fails
on a >``tolerance`` regression.

One caveat, recorded here rather than hidden: baseline mode cannot undo
the ``__slots__`` layout of :class:`~repro.simnet.message.Message` and
the store waiter events, so the baseline slightly *over*-states the
seed's true speed and the recorded speedups are conservative.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

try:  # POSIX only; the record degrades gracefully elsewhere.
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

from ..simnet import environment as environment_module
from ..simnet.environment import Environment
from ..simnet.events import Interrupt
from ..simnet.network import Network
from ..simnet.queues import Store, StoreGet
from ..simnet.rng import RngRegistry
from ..simnet.trace import MessageTrace
from ..p2p import advertisement as advertisement_module
from ..p2p import Peer, PeerGroupId, SemanticAdvertisement

__all__ = [
    "SCALES",
    "MODES",
    "HEADLINE_SCENARIO",
    "run_mode",
    "run_perf",
    "check_record",
]

MODES = ("baseline", "current")

#: The scenario the acceptance headline is measured on (see module doc).
HEADLINE_SCENARIO = "cancel-storm"

#: Workload sizes per scale.  ``smoke`` is the CI tier: seconds, not
#: minutes, and small enough that the quadratic baseline stays cheap.
#: ``repeats`` is best-of-N per scenario — simulations are deterministic,
#: so repeats only filter out wall-clock noise from shared CI boxes.
SCALES: Dict[str, Dict[str, int]] = {
    "smoke": dict(
        timer_procs=40, timer_events=400,
        chain_procs=8, chain_events=2500,
        pingpong_pairs=8, pingpong_rounds=500,
        cancel_waiters=4000, cancel_rounds=2,
        discovery_ads=40, discovery_queries=10,
        whisper_clients=4, whisper_requests=15,
        repeats=3,
    ),
    "full": dict(
        timer_procs=100, timer_events=2000,
        chain_procs=10, chain_events=20000,
        pingpong_pairs=32, pingpong_rounds=1500,
        cancel_waiters=16000, cancel_rounds=2,
        discovery_ads=200, discovery_queries=50,
        whisper_clients=8, whisper_requests=50,
        repeats=2,
    ),
}

#: Request-trace sampling rate the ``current`` whisper-loop runs at (the
#: knob this PR adds); baseline traces everything, as the seed did.
CURRENT_SAMPLE_RATE = 0.1


# -- seed-behaviour shims for baseline mode ----------------------------------------


class _LegacyStoreGet(StoreGet):
    """The seed's remove-based cancellation (O(n) per cancel)."""

    __slots__ = ("_store",)

    def __init__(self, store: Store):
        self._store = store
        super().__init__(store)

    def cancel(self) -> None:
        if not self.triggered:
            try:
                self._store._get_waiters.remove(self)
            except ValueError:
                pass


class _LegacyStore(Store):
    """A store whose getters cancel the way the seed did."""

    def get(self) -> StoreGet:
        return _LegacyStoreGet(self)


# -- scenarios ---------------------------------------------------------------------
#
# Each scenario returns ``(environment, message_trace_or_None, extras)``;
# the driver times the call and reads ``environment.events_processed``.


def _scenario_timer_dense(scale: Dict[str, int], seed: int, mode: str):
    """Many processes sleeping on spread (non-zero) delays: heap-bound."""
    env = Environment()

    def ticker(index: int):
        delay = 0.001 + (index % 17) * 0.0007
        for _ in range(scale["timer_events"]):
            yield env.timeout(delay)

    processes = [env.process(ticker(i)) for i in range(scale["timer_procs"])]
    for process in processes:
        env.run(until=process)
    return env, None, {"timeouts": scale["timer_procs"] * scale["timer_events"]}


def _scenario_ready_chain(scale: Dict[str, int], seed: int, mode: str):
    """Long chains of zero-delay events: the batched fast path's home turf."""
    env = Environment()

    def chain():
        for _ in range(scale["chain_events"]):
            yield env.timeout(0.0)

    processes = [env.process(chain()) for _ in range(scale["chain_procs"])]
    for process in processes:
        env.run(until=process)
    return env, None, {"links": scale["chain_procs"] * scale["chain_events"]}


def _scenario_store_pingpong(scale: Dict[str, int], seed: int, mode: str):
    """Producer/consumer pairs handshaking through two stores."""
    env = Environment()
    rounds = scale["pingpong_rounds"]

    def producer(request_store: Store, response_store: Store):
        for index in range(rounds):
            request_store.put(index)
            yield response_store.get()

    def consumer(request_store: Store, response_store: Store):
        for _ in range(rounds):
            item = yield request_store.get()
            response_store.put(item)

    processes = []
    for _ in range(scale["pingpong_pairs"]):
        request_store, response_store = Store(env), Store(env)
        processes.append(env.process(producer(request_store, response_store)))
        processes.append(env.process(consumer(request_store, response_store)))
    for process in processes:
        env.run(until=process)
    return env, None, {"rounds": scale["pingpong_pairs"] * rounds}


def _scenario_cancel_storm(scale: Dict[str, int], seed: int, mode: str):
    """Crash-heavy cancellation: park waiters, interrupt in reverse order.

    Reverse order matters: FIFO-order interrupts remove from the deque
    *front*, which is O(1) even for ``deque.remove`` and hides the seed's
    quadratic.  A crashing host interrupts its waiters in whatever order
    its process table holds them, so the adversarial order is fair game.
    """
    env = Environment()
    store: Store = _LegacyStore(env) if mode == "baseline" else Store(env)
    waiters, rounds = scale["cancel_waiters"], scale["cancel_rounds"]

    def waiter():
        try:
            yield store.get()
        except Interrupt:
            pass

    def driver():
        for _ in range(rounds):
            processes = [env.process(waiter()) for _ in range(waiters)]
            yield env.timeout(0.01)
            for process in reversed(processes):
                process.interrupt("storm")
            yield env.timeout(0.01)

    env.run(until=env.process(driver()))
    return env, None, {"cancels": waiters * rounds}


def _scenario_discovery_flood(scale: Dict[str, int], seed: int, mode: str):
    """Repeated remote discovery over published semantic advertisements.

    The server side re-serialises every matching advertisement per query;
    with ``CACHE_XML`` (current mode) each document renders once.  The
    client still parses every response, so this scenario's speedup is
    bounded by the parse half of the exchange — recorded as-is.
    """
    env = Environment()
    network = Network(env, trace=MessageTrace(), rng=RngRegistry(seed))
    rendezvous = Peer(network.add_host("rdv"), is_rendezvous=True)
    rendezvous.publish_self(remote=False)

    def edge(name: str) -> Peer:
        peer = Peer(network.add_host(name))
        peer.attach_to(rendezvous)
        peer.publish_self(remote=True)
        return peer

    publisher, client = edge("publisher"), edge("client")
    env.run(until=1.0)

    advertisement_count = scale["discovery_ads"]
    for index in range(advertisement_count):
        publisher.discovery.publish(
            SemanticAdvertisement(
                group_id=PeerGroupId.from_name(f"perf-group-{index}"),
                name=f"perf-group-{index}",
                action="http://example.org/onto#ManageStudents",
                inputs=("http://example.org/onto#StudentID",),
                outputs=("http://example.org/onto#StudentRecord",),
                ontology_uri="http://example.org/onto",
            )
        )

    matched = 0

    def query_loop():
        nonlocal matched
        for _ in range(scale["discovery_queries"]):
            advertisements = yield from client.discovery.get_remote_advertisements(
                SemanticAdvertisement,
                timeout=5.0,
                threshold=advertisement_count + 8,
            )
            matched += len(advertisements)
            yield env.timeout(0.05)

    env.run(until=env.process(query_loop()))
    return env, network.trace, {
        "advertisements": advertisement_count,
        "queries": scale["discovery_queries"],
        "matched": matched,
    }


def _scenario_whisper_loop(scale: Dict[str, int], seed: int, mode: str):
    """The full stack: deploy the student service, drive a closed loop."""
    # Imported here: the core stack pulls in most of the package, and the
    # kernel scenarios should stay runnable without it.
    from ..core.config import ScenarioConfig
    from ..core.system import WhisperSystem
    from .workload import ClosedLoopWorkload

    sample_rate = 1.0 if mode == "baseline" else CURRENT_SAMPLE_RATE
    config = ScenarioConfig(
        seed=seed, replicas=2, students=64, obs_sample_rate=sample_rate
    )
    system = WhisperSystem(config)
    service = system.deploy_student_service()
    system.settle()
    workload = ClosedLoopWorkload(
        system,
        service.address,
        service.path,
        "StudentInformation",
        clients=scale["whisper_clients"],
        think_time=0.02,
        requests_per_client=scale["whisper_requests"],
    )
    result = workload.run()
    return system.env, system.trace, {
        "requests": result.requests,
        "successes": result.successes,
        "obs_sample_rate": sample_rate,
    }


Scenario = Callable[[Dict[str, int], int, str], Tuple[Environment, Any, Dict[str, Any]]]

_SCENARIOS: List[Tuple[str, Scenario]] = [
    ("timer-dense", _scenario_timer_dense),
    ("ready-chain", _scenario_ready_chain),
    ("store-pingpong", _scenario_store_pingpong),
    ("cancel-storm", _scenario_cancel_storm),
    ("discovery-flood", _scenario_discovery_flood),
    ("whisper-loop", _scenario_whisper_loop),
]


# -- mode execution ----------------------------------------------------------------


def _peak_rss_kb() -> Optional[int]:
    """Process-lifetime peak RSS in KiB (None where unsupported)."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak //= 1024
    return int(peak)


def run_mode(mode: str, scale_name: str, seed: int = 42) -> Dict[str, Any]:
    """Run every scenario once under ``mode`` and return its record.

    Flips the deployment-wide globals (scheduler default, XML caching)
    for the duration; run this in a subprocess (the default path) for a
    per-mode peak RSS and zero global leakage.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r} (use one of {MODES})")
    scale = SCALES[scale_name]
    saved = (environment_module.DEFAULT_SCHEDULER, advertisement_module.CACHE_XML)
    environment_module.DEFAULT_SCHEDULER = "heap" if mode == "baseline" else "batched"
    advertisement_module.CACHE_XML = mode != "baseline"
    repeats = scale.get("repeats", 1)
    scenarios: List[Dict[str, Any]] = []
    try:
        for name, scenario in _SCENARIOS:
            best: Optional[Dict[str, Any]] = None
            for _ in range(repeats):
                started = time.perf_counter()
                env, trace, extras = scenario(scale, seed, mode)
                wall = time.perf_counter() - started
                events = env.events_processed
                messages = trace.sent_total if trace is not None else 0
                attempt = {
                    "name": name,
                    "wall_s": round(wall, 6),
                    "events": events,
                    "messages": messages,
                    "events_per_sec": round(events / wall, 1),
                    "messages_per_sec": round(messages / wall, 1),
                    **extras,
                }
                if best is None or attempt["events_per_sec"] > best["events_per_sec"]:
                    best = attempt
            scenarios.append(best)
    finally:
        environment_module.DEFAULT_SCHEDULER, advertisement_module.CACHE_XML = saved
    total_wall = sum(s["wall_s"] for s in scenarios)
    total_events = sum(s["events"] for s in scenarios)
    total_messages = sum(s["messages"] for s in scenarios)
    return {
        "mode": mode,
        "scale": scale_name,
        "seed": seed,
        "config": {
            "scheduler": "heap" if mode == "baseline" else "batched",
            "cache_xml": mode != "baseline",
            "legacy_store_cancel": mode == "baseline",
            "whisper_obs_sample_rate": 1.0 if mode == "baseline" else CURRENT_SAMPLE_RATE,
            "repeats_best_of": repeats,
        },
        "scenarios": scenarios,
        "totals": {
            "wall_s": round(total_wall, 6),
            "events": total_events,
            "messages": total_messages,
            "events_per_sec": round(total_events / total_wall, 1),
            "messages_per_sec": round(total_messages / total_wall, 1),
        },
        "peak_rss_kb": _peak_rss_kb(),
    }


def _run_mode_subprocess(mode: str, scale_name: str, seed: int) -> Dict[str, Any]:
    """Run one mode in a fresh interpreter; returns its parsed record."""
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_dir = os.path.dirname(package_dir)
    child_env = dict(os.environ)
    existing = child_env.get("PYTHONPATH")
    child_env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    command = [
        sys.executable, "-m", "repro", "perf",
        "--worker", mode, "--worker-scale", scale_name, "--seed", str(seed),
    ]
    completed = subprocess.run(
        command, env=child_env, capture_output=True, text=True, check=False
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"perf worker ({mode}/{scale_name}) failed "
            f"rc={completed.returncode}:\n{completed.stderr}"
        )
    lines = [line for line in completed.stdout.splitlines() if line.strip()]
    if not lines:
        raise RuntimeError(f"perf worker ({mode}/{scale_name}) produced no output")
    return json.loads(lines[-1])


# -- the record --------------------------------------------------------------------


def _scale_summary(modes: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Speedups (current over baseline) for one scale's pair of modes."""
    baseline, current = modes["baseline"], modes["current"]
    per_scenario: Dict[str, Dict[str, Any]] = {}
    current_by_name = {s["name"]: s for s in current["scenarios"]}
    for base_scenario in baseline["scenarios"]:
        name = base_scenario["name"]
        current_scenario = current_by_name.get(name)
        if current_scenario is None:
            continue
        per_scenario[name] = {
            "baseline_events_per_sec": base_scenario["events_per_sec"],
            "current_events_per_sec": current_scenario["events_per_sec"],
            "speedup": round(
                current_scenario["events_per_sec"]
                / base_scenario["events_per_sec"], 2
            ),
        }
    speedup = {
        "events_per_sec": round(
            current["totals"]["events_per_sec"]
            / baseline["totals"]["events_per_sec"], 2
        ),
        "messages_per_sec": round(
            current["totals"]["messages_per_sec"]
            / baseline["totals"]["messages_per_sec"], 2
        ) if baseline["totals"]["messages_per_sec"] else None,
        "per_scenario": per_scenario,
    }
    headline = dict(per_scenario.get(HEADLINE_SCENARIO, {}))
    headline["scenario"] = HEADLINE_SCENARIO
    return {"speedup": speedup, "headline": headline}


def run_perf(
    scale_names: List[str],
    seed: int = 42,
    isolate: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the full two-mode measurement and return the record dict."""
    runs: Dict[str, Any] = {}
    for scale_name in scale_names:
        modes: Dict[str, Dict[str, Any]] = {}
        for mode in MODES:
            if progress is not None:
                progress(f"running {scale_name}/{mode} ...")
            if isolate:
                modes[mode] = _run_mode_subprocess(mode, scale_name, seed)
            else:
                modes[mode] = run_mode(mode, scale_name, seed)
        runs[scale_name] = {"modes": modes, **_scale_summary(modes)}
    return {
        "schema": "repro-perf/1",
        "generated_by": "python -m repro perf",
        "seed": seed,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "process_isolation": isolate,
        "runs": runs,
    }


def check_record(
    new: Dict[str, Any], record: Dict[str, Any], tolerance: float = 0.25
) -> List[str]:
    """Regression gate: compare speedup ratios against a committed record.

    Ratios (current/baseline within one run) are machine-independent, so
    a CI box slower than the dev box that produced the record does not
    trip the gate — only an actual loss of the optimisations does.
    Returns a list of human-readable failures (empty = pass).
    """
    failures: List[str] = []
    for scale_name, new_run in new.get("runs", {}).items():
        recorded = record.get("runs", {}).get(scale_name)
        if recorded is None:
            continue
        pairs = [
            ("aggregate events/sec speedup",
             new_run["speedup"]["events_per_sec"],
             recorded["speedup"]["events_per_sec"]),
            (f"headline ({HEADLINE_SCENARIO}) speedup",
             new_run["headline"].get("speedup"),
             recorded["headline"].get("speedup")),
        ]
        for label, new_value, recorded_value in pairs:
            if new_value is None or recorded_value is None:
                continue
            floor = recorded_value * (1.0 - tolerance)
            if new_value < floor:
                failures.append(
                    f"{scale_name}: {label} regressed: {new_value:.2f}x "
                    f"< {floor:.2f}x (record {recorded_value:.2f}x "
                    f"- {tolerance:.0%})"
                )
        if new_run["speedup"]["events_per_sec"] < 1.0:
            failures.append(
                f"{scale_name}: current mode is slower than the seed baseline "
                f"({new_run['speedup']['events_per_sec']:.2f}x)"
            )
    return failures


def format_record(record: Dict[str, Any]) -> str:
    """Human-readable table of one record (per scale, per scenario)."""
    lines: List[str] = []
    for scale_name, run in record["runs"].items():
        lines.append(f"== scale: {scale_name} ==")
        lines.append(
            f"{'scenario':<16} {'base ev/s':>12} {'curr ev/s':>12} {'speedup':>8}"
        )
        for name, row in run["speedup"]["per_scenario"].items():
            lines.append(
                f"{name:<16} {row['baseline_events_per_sec']:>12,.0f} "
                f"{row['current_events_per_sec']:>12,.0f} "
                f"{row['speedup']:>7.2f}x"
            )
        totals = run["speedup"]
        lines.append(
            f"{'TOTAL':<16} "
            f"{run['modes']['baseline']['totals']['events_per_sec']:>12,.0f} "
            f"{run['modes']['current']['totals']['events_per_sec']:>12,.0f} "
            f"{totals['events_per_sec']:>7.2f}x"
        )
        headline = run["headline"]
        if "speedup" in headline:
            lines.append(
                f"headline [{headline['scenario']}]: "
                f"{headline['baseline_events_per_sec']:,.0f} -> "
                f"{headline['current_events_per_sec']:,.0f} ev/s "
                f"({headline['speedup']:.2f}x)"
            )
        for mode in MODES:
            rss = run["modes"][mode].get("peak_rss_kb")
            if rss is not None:
                lines.append(f"peak RSS ({mode}): {rss:,} KiB")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
