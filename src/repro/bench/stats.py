"""Statistics helpers for benchmark reporting.

Small, dependency-light implementations of exactly what the harness needs:
summary statistics, percentiles, and an ordinary-least-squares linear fit
(used to verify Figure 4's "predictable linear increase" claim via r²).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Summary", "summarize", "percentile", "linear_fit", "LinearFit"]


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    # The a + (b - a) * f form (with clamping) is monotone in f under IEEE
    # rounding, so p95 <= p99 always holds; the algebraically equivalent
    # a*(1-f) + b*f form is not.
    interpolated = ordered[low] + (ordered[high] - ordered[low]) * fraction
    return min(max(interpolated, ordered[low]), ordered[high])


def summarize(values: Sequence[float]) -> Summary:
    """Full summary of a sample (raises on empty input)."""
    if not values:
        raise ValueError("summarize() needs at least one value")
    count = len(values)
    low, high = min(values), max(values)
    # The true mean always lies in [min, max]; float summation can drift a
    # ULP outside, so clamp.
    mean = min(max(sum(values) / count, low), high)
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
        stdev = math.sqrt(variance)
    else:
        stdev = 0.0
    return Summary(
        count=count,
        mean=mean,
        stdev=stdev,
        minimum=low,
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        maximum=high,
    )


@dataclass(frozen=True)
class LinearFit:
    """An OLS fit ``y = slope * x + intercept`` with its r²."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares over the paired samples."""
    if len(xs) != len(ys):
        raise ValueError("x and y lengths differ")
    n = len(xs)
    if n < 2:
        raise ValueError("linear fit needs at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    ss_xx = sum((x - mean_x) ** 2 for x in xs)
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    ss_yy = sum((y - mean_y) ** 2 for y in ys)
    if ss_xx == 0:
        raise ValueError("degenerate fit: all x values are equal")
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    # A flat series has no variance to explain; call the fit perfect.  The
    # tolerance is relative to the magnitude of y so float roundoff in the
    # mean does not turn an exactly-constant series into r² = 0.
    flat_threshold = 1e-20 * max(1.0, mean_y * mean_y) * n
    if ss_yy <= flat_threshold:
        r_squared = 1.0
    else:
        residual = sum(
            (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
        )
        r_squared = 1.0 - residual / ss_yy
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)
