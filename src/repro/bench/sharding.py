"""Sharding bench: throughput scaling, message growth, rebalance cost.

Three questions about the semantic-sharding layer, answered on the same
simulated testbed as the paper's §5 experiments:

* **Scaling** — at a fixed per-group replication factor, does federating
  the keyspace across N shard groups multiply aggregate read throughput?
  The sweep drives an open-loop Poisson workload at a fixed multiple of
  a *single* shard's capacity; one group saturates and sheds, N groups
  absorb it.
* **Message growth** — Figure-4 style: each extra shard group brings its
  own replicas, heartbeats, membership renewals, and SRDI leases, so the
  steady-state message count grows with the shard count exactly as
  Figure 4 grows with b-peers.  The sweep counts every message on the
  network over a fixed quiet window per shard count.
* **Rebalance cost** — crash one whole shard group mid-workload and
  measure what the consistent-hash ring promises: only the victim's
  segment remaps (reported as the ring fraction), the workload keeps
  making progress via ring-successor failover, and the per-group dedup
  journals keep every enrollment exactly-once across the handoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..backend.datasets import student_database
from ..backend.services import student_enrollment, student_lookup_operational
from ..core.config import ScenarioConfig
from ..core.sharding import ShardRing
from ..core.system import WhisperSystem
from ..wsdl.samples import student_admin_wsdl, student_management_wsdl
from .stats import Summary
from .workload import PoissonWorkload

__all__ = [
    "READ_SERVICE_TIME",
    "RebalanceReport",
    "ShardPoint",
    "build_sharded_system",
    "run_rebalance",
    "run_shard_point",
    "run_shard_sweep",
    "shard_capacity",
]

#: Homogeneous per-replica service time for the read workload: each
#: replica serves ~100 lookups/second, so a shard group of R replicas
#: has a knee at ``R * 100``/s.
READ_SERVICE_TIME = 0.010


def shard_capacity(replicas: int, service_time: float = READ_SERVICE_TIME) -> float:
    """One shard group's knee in requests/second."""
    return replicas / service_time


def build_sharded_system(
    config: ScenarioConfig,
    service_time: float = READ_SERVICE_TIME,
):
    """Deploy the read service across ``config.shards`` federated groups.

    Every shard group gets ``config.replicas`` homogeneous replicas, each
    with a full copy of the student dataset (sharding splits *load*, not
    data), so any group can serve any key during ring handoff.  Load
    sharing is forced on — a coordinator-only group would bottleneck on
    one replica and hide the scaling the sweep measures.
    """
    scenario = config.replace(load_sharing=True, dispatch="least-outstanding")
    system = WhisperSystem(scenario)

    def implementations(shard: int):
        impls = []
        for _ in range(scenario.replicas):
            impl = student_lookup_operational(student_database(scenario.students))
            impl.service_time = service_time
            impls.append(impl)
        return impls

    service = system.deploy_service(
        student_management_wsdl(),
        {"StudentInformation": implementations},
        web_host="web0",
    )
    return system, service


@dataclass
class ShardPoint:
    """One sweep measurement: a shard count under a fixed offered load."""

    shards: int
    replicas_per_shard: int
    rate: float
    shard_knee: float
    requests: int
    successes: int
    shed: int
    timeouts: int
    faults: int
    throughput: float
    latency: Summary
    shard_routed: int
    #: Messages on the whole network over a fixed steady-state window
    #: after the workload drained (the Figure-4 accounting).
    steady_messages: int
    per_group_executed: Dict[str, int] = field(default_factory=dict)

    def row(self) -> List[object]:
        return [
            self.shards,
            f"{self.rate:.0f}",
            self.requests,
            self.successes,
            self.shed,
            f"{self.throughput:.1f}",
            f"{self.latency.p50 * 1000:.1f}",
            f"{self.latency.p99 * 1000:.1f}",
            self.steady_messages,
        ]


def run_shard_point(
    shards: int,
    rate: float,
    duration: float = 8.0,
    config: Optional[ScenarioConfig] = None,
    settle: float = 6.0,
    message_window: float = 10.0,
    service_time: float = READ_SERVICE_TIME,
) -> ShardPoint:
    """Run one open-loop read point against a fresh sharded deployment."""
    scenario = config if config is not None else ScenarioConfig(seed=42)
    scenario = scenario.replace(shards=shards)
    system, service = build_sharded_system(scenario, service_time=service_time)
    system.settle(settle)
    workload = PoissonWorkload(
        system,
        service.address,
        service.path,
        "StudentInformation",
        rate=rate,
        duration=duration,
        call_timeout=scenario.deadline_budget,
    )
    result = workload.run()
    # Figure-4-style growth: count every message in a quiet window once
    # the workload drained — heartbeats, renewals, and leases per group.
    system.reset_counters()
    system.run_until(system.env.now + message_window)
    return ShardPoint(
        shards=shards,
        replicas_per_shard=scenario.replicas,
        rate=rate,
        shard_knee=shard_capacity(scenario.replicas, service_time),
        requests=result.requests,
        successes=result.successes,
        shed=result.shed,
        timeouts=result.timeouts,
        faults=result.faults,
        throughput=result.throughput,
        latency=result.latency_summary(),
        shard_routed=service.proxy.stats.shard_routed,
        steady_messages=system.trace.sent_total,
        per_group_executed={
            group.name: group.total_requests_executed()
            for group in service.all_groups()
        },
    )


def run_shard_sweep(
    shard_counts: Sequence[int] = (1, 2, 4),
    replicas: int = 2,
    rate_multiple: float = 3.0,
    duration: float = 8.0,
    seed: int = 42,
    message_window: float = 10.0,
    service_time: float = READ_SERVICE_TIME,
) -> List[ShardPoint]:
    """The scaling sweep: a fixed offered load across shard counts.

    The rate is ``rate_multiple`` times one shard group's knee, so the
    single-group point is saturated (bounded queues shed the excess)
    while the federated points have headroom — the throughput ratio
    between them is the scaling claim.
    """
    knee = shard_capacity(replicas, service_time)
    rate = rate_multiple * knee
    config = ScenarioConfig(
        seed=seed,
        replicas=replicas,
        queue_bound=8,
        request_timeout=2.0,
        max_attempts=6,
        deadline_budget=8.0,
        heartbeat_interval=0.5,
        miss_threshold=2,
    )
    return [
        run_shard_point(
            shards,
            rate,
            duration=duration,
            config=config,
            message_window=message_window,
            service_time=service_time,
        )
        for shards in shard_counts
    ]


@dataclass
class RebalanceReport:
    """What crashing one whole shard group mid-workload cost."""

    shards: int
    victim: str
    #: The ring fraction the victim owned — the only segment that remaps.
    remapped_fraction: float
    enrollments: int
    succeeded: int
    failed: int
    shard_failovers: int
    distinct_effects: int
    double_applied: Dict[str, int] = field(default_factory=dict)

    @property
    def exactly_once(self) -> bool:
        return not self.double_applied

    def rows(self) -> List[List[object]]:
        return [
            ["shards", self.shards],
            ["victim group", self.victim],
            ["remapped ring fraction", f"{self.remapped_fraction:.3f}"],
            ["enrollments offered", self.enrollments],
            ["succeeded", self.succeeded],
            ["failed", self.failed],
            ["shard failovers", self.shard_failovers],
            ["distinct effects", self.distinct_effects],
            ["double-applied", len(self.double_applied)],
        ]


def run_rebalance(
    shards: int = 4,
    replicas: int = 2,
    enrollments: int = 60,
    crash_at: int = 15,
    seed: int = 42,
    settle: float = 6.0,
) -> RebalanceReport:
    """Crash shard group 0 mid-workload; audit handoff cost and safety.

    The workload is the mutating EnrollStudent service — the hard case:
    sticky at-most-once handoff pins every sent invocation to its home
    group, so the audit proves the per-group dedup journals stay
    sufficient across the ring rebalance (zero double-applied effects).
    """
    config = ScenarioConfig(
        seed=seed,
        shards=shards,
        replicas=replicas,
        load_sharing=True,
        heartbeat_interval=0.5,
        miss_threshold=2,
        request_timeout=0.5,
    )
    system = WhisperSystem(config)
    service = system.deploy_service(
        student_admin_wsdl(),
        {
            "EnrollStudent": lambda shard: [
                student_enrollment(student_database(config.students))
                for _ in range(replicas)
            ]
        },
    )
    system.settle(settle)
    victim = service.shard_groups_for("EnrollStudent")[0]
    outcomes = {"ok": 0, "failed": 0}

    def workload():
        for index in range(enrollments):
            if index == crash_at:
                for peer in victim.peers:
                    peer.node.crash()
            try:
                yield from service.invoke(
                    "EnrollStudent",
                    {"ID": f"S{index + 1:05d}", "course": "b2b-integration"},
                    budget=6.0,
                )
            except Exception:  # noqa: BLE001 - the audit counts outcomes
                outcomes["failed"] += 1
            else:
                outcomes["ok"] += 1

    system.run_process(workload(), node=service.proxy.node)

    ring = ShardRing(virtual_nodes=config.virtual_nodes)
    for group in service.shard_groups_for("EnrollStudent"):
        ring.add(group.name)
    applied: Dict[str, int] = {}
    seen_backends = set()
    for peer in service.all_peers():
        backend = peer.implementation.backend
        if id(backend) in seen_backends:
            continue
        seen_backends.add(id(backend))
        for invocation_id, _applied_by in getattr(backend, "effect_log", []):
            applied[invocation_id] = applied.get(invocation_id, 0) + 1
    return RebalanceReport(
        shards=shards,
        victim=victim.name,
        remapped_fraction=ring.segment_fraction(victim.name),
        enrollments=enrollments,
        succeeded=outcomes["ok"],
        failed=outcomes["failed"],
        shard_failovers=service.proxy.stats.shard_failovers,
        distinct_effects=len(applied),
        double_applied={
            invocation_id: count
            for invocation_id, count in applied.items()
            if count > 1
        },
    )
