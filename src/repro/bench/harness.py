"""The experiment runner: parameter sweeps over fresh systems.

Each sweep point builds a brand-new :class:`WhisperSystem` (fresh clock,
fresh RNG streams, fresh hosts) via a caller-supplied factory, runs a
measurement callable against it, and collects one row.  Rows print through
:mod:`repro.bench.report` in the same shape as the paper's tables/figures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

__all__ = ["SweepPoint", "Sweep", "run_sweep"]


@dataclass
class SweepPoint:
    """One row of an experiment: the swept value plus measured columns."""

    parameter: Any
    measurements: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.measurements[key]

    def row(self, columns: Sequence[str]) -> List[Any]:
        return [self.parameter] + [self.measurements.get(c) for c in columns]


@dataclass
class Sweep:
    """A completed sweep: named parameter, measured columns, one row each."""

    name: str
    parameter_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, column: str) -> List[Any]:
        return [point.measurements.get(column) for point in self.points]

    def parameters(self) -> List[Any]:
        return [point.parameter for point in self.points]

    def columns(self) -> List[str]:
        seen: List[str] = []
        for point in self.points:
            for key in point.measurements:
                if key not in seen:
                    seen.append(key)
        return seen

    def to_csv(self) -> str:
        """The sweep as CSV (parameter column first), for offline plotting."""

        def cell(value: Any) -> str:
            text = str(value)
            if any(ch in text for ch in ",\"\n"):
                text = '"' + text.replace('"', '""') + '"'
            return text

        columns = self.columns()
        lines = [",".join(cell(c) for c in [self.parameter_name] + columns)]
        for point in self.points:
            lines.append(",".join(cell(v) for v in point.row(columns)))
        return "\n".join(lines) + "\n"

    def to_json(self, indent: Optional[int] = None) -> str:
        """The sweep as JSON, for machine-readable benchmark exports.

        Non-JSON-native measurement values (e.g. nested phase summaries
        are fine; arbitrary objects fall back to ``str``) never make the
        export raise.
        """
        payload = {
            "name": self.name,
            "parameter": self.parameter_name,
            "points": [
                {"parameter": point.parameter, **point.measurements}
                for point in self.points
            ],
        }
        return json.dumps(payload, indent=indent, default=str)


#: Measure signature: ``measure(parameter) -> {column: value}``.
Measure = Callable[[Any], Dict[str, Any]]


def run_sweep(
    name: str,
    parameter_name: str,
    values: Iterable[Any],
    measure: Measure,
    repeats: int = 1,
    reduce: Optional[Callable[[List[Dict[str, Any]]], Dict[str, Any]]] = None,
) -> Sweep:
    """Run ``measure`` at every swept value; optionally repeat and reduce.

    With ``repeats > 1``, ``measure`` is called that many times per value
    (callers vary seeds inside), and ``reduce`` combines the dicts (default:
    arithmetic mean of numeric columns).
    """
    sweep = Sweep(name=name, parameter_name=parameter_name)
    for value in values:
        runs = [measure(value) for _ in range(repeats)]
        if len(runs) == 1:
            combined = runs[0]
        else:
            combined = (reduce or _mean_reduce)(runs)
        sweep.points.append(SweepPoint(parameter=value, measurements=combined))
    return sweep


def _mean_reduce(runs: List[Dict[str, Any]]) -> Dict[str, Any]:
    combined: Dict[str, Any] = {}
    for key in runs[0]:
        values = [run[key] for run in runs if key in run]
        if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            combined[key] = sum(values) / len(values)
        else:
            combined[key] = values[0]
    return combined
