"""Adaptive-capacity bench: a diurnal trace against elastic vs static.

The adaptive-capacity layer (ROADMAP item 5) claims three things at
once; this bench prices each of them on one reproducible diurnal trace —
quiet morning → ramp → wide-working-set peak → hot-key read-heavy
cool-down → quiet evening:

* **Elasticity pays.**  An autoscaled deployment (2..6 replicas, queue
  pressure watermarks) must burn at most ``0.6x`` the replica-hours of a
  statically max-provisioned one while giving up at most two points of
  availability and keeping success-latency p99 within ``1.5x``.
* **The semantic cache earns its keep where semantics repeat.**  During
  the peak the working set exceeds the cache, so replicas feel the load
  and scaling is honestly exercised; during the hot-key phase the cache
  must serve at least half the reads — and it must never serve a value
  from a fenced (pre-failover) epoch.
* **The breaker fails fast and heals.**  A drill crashes every replica,
  requires the breaker to trip (converting timeout storms into immediate
  rejections), then restarts them and requires a half-open probe to
  re-close it — with every trip justified by window evidence.

A Figure-4 guard closes the record: with all three specs left ``None``
the deployment must produce byte-identical message counts to the seed
path, proving the capacity layer costs nothing until it is asked for.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..backend.datasets import student_database
from ..backend.services import ServiceImplementation, student_lookup_operational
from ..core.autoscale import AutoscaleSpec
from ..core.breaker import BreakerSpec
from ..core.config import ScenarioConfig
from ..core.errors import CircuitOpenError
from ..core.rescache import ResultCacheSpec
from ..core.system import DeployedService, WhisperSystem
from ..check.invariants import (
    autoscale_violations,
    breaker_violations,
    rescache_violations,
    retirement_violations,
)
from ..wsdl.samples import student_management_wsdl
from .stats import percentile
from .workload import PoissonWorkload


def _pct(values: Sequence[float], q: float) -> float:
    return percentile(values, q) if values else 0.0

__all__ = [
    "Phase",
    "build_capacity_system",
    "check_record",
    "diurnal_phases",
    "format_record",
    "run_breaker_drill",
    "run_capacity",
    "run_diurnal",
    "run_fig4_guard",
]

#: Uniform replica service time: each replica's knee is ~100 req/s.
SERVICE_TIME = 0.010
#: Elastic band for the autoscaled deployment; the static baseline is
#: provisioned at the band's ceiling.
MIN_REPLICAS = 2
MAX_REPLICAS = 6
#: Student records in every operational store — the ceiling on distinct
#: lookup keys a phase may cycle through.
STUDENTS = 2000

AUTOSCALE = AutoscaleSpec(
    min_replicas=MIN_REPLICAS,
    max_replicas=MAX_REPLICAS,
    # Scale *early*: ~0.5 outstanding per replica is roughly 50%
    # utilisation, so growth triggers while queues are still shallow and
    # the diurnal ramp's steps never build a deep backlog.  The low
    # watermark sits far below it and the EWMA smooths instantaneous
    # idle samples, so a mid-burst lull never flaps the group down.
    high_watermark=0.5,
    low_watermark=0.15,
    cooldown=1.25,
    interval=0.5,
    smoothing=0.4,
)
BREAKER = BreakerSpec(window=16, min_calls=8, failure_threshold=0.75, open_duration=2.0)
CACHE = ResultCacheSpec(capacity=256, staleness_bound=2.0)


@dataclass(frozen=True)
class Phase:
    """One leg of the diurnal trace."""

    name: str
    rate: float
    duration: float
    #: Distinct student IDs the phase cycles through.  Wider than the
    #: cache during the peak (honest load), a handful during the
    #: read-heavy phase (the cache's home turf).
    key_space: int

    def arguments(self) -> Callable[[int], Dict[str, Any]]:
        span = self.key_space

        def factory(index: int) -> Dict[str, Any]:
            return {"ID": f"S{(index % span) + 1:05d}"}

        return factory


def diurnal_phases(scale: str = "full") -> Tuple[Phase, ...]:
    """The trace: quiet → stepped ramp → peak → read-heavy → quiet.

    The ramp rises in steps (as diurnal load does) rather than jumping
    straight to the peak: a reactive controller can only avoid deep
    queues if demand grows no faster than one scaling decision per step.
    Smoke halves only the heavy phases (peak, read-heavy): the ramp
    steps *are* the adaptation window, and the quiet phases are where
    elasticity pays — shrinking either skews the transient's weight or
    the replica-hours ratio, while costing almost nothing to keep.
    """
    stretch = 1.0 if scale == "full" else 0.5
    return (
        Phase("quiet-am", rate=30.0, duration=12.0, key_space=200),
        Phase("ramp-1", rate=80.0, duration=3.0, key_space=1000),
        Phase("ramp-2", rate=140.0, duration=3.0, key_space=1000),
        Phase("ramp-3", rate=200.0, duration=3.0, key_space=1000),
        Phase("peak", rate=250.0, duration=10.0 * stretch, key_space=STUDENTS),
        Phase("read-heavy", rate=80.0, duration=10.0 * stretch, key_space=8),
        Phase("quiet-pm", rate=30.0, duration=12.0, key_space=200),
    )


def build_capacity_system(
    mode: str,
    seed: int = 42,
    queue_bound: int = 8,
) -> Tuple[WhisperSystem, DeployedService]:
    """Deploy the uniform student-lookup service in one of two shapes.

    ``"autoscaled"`` starts at the elastic floor with the autoscaler,
    breaker, and semantic cache armed; ``"static-max"`` pins
    ``MAX_REPLICAS`` plain replicas (no capacity layer at all) — the
    provision-for-peak baseline the gates price the elastic mode against.
    """

    def implementation(index: int) -> ServiceImplementation:
        impl = student_lookup_operational(student_database(STUDENTS))
        impl.service_time = SERVICE_TIME
        return impl

    if mode == "autoscaled":
        replicas, extras = MIN_REPLICAS, dict(
            autoscale=AUTOSCALE, circuit_breaker=BREAKER, result_cache=CACHE
        )
    elif mode == "static-max":
        replicas, extras = MAX_REPLICAS, {}
    else:
        raise ValueError(f"unknown capacity mode {mode!r}")
    config = ScenarioConfig(
        seed=seed,
        replicas=replicas,
        students=STUDENTS,
        load_sharing=True,
        queue_bound=queue_bound,
        **extras,
    )
    system = WhisperSystem(config)
    service = system.deploy_service(
        student_management_wsdl(),
        [implementation(index) for index in range(replicas)],
        web_host="web0",
        replica_factory=implementation if mode == "autoscaled" else None,
    )
    return system, service


def run_diurnal(
    mode: str,
    phases: Sequence[Phase],
    seed: int = 42,
    settle: float = 6.0,
    call_timeout: float = 10.0,
) -> Dict[str, Any]:
    """Drive the full trace against one deployment; return its ledger."""
    system, service = build_capacity_system(mode, seed=seed)
    system.settle(settle)
    controller = service.autoscalers[0] if service.autoscalers else None
    started = system.env.now
    replica_base = (
        controller.replica_seconds_total(started) if controller is not None else 0.0
    )
    cache = service.proxy.result_cache
    per_phase: List[Dict[str, Any]] = []
    latencies: List[float] = []
    totals = {"requests": 0, "successes": 0, "shed": 0, "faults": 0, "timeouts": 0}
    for phase in phases:
        hits0 = cache.hits if cache is not None else 0
        misses0 = cache.misses if cache is not None else 0
        workload = PoissonWorkload(
            system,
            service.address,
            service.path,
            "StudentInformation",
            rate=phase.rate,
            duration=phase.duration,
            call_timeout=call_timeout,
            arguments=phase.arguments(),
            rng_stream=f"capacity-{phase.name}",
        )
        result = workload.run()
        latencies.extend(result.latencies)
        for key in totals:
            totals[key] += getattr(result, key)
        hits = (cache.hits - hits0) if cache is not None else 0
        misses = (cache.misses - misses0) if cache is not None else 0
        lookups = hits + misses
        per_phase.append(
            {
                "phase": phase.name,
                "rate": phase.rate,
                "duration_s": phase.duration,
                "requests": result.requests,
                "availability": result.availability,
                "shed": result.shed,
                "p50_ms": _pct(result.latencies, 50.0) * 1000,
                "p99_ms": _pct(result.latencies, 99.0) * 1000,
                "cache_hits": hits,
                "cache_misses": misses,
                "cache_hit_ratio": (hits / lookups) if lookups else 0.0,
                "replicas_after": (
                    len(controller.active_peers())
                    if controller is not None
                    else len(service.group.peers)
                ),
            }
        )
    finished = system.env.now
    wall = finished - started
    if controller is not None:
        replica_seconds = controller.replica_seconds_total(finished) - replica_base
        violations = (
            autoscale_violations(service.autoscalers)
            + retirement_violations(service.autoscalers)
            + breaker_violations(service.proxy)
            + rescache_violations(service.proxy)
        )
        scale_events = [
            {"at": event.at - started, "direction": event.direction,
             "replicas": event.replicas}
            for event in controller.events
        ]
    else:
        replica_seconds = len(service.group.peers) * wall
        violations, scale_events = [], []
    requests = totals["requests"]
    return {
        "mode": mode,
        "wall_s": wall,
        "requests": requests,
        "availability": (totals["successes"] / requests) if requests else 1.0,
        "shed": totals["shed"],
        "faults": totals["faults"],
        "timeouts": totals["timeouts"],
        "p50_ms": _pct(latencies, 50.0) * 1000,
        "p99_ms": _pct(latencies, 99.0) * 1000,
        "replica_seconds": replica_seconds,
        "scale_events": scale_events,
        "stale_epoch_serves": cache.stale_epoch_serves if cache is not None else 0,
        "phases": per_phase,
        "invariant_violations": violations,
    }


def run_breaker_drill(seed: int = 42, settle: float = 6.0) -> Dict[str, Any]:
    """Trip the breaker on a dead group, then heal it through a probe."""
    system = WhisperSystem(
        ScenarioConfig(
            seed=seed,
            replicas=2,
            load_sharing=True,
            circuit_breaker=BreakerSpec(
                window=8, min_calls=2, failure_threshold=0.5, open_duration=2.0
            ),
            request_timeout=0.5,
            deadline_budget=2.0,
        )
    )
    service = system.deploy_student_service()
    system.settle(settle)
    node, _soap = system.add_client("drill-client")
    outcomes: List[str] = []

    def invoke(count: int, gap: float):
        for _ in range(count):
            try:
                yield from service.invoke("StudentInformation", {"ID": "S00001"})
            except CircuitOpenError:
                outcomes.append("rejected")
            except Exception:
                outcomes.append("failed")
            else:
                outcomes.append("ok")
            yield system.env.timeout(gap)

    system.run_process(invoke(3, 0.2), node=node)
    for peer in service.group.peers:
        peer.node.crash()
    system.run_process(invoke(6, 0.3), node=node)
    tripped = "rejected" in outcomes
    for peer in service.group.peers:
        peer.node.restart()
    system.settle(6.0)
    system.run_process(invoke(3, 0.3), node=node)
    breaker = next(iter(service.proxy._breakers.values()))
    return {
        "outcomes": outcomes,
        "tripped": tripped,
        "rejections": len(breaker.rejections),
        "healed": outcomes[-1] == "ok" and breaker.state == "closed",
        "transitions": [
            (transition.source, transition.target) for transition in breaker.transitions
        ],
        "unjustified_trips": breaker_violations(service.proxy),
    }


def run_fig4_guard(seed: int = 42, settle: float = 10.0) -> Dict[str, Any]:
    """Byte-identity: capacity specs left ``None`` vs the untouched seed.

    Both paths run the same single invocation; the specs-default
    deployment must count exactly the seed's messages — the capacity
    layer may not perturb a deployment that never asked for it.
    """

    def counts(config: ScenarioConfig):
        system = WhisperSystem(config)
        service = system.deploy_student_service()
        system.settle(settle)
        node, _soap = system.add_client()
        system.run_process(
            service.invoke("StudentInformation", {"ID": "S00001"}), node
        )
        return (
            system.trace.sent_total,
            system.trace.delivered_total,
            dict(system.trace.sent_by_category),
        )

    seed_path = counts(ScenarioConfig(seed=seed, replicas=3))
    explicit = counts(
        ScenarioConfig(
            seed=seed,
            replicas=3,
            autoscale=None,
            circuit_breaker=None,
            result_cache=None,
        )
    )
    return {
        "seed_sent": seed_path[0],
        "specs_none_sent": explicit[0],
        "identical": seed_path == explicit,
    }


def run_capacity(
    scale: str = "full",
    seed: int = 42,
    progress=None,
) -> Dict[str, Any]:
    """The full adaptive-capacity measurement; the BENCH_capacity record."""

    def say(text: str) -> None:
        if progress is not None:
            progress(text)

    phases = diurnal_phases(scale)
    say("diurnal trace, autoscaled (2..6 replicas + breaker + cache) ...")
    autoscaled = run_diurnal("autoscaled", phases, seed=seed)
    say(f"diurnal trace, static-max ({MAX_REPLICAS} replicas) ...")
    static = run_diurnal("static-max", phases, seed=seed)
    say("breaker drill (trip on dead group, heal through probe) ...")
    drill = run_breaker_drill(seed=seed)
    say("figure-4 byte-identity guard ...")
    fig4 = run_fig4_guard(seed=seed)

    ratio = (
        autoscaled["replica_seconds"] / static["replica_seconds"]
        if static["replica_seconds"]
        else 1.0
    )
    hot = next(p for p in autoscaled["phases"] if p["phase"] == "read-heavy")
    assertions = {
        "replica_hours_economical": ratio <= 0.6,
        "availability_parity": (
            static["availability"] - autoscaled["availability"] <= 0.02
        ),
        "p99_within_band": autoscaled["p99_ms"] <= 1.5 * static["p99_ms"],
        "scaled_up_and_down": (
            any(e["direction"] == "up" for e in autoscaled["scale_events"])
            and any(e["direction"] == "down" for e in autoscaled["scale_events"])
        ),
        "cache_hot_phase_hits": hot["cache_hit_ratio"] >= 0.5,
        "zero_stale_epoch_serves": autoscaled["stale_epoch_serves"] == 0,
        "capacity_invariants_clean": not autoscaled["invariant_violations"],
        "breaker_trips_and_heals": (
            drill["tripped"] and drill["healed"] and not drill["unjustified_trips"]
        ),
        "fig4_byte_identical": fig4["identical"],
    }
    return {
        "schema": "repro-capacity/1",
        "generated_by": "python -m repro capacity",
        "scale": scale,
        "seed": seed,
        "python": platform.python_version(),
        "autoscaled": autoscaled,
        "static_max": static,
        "replica_seconds_ratio": ratio,
        "breaker_drill": drill,
        "fig4_guard": fig4,
        "assertions": assertions,
        "ok": all(assertions.values()),
    }


def check_record(record: Dict[str, Any]) -> List[str]:
    """Human-readable failures for a record's assertions (empty = pass)."""
    return [
        f"capacity assertion failed: {name}"
        for name, held in record.get("assertions", {}).items()
        if not held
    ]


def format_record(record: Dict[str, Any]) -> str:
    """Human-readable tables for one BENCH_capacity record."""
    lines: List[str] = []
    for run in (record["autoscaled"], record["static_max"]):
        lines.append(f"== diurnal trace: {run['mode']} ==")
        lines.append(
            f"{'phase':>11} {'rate':>6} {'reqs':>6} {'avail':>7} {'shed':>5} "
            f"{'p99':>8} {'hit%':>5} {'repl':>5}"
        )
        for phase in run["phases"]:
            lines.append(
                f"{phase['phase']:>11} {phase['rate']:>5.0f}/s {phase['requests']:>6} "
                f"{phase['availability']:>7.4f} {phase['shed']:>5} "
                f"{phase['p99_ms']:>6.1f}ms {phase['cache_hit_ratio']*100:>4.0f}% "
                f"{phase['replicas_after']:>5}"
            )
        lines.append(
            f"overall: avail={run['availability']:.4f} p99={run['p99_ms']:.1f}ms "
            f"replica-seconds={run['replica_seconds']:.1f} "
            f"stale-epoch-serves={run['stale_epoch_serves']}"
        )
        if run["scale_events"]:
            moves = ", ".join(
                f"{e['direction']}@{e['at']:.1f}s→{e['replicas']}"
                for e in run["scale_events"]
            )
            lines.append(f"scale events: {moves}")
        lines.append("")
    lines.append(
        f"replica-hours: autoscaled / static-max = "
        f"{record['replica_seconds_ratio']:.3f} (gate <= 0.6)"
    )
    drill = record["breaker_drill"]
    lines.append(
        "breaker drill: "
        + " ".join(drill["outcomes"])
        + f" | rejections={drill['rejections']} transitions={drill['transitions']}"
    )
    fig4 = record["fig4_guard"]
    lines.append(
        f"figure-4 guard: seed {fig4['seed_sent']} msgs vs specs-None "
        f"{fig4['specs_none_sent']} msgs — "
        + ("IDENTICAL" if fig4["identical"] else "DIVERGED")
    )
    lines.append("")
    lines.append(
        "assertions: "
        + ", ".join(
            f"{name}={'ok' if held else 'FAIL'}"
            for name, held in record["assertions"].items()
        )
    )
    return "\n".join(lines)
