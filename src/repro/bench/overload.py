"""Saturation harness: drive the deployment past its knee, on purpose.

The overload-control work (bounded per-member queues + load-aware
dispatch) needs a reproducible way to ask "what happens at 2x capacity?".
This module builds a deliberately *heterogeneous* deployment — half the
replicas are several times slower than the rest, so blind round-robin
visibly underperforms load-aware dispatch — and runs an open-loop Poisson
workload at a chosen multiple of the aggregate service capacity.

The knee is where offered load meets capacity: for replicas with service
times ``t_i`` the aggregate capacity is ``sum(1 / t_i)`` requests per
second.  Below the knee everything is latency; above it, an unbounded
deployment grows queues without limit (p99 explodes) while a bounded one
sheds the excess with ``Server.Busy`` + a retry-after hint and keeps the
latency of the work it accepts flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..backend.datasets import student_database
from ..backend.services import ServiceImplementation, student_lookup_operational
from ..core.config import ScenarioConfig
from ..core.system import DeployedService, WhisperSystem
from ..wsdl.samples import student_management_wsdl
from .stats import Summary, summarize
from .workload import PoissonWorkload

__all__ = [
    "OverloadPoint",
    "aggregate_capacity",
    "build_overload_system",
    "heterogeneous_implementations",
    "run_overload_point",
]

#: Default replica service times: fast operational lookups next to
#: replicas four times slower (an overloaded database, say).
FAST_SERVICE_TIME = 0.010
SLOW_SERVICE_TIME = 0.040


def heterogeneous_implementations(
    replicas: int = 4,
    students: int = 200,
    fast_time: float = FAST_SERVICE_TIME,
    slow_time: float = SLOW_SERVICE_TIME,
    slow_every: int = 2,
) -> List[ServiceImplementation]:
    """Student-lookup replicas with alternating fast/slow service times."""
    implementations: List[ServiceImplementation] = []
    for index in range(replicas):
        implementation = student_lookup_operational(student_database(students))
        if slow_every and index % slow_every == 1:
            implementation.service_time = slow_time
        else:
            implementation.service_time = fast_time
        implementations.append(implementation)
    return implementations


def aggregate_capacity(implementations: List[ServiceImplementation]) -> float:
    """The knee, in requests/second: ``sum(1 / service_time)``."""
    return sum(1.0 / impl.service_time for impl in implementations)


def build_overload_system(
    config: ScenarioConfig,
    fast_time: float = FAST_SERVICE_TIME,
    slow_time: float = SLOW_SERVICE_TIME,
) -> Tuple[WhisperSystem, DeployedService, float]:
    """Deploy the heterogeneous student service under ``config``.

    Returns ``(system, service, capacity)`` where ``capacity`` is the
    aggregate knee in requests/second.  Load sharing is forced on —
    dispatch policies are meaningless with a coordinator-only group.
    """
    scenario = config.replace(load_sharing=True)
    system = WhisperSystem(scenario)
    implementations = heterogeneous_implementations(
        replicas=scenario.replicas,
        students=scenario.students,
        fast_time=fast_time,
        slow_time=slow_time,
    )
    capacity = aggregate_capacity(implementations)
    service = system.deploy_service(
        student_management_wsdl(), implementations, web_host="web0"
    )
    return system, service, capacity


@dataclass
class OverloadPoint:
    """One saturation measurement: offered rate vs. what the system did."""

    rate: float
    capacity: float
    dispatch: str
    queue_bound: Optional[int]
    requests: int
    successes: int
    shed: int
    faults: int
    timeouts: int
    availability: float
    accepted_availability: float
    throughput: float
    latency: Summary
    coordinator_sheds: int
    retry_after_honored: int

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests refused end-to-end."""
        if self.requests == 0:
            return 0.0
        return self.shed / self.requests

    def row(self) -> List[object]:
        """A table row for the CLI sweep."""
        return [
            f"{self.rate:.0f}",
            f"{self.rate / self.capacity:.2f}x",
            self.requests,
            self.successes,
            self.shed,
            f"{self.shed_rate:.3f}",
            f"{self.accepted_availability:.4f}",
            f"{self.throughput:.1f}",
            f"{self.latency.p50 * 1000:.1f}",
            f"{self.latency.p99 * 1000:.1f}",
        ]


def run_overload_point(
    rate: float,
    duration: float = 10.0,
    config: Optional[ScenarioConfig] = None,
    call_timeout: float = 30.0,
    settle: float = 6.0,
    fast_time: float = FAST_SERVICE_TIME,
    slow_time: float = SLOW_SERVICE_TIME,
) -> OverloadPoint:
    """Run one open-loop saturation point on a fresh deployment."""
    scenario = config if config is not None else ScenarioConfig(seed=42)
    system, service, capacity = build_overload_system(
        scenario, fast_time=fast_time, slow_time=slow_time
    )
    system.settle(settle)
    workload = PoissonWorkload(
        system,
        service.address,
        service.path,
        "StudentInformation",
        rate=rate,
        duration=duration,
        call_timeout=call_timeout,
    )
    result = workload.run()
    dispatch = scenario.dispatch
    return OverloadPoint(
        rate=rate,
        capacity=capacity,
        dispatch=dispatch if isinstance(dispatch, str) else type(dispatch).__name__,
        queue_bound=scenario.queue_bound,
        requests=result.requests,
        successes=result.successes,
        shed=result.shed,
        faults=result.faults,
        timeouts=result.timeouts,
        availability=result.availability,
        accepted_availability=result.accepted_availability,
        throughput=result.throughput,
        latency=result.latency_summary(),
        coordinator_sheds=service.group.total_requests_shed(),
        retry_after_honored=service.proxy.stats.retry_after_honored,
    )
