"""Text rendering of benchmark tables and ASCII figures.

The benchmarks print the same rows/series the paper reports; these helpers
keep that output aligned and reproducible (fixed-width, deterministic
formatting), and can render a quick ASCII scatter so Figure 4's linearity
is visible in the terminal.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .harness import Sweep

__all__ = ["format_table", "format_sweep", "format_phase_breakdown", "ascii_plot"]


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: Optional[str] = None
) -> str:
    """Render an aligned text table."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in formatted)
    return "\n".join(parts)


def format_sweep(sweep: Sweep, title: Optional[str] = None) -> str:
    """Render a sweep as a table: parameter column plus measured columns."""
    columns = sweep.columns()
    headers = [sweep.parameter_name] + columns
    rows = [point.row(columns) for point in sweep.points]
    return format_table(headers, rows, title=title or sweep.name)


def format_phase_breakdown(
    phase_summary: Dict[str, Dict[str, Any]], title: Optional[str] = None
) -> str:
    """Render a per-phase latency breakdown table (milliseconds).

    ``phase_summary`` is the mapping produced by
    :meth:`repro.obs.Observability.phase_summary` (also surfaced as the
    ``"phases"`` key of ``WhisperSystem.status_report()``): one row per
    request phase — discover / bind / invoke / recover / elect / execute —
    so a report can say *which* phase dominates the tail instead of
    printing a single end-to-end number.
    """

    def ms(value: Optional[float]) -> Any:
        return "-" if value is None else value * 1000.0

    rows = [
        [phase, stats["count"], ms(stats["mean"]), ms(stats["p50"]),
         ms(stats["p95"]), ms(stats["max"])]
        for phase, stats in phase_summary.items()
    ]
    return format_table(
        ["phase", "count", "mean (ms)", "p50 (ms)", "p95 (ms)", "max (ms)"],
        rows,
        title=title or "Per-phase latency breakdown",
    )


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A minimal scatter plot for terminal output."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("ascii_plot needs equal-length, non-empty series")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int((x - x_low) / x_span * (width - 1))
        row = int((y - y_low) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"
    lines = [f"{y_label} (max {_format_cell(y_high)})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {_format_cell(x_low)} .. {_format_cell(x_high)}"
    )
    return "\n".join(lines)
