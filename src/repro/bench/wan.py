"""WAN bench: gossip discovery across multi-region topologies.

Four questions about the cross-region discovery layer, answered on the
same simulated testbed as the paper's §5 experiments:

* **Convergence** — after a region-replicated deployment publishes its
  advertisements, how many rumor rounds until every region's rendezvous
  holds every advertisement?  The epidemic claim is O(log R) rounds at
  fanout >= 2; the sweep measures the worst per-advertisement spread
  delay across region counts and checks it against a logarithmic bound.
* **Staleness vs fanout** — the mean spread delay as the rumor fanout
  grows.  Fanout 1 leans on anti-entropy repair and converges slowly;
  every extra unit of fanout buys a sharply shorter tail.
* **Message economy** — steady-state cross-region advertisement traffic,
  gossip vs the flood-federation baseline (``GossipSpec(mode="flood")``),
  over an identical quiet window.  The flood forwards every periodic
  SRDI republication to every region forever; gossip recognises
  unchanged content and sends only periodic digests.
* **Nearest-region latency** — client RTT when the proxy binds its home
  region's group, vs the same client's RTT after the home region's group
  crashes and invocations fail over across the WAN.

The record also carries a **Figure-4 guard**: a single-region topology
expressed through the new API must produce byte-identical message counts
to the seed's flat-LAN path (``topology=None``), proving the WAN layer
costs nothing until a second region exists.
"""

from __future__ import annotations

import math
import platform
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..core.config import ScenarioConfig
from ..core.system import WhisperSystem
from ..core.topology import GossipSpec, Topology

__all__ = [
    "ConvergencePoint",
    "build_wan_system",
    "check_record",
    "format_record",
    "run_convergence",
    "run_latency",
    "run_message_economy",
    "run_staleness",
    "run_wan",
]

#: Advertisement categories that cross the WAN in each mode.
GOSSIP_CATEGORIES = ("gossip-rumor", "gossip-digest", "gossip-delta")
FLOOD_CATEGORIES = ("gossip-flood",)


def _region_names(count: int) -> List[str]:
    return [f"r{index}" for index in range(count)]


def build_wan_system(
    regions: int,
    seed: int = 42,
    replicas: int = 1,
    fanout: int = 2,
    mode: str = "gossip",
    interval: float = 0.5,
    anti_entropy_interval: float = 5.0,
):
    """A region-replicated student service over a full WAN mesh."""
    topology = Topology.mesh(
        _region_names(regions),
        gossip=GossipSpec(
            fanout=fanout,
            interval=interval,
            anti_entropy_interval=anti_entropy_interval,
            mode=mode,
        ),
    )
    system = WhisperSystem(
        ScenarioConfig(seed=seed, replicas=replicas, topology=topology)
    )
    service = system.deploy_student_service()
    return system, service


def _spread_delays(system: WhisperSystem) -> Dict[str, Any]:
    """Per-advertisement spread delay across every region's rendezvous.

    An advertisement's delay is the gap between the first region learning
    it (its origin's SRDI push) and the last region applying it.  Only
    fully spread advertisements have a delay; the count of partially
    spread ones is the non-convergence signal.
    """
    services = list(system.gossip.values())
    union: set = set()
    common: Optional[set] = None
    for gossip in services:
        keys = set(gossip.seen_at)
        union |= keys
        common = keys if common is None else (common & keys)
    common = common or set()
    delays = [
        max(g.seen_at[key] for g in services)
        - min(g.seen_at[key] for g in services)
        for key in sorted(common)
    ]
    return {
        "keys_total": len(union),
        "keys_converged": len(common),
        "max_delay": max(delays) if delays else 0.0,
        "mean_delay": (sum(delays) / len(delays)) if delays else 0.0,
    }


@dataclass
class ConvergencePoint:
    """One region count's spread measurement under a fixed fanout."""

    regions: int
    fanout: int
    interval: float
    keys_total: int
    keys_converged: int
    max_delay: float
    mean_delay: float
    #: Worst spread delay expressed in rumor rounds.
    rounds: float
    #: The O(log R) acceptance bound, in rounds (generous constants, so
    #: only asymptotic misbehaviour — e.g. linear spreading — trips it).
    round_bound: float

    @property
    def converged(self) -> bool:
        return self.keys_total > 0 and self.keys_converged == self.keys_total

    @property
    def within_bound(self) -> bool:
        return self.converged and self.rounds <= self.round_bound

    def to_dict(self) -> Dict[str, Any]:
        return {
            "regions": self.regions,
            "fanout": self.fanout,
            "interval": self.interval,
            "keys_total": self.keys_total,
            "keys_converged": self.keys_converged,
            "max_delay_s": self.max_delay,
            "mean_delay_s": self.mean_delay,
            "rounds": self.rounds,
            "round_bound": self.round_bound,
            "converged": self.converged,
            "within_bound": self.within_bound,
        }


def _round_bound(regions: int) -> float:
    """Rounds allowed for full spread: ``2*log2(R) + 3``.

    One extra round of slack absorbs rumor-loop phase offsets and WAN
    propagation; the doubling absorbs unlucky fanout draws.  Linear
    growth (the flood baseline's worst case under loss) still exceeds it
    from ~8 regions on.
    """
    return 2.0 * math.log2(max(2, regions)) + 3.0


def run_convergence(
    region_counts: Sequence[int] = (2, 3, 4, 6, 8),
    fanout: int = 2,
    seed: int = 42,
    interval: float = 0.5,
    settle: float = 20.0,
) -> List[ConvergencePoint]:
    """Spread delay vs region count at a fixed fanout."""
    points: List[ConvergencePoint] = []
    for regions in region_counts:
        system, _service = build_wan_system(
            regions, seed=seed, fanout=fanout, interval=interval
        )
        system.settle(settle)
        spread = _spread_delays(system)
        points.append(
            ConvergencePoint(
                regions=regions,
                fanout=fanout,
                interval=interval,
                rounds=spread["max_delay"] / interval,
                round_bound=_round_bound(regions),
                **spread,
            )
        )
    return points


def run_staleness(
    fanouts: Sequence[int] = (1, 2, 3, 4),
    regions: int = 4,
    seed: int = 42,
    interval: float = 0.5,
    settle: float = 30.0,
) -> List[ConvergencePoint]:
    """Spread delay vs fanout at a fixed region count.

    ``settle`` must exceed the anti-entropy interval so the fanout-1
    point (which leans on digest repair) still fully converges — its
    *delay* is the staleness being measured.
    """
    points: List[ConvergencePoint] = []
    for fanout in fanouts:
        system, _service = build_wan_system(
            regions, seed=seed, fanout=fanout, interval=interval
        )
        system.settle(settle)
        spread = _spread_delays(system)
        points.append(
            ConvergencePoint(
                regions=regions,
                fanout=fanout,
                interval=interval,
                rounds=spread["max_delay"] / interval,
                round_bound=_round_bound(regions),
                **spread,
            )
        )
    return points


def run_message_economy(
    regions: int = 3,
    seed: int = 42,
    settle: float = 20.0,
    window: float = 30.0,
) -> Dict[str, Any]:
    """Steady-state cross-region advertisement traffic, gossip vs flood.

    Both deployments settle to full convergence first; the counted window
    then contains only keep-alive traffic — periodic SRDI republications,
    which the flood forwards to every region and gossip suppresses down
    to digests.  Two replicas per region make the asymmetry visible:
    flood traffic grows with the number of publishing replicas, digest
    traffic does not.
    """
    counts: Dict[str, Dict[str, Any]] = {}
    for mode, categories in (
        ("gossip", GOSSIP_CATEGORIES),
        ("flood", FLOOD_CATEGORIES),
    ):
        system, _service = build_wan_system(
            regions, seed=seed, replicas=2, mode=mode
        )
        system.settle(settle)
        spread = _spread_delays(system)
        system.reset_counters()
        system.run_until(system.env.now + window)
        by_category = {
            category: system.trace.sent_by_category.get(category, 0)
            for category in categories
        }
        counts[mode] = {
            "messages": sum(by_category.values()),
            "by_category": by_category,
            "converged": spread["keys_converged"] == spread["keys_total"],
            "keys": spread["keys_total"],
        }
    return {
        "regions": regions,
        "window_s": window,
        "gossip": counts["gossip"],
        "flood": counts["flood"],
        "gossip_beats_flood": (
            counts["gossip"]["messages"] < counts["flood"]["messages"]
        ),
    }


def run_latency(
    regions: int = 3,
    seed: int = 42,
    samples: int = 30,
    settle: float = 20.0,
) -> Dict[str, Any]:
    """Client RTT binding the home region vs failing over across the WAN."""
    system, service = build_wan_system(regions, seed=seed, replicas=2)
    system.settle(settle)
    node, _soap = system.add_client("wan-client")
    home: List[float] = []
    remote: List[float] = []

    def drive(latencies: List[float], offset: int):
        for index in range(samples):
            started = system.env.now
            yield from service.invoke(
                "StudentInformation",
                {"ID": f"S{(offset + index) % 200 + 1:05d}"},
                budget=30.0,
            )
            latencies.append(system.env.now - started)
            yield system.env.timeout(0.05)

    system.run_process(drive(home, 0), node=node)
    operation = service.sws.operations()[0]
    home_region = system.topology.home
    for peer in service.region_group_for(operation, home_region).peers:
        peer.node.crash()
    system.run_process(drive(remote, samples), node=node)

    def p50(values: List[float]) -> float:
        ordered = sorted(values)
        return ordered[len(ordered) // 2] if ordered else 0.0

    return {
        "regions": regions,
        "samples": samples,
        "home_p50_ms": p50(home) * 1000,
        "home_mean_ms": (sum(home) / len(home)) * 1000 if home else 0.0,
        "failover_p50_ms": p50(remote) * 1000,
        "failover_mean_ms": (sum(remote) / len(remote)) * 1000 if remote else 0.0,
        "region_preferred": service.proxy.stats.region_preferred,
        "region_failovers": service.proxy.stats.region_failovers,
        "nearest_region_faster": bool(remote) and p50(home) < p50(remote),
    }


def run_fig4_guard(seed: int = 42, settle: float = 10.0) -> Dict[str, Any]:
    """Byte-identity: explicit single-region topology vs the seed path."""

    def counts(topology: Optional[Topology]):
        system = WhisperSystem(
            ScenarioConfig(seed=seed, replicas=3, topology=topology)
        )
        service = system.deploy_student_service()
        system.settle(settle)
        node, _soap = system.add_client()
        system.run_process(
            service.invoke("StudentInformation", {"ID": "S00001"}), node
        )
        return (
            system.trace.sent_total,
            system.trace.delivered_total,
            dict(system.trace.sent_by_category),
        )

    seed_path = counts(None)
    single = counts(Topology.single_region())
    return {
        "seed_sent": seed_path[0],
        "single_region_sent": single[0],
        "identical": seed_path == single,
    }


def run_wan(
    scale: str = "full",
    seed: int = 42,
    progress=None,
) -> Dict[str, Any]:
    """The full WAN measurement; returns the BENCH_wan record dict."""
    if scale == "smoke":
        region_counts: Sequence[int] = (2, 3)
        fanouts: Sequence[int] = (1, 2)
        economy_window, latency_samples = 15.0, 10
    else:
        region_counts = (2, 3, 4, 6, 8)
        fanouts = (1, 2, 3, 4)
        economy_window, latency_samples = 30.0, 30

    def say(text: str) -> None:
        if progress is not None:
            progress(text)

    say("convergence sweep ...")
    convergence = run_convergence(region_counts, seed=seed)
    say("staleness-vs-fanout sweep ...")
    staleness = run_staleness(fanouts, seed=seed)
    say("message economy (gossip vs flood) ...")
    economy = run_message_economy(seed=seed, window=economy_window)
    say("nearest-region latency ...")
    latency = run_latency(seed=seed, samples=latency_samples)
    say("figure-4 byte-identity guard ...")
    fig4 = run_fig4_guard(seed=seed)

    log_rounds = all(
        point.within_bound for point in convergence if point.fanout >= 2
    )
    assertions = {
        "gossip_converges_in_log_rounds": log_rounds,
        "all_points_converged": all(p.converged for p in convergence)
        and all(p.converged for p in staleness),
        "gossip_beats_flood": economy["gossip_beats_flood"],
        "nearest_region_faster": latency["nearest_region_faster"],
        "fig4_byte_identical": fig4["identical"],
    }
    return {
        "schema": "repro-wan/1",
        "generated_by": "python -m repro wan",
        "scale": scale,
        "seed": seed,
        "python": platform.python_version(),
        "convergence": [point.to_dict() for point in convergence],
        "staleness": [point.to_dict() for point in staleness],
        "economy": economy,
        "latency": latency,
        "fig4_guard": fig4,
        "assertions": assertions,
        "ok": all(assertions.values()),
    }


def check_record(record: Dict[str, Any]) -> List[str]:
    """Human-readable failures for a record's assertions (empty = pass)."""
    return [
        f"WAN assertion failed: {name}"
        for name, held in record.get("assertions", {}).items()
        if not held
    ]


def format_record(record: Dict[str, Any]) -> str:
    """Human-readable tables for one BENCH_wan record."""
    lines: List[str] = []
    lines.append(
        f"== convergence (fanout {record['convergence'][0]['fanout']}) =="
        if record["convergence"]
        else "== convergence =="
    )
    lines.append(
        f"{'regions':>8} {'ads':>5} {'spread':>7} {'max delay':>10} "
        f"{'rounds':>7} {'bound':>6} {'ok':>3}"
    )
    for point in record["convergence"]:
        lines.append(
            f"{point['regions']:>8} {point['keys_total']:>5} "
            f"{point['keys_converged']:>7} {point['max_delay_s']*1000:>8.0f}ms "
            f"{point['rounds']:>7.1f} {point['round_bound']:>6.1f} "
            f"{'y' if point['within_bound'] else 'N':>3}"
        )
    lines.append("")
    lines.append(f"== staleness vs fanout ({record['staleness'][0]['regions']} regions) ==")
    lines.append(f"{'fanout':>7} {'mean delay':>11} {'max delay':>10} {'spread':>7}")
    for point in record["staleness"]:
        lines.append(
            f"{point['fanout']:>7} {point['mean_delay_s']*1000:>9.0f}ms "
            f"{point['max_delay_s']*1000:>8.0f}ms "
            f"{point['keys_converged']:>3}/{point['keys_total']}"
        )
    economy = record["economy"]
    lines.append("")
    lines.append(
        f"== cross-region advertisement messages "
        f"({economy['regions']} regions, {economy['window_s']:.0f}s steady) =="
    )
    lines.append(f"gossip: {economy['gossip']['messages']:>6}  {economy['gossip']['by_category']}")
    lines.append(f"flood:  {economy['flood']['messages']:>6}  {economy['flood']['by_category']}")
    lines.append(
        "gossip beats flood: "
        + ("YES" if economy["gossip_beats_flood"] else "NO")
    )
    latency = record["latency"]
    lines.append("")
    lines.append(f"== nearest-region client latency ({latency['regions']} regions) ==")
    lines.append(
        f"home-region bind p50: {latency['home_p50_ms']:.1f} ms "
        f"(region_preferred={latency['region_preferred']})"
    )
    lines.append(
        f"cross-region failover p50: {latency['failover_p50_ms']:.1f} ms "
        f"(region_failovers={latency['region_failovers']})"
    )
    fig4 = record["fig4_guard"]
    lines.append("")
    lines.append(
        f"figure-4 guard: seed {fig4['seed_sent']} msgs vs "
        f"single-region topology {fig4['single_region_sent']} msgs — "
        + ("IDENTICAL" if fig4["identical"] else "DIVERGED")
    )
    lines.append("")
    lines.append("assertions: " + ", ".join(
        f"{name}={'ok' if held else 'FAIL'}"
        for name, held in record["assertions"].items()
    ))
    return "\n".join(lines)
