"""The benchmark harness: workloads, sweeps, statistics, reports.

Reproduces the paper's §5 methodology on the simulated testbed: message
counts per configuration (Figure 4), RTT monitoring (the §5 latency
results), and throughput/latency under load, plus the ablation sweeps
listed in DESIGN.md.
"""

from .harness import Sweep, SweepPoint, run_sweep
from .perf import HEADLINE_SCENARIO, check_record, run_mode, run_perf
from .overload import (
    OverloadPoint,
    aggregate_capacity,
    build_overload_system,
    heterogeneous_implementations,
    run_overload_point,
)
from .report import ascii_plot, format_phase_breakdown, format_sweep, format_table
from .stats import LinearFit, Summary, linear_fit, percentile, summarize
from .workload import ClosedLoopWorkload, PoissonWorkload, WorkloadResult

__all__ = [
    "HEADLINE_SCENARIO",
    "ClosedLoopWorkload",
    "LinearFit",
    "OverloadPoint",
    "PoissonWorkload",
    "Summary",
    "Sweep",
    "SweepPoint",
    "WorkloadResult",
    "aggregate_capacity",
    "ascii_plot",
    "build_overload_system",
    "check_record",
    "format_phase_breakdown",
    "format_sweep",
    "format_table",
    "heterogeneous_implementations",
    "linear_fit",
    "percentile",
    "run_mode",
    "run_overload_point",
    "run_perf",
    "run_sweep",
    "summarize",
]
