"""Workload generators for the benchmark harness.

Two client models drive the Whisper front-end:

* **closed loop** — a fixed population of clients, each issuing the next
  request after the previous completes plus a think time (the usual B2B
  integration pattern: one in-flight request per partner);
* **open loop (Poisson)** — requests arrive at a target rate regardless of
  completions, which exposes saturation in the throughput/latency sweep.

Both record per-request latency and outcome into a :class:`WorkloadResult`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.system import WhisperSystem
from ..simnet.events import Interrupt
from ..soap.client import SoapClient
from ..soap.fault import SoapFault
from ..soap.http import RequestTimeout
from .stats import Summary, summarize

__all__ = ["WorkloadResult", "ClosedLoopWorkload", "PoissonWorkload"]

#: Process-wide counter for workload host names: ``id(self)``-derived
#: names collide when a freed workload's address is reused, which breaks
#: multi-phase benches that run one workload after another.
_workload_ids = itertools.count()


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    latencies: List[float] = field(default_factory=list)
    successes: int = 0
    faults: int = 0
    timeouts: int = 0
    #: Requests refused end-to-end by admission control (terminal
    #: ``Server.Busy`` faults) — counted separately from ``faults`` so
    #: overload sheds are distinguishable from application errors.
    shed: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def requests(self) -> int:
        return self.successes + self.faults + self.timeouts + self.shed

    @property
    def availability(self) -> float:
        """Fraction of requests answered successfully."""
        if self.requests == 0:
            return 1.0
        return self.successes / self.requests

    @property
    def accepted(self) -> int:
        """Requests the system admitted (everything it did not shed)."""
        return self.requests - self.shed

    @property
    def accepted_availability(self) -> float:
        """Fraction of *admitted* requests answered successfully.

        Under overload control this is the headline number: shedding is a
        deliberate refusal, so it should not drag down the success rate of
        the work the system agreed to do.
        """
        if self.accepted == 0:
            return 1.0
        return self.successes / self.accepted

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def throughput(self) -> float:
        """Successful requests per second of simulated time."""
        if self.duration <= 0:
            return 0.0
        return self.successes / self.duration

    def latency_summary(self) -> Summary:
        return summarize(self.latencies)


#: Builds the argument dict for request number ``i``.
ArgumentFactory = Callable[[int], Dict[str, Any]]


def _student_arguments(index: int) -> Dict[str, Any]:
    return {"ID": f"S{(index % 200) + 1:05d}"}


class ClosedLoopWorkload:
    """A fixed population of think-time clients."""

    def __init__(
        self,
        system: WhisperSystem,
        address: Tuple[str, int],
        path: str,
        operation: str,
        clients: int = 1,
        think_time: float = 0.05,
        requests_per_client: int = 50,
        call_timeout: float = 30.0,
        arguments: Optional[ArgumentFactory] = None,
    ):
        self.system = system
        self.address = address
        self.path = path
        self.operation = operation
        self.clients = clients
        self.think_time = think_time
        self.requests_per_client = requests_per_client
        self.call_timeout = call_timeout
        self.arguments = arguments or _student_arguments
        self.result = WorkloadResult()
        self._workload_id = next(_workload_ids)

    def run(self) -> WorkloadResult:
        """Execute the workload to completion (advances the simulation)."""
        env = self.system.env
        self.result.started_at = env.now
        processes = []
        for client_index in range(self.clients):
            node = self.system.network.add_host(
                f"client-{client_index}-{self._workload_id}"
            )
            soap = SoapClient(node, default_timeout=self.call_timeout)
            processes.append(
                node.spawn(
                    self._client_loop(soap, client_index),
                    name=f"workload-client-{client_index}",
                )
            )
        for process in processes:
            env.run(until=process)
        self.result.finished_at = env.now
        return self.result

    def _client_loop(self, soap: SoapClient, client_index: int):
        env = self.system.env
        for request_index in range(self.requests_per_client):
            sequence = client_index * self.requests_per_client + request_index
            started = env.now
            try:
                yield from soap.call(
                    self.address,
                    self.path,
                    self.operation,
                    self.arguments(sequence),
                    timeout=self.call_timeout,
                )
            except SoapFault as fault:
                if fault.is_busy:
                    self.result.shed += 1
                else:
                    self.result.faults += 1
            except RequestTimeout:
                self.result.timeouts += 1
            except Interrupt:
                return
            else:
                self.result.successes += 1
                self.result.latencies.append(env.now - started)
            if self.think_time > 0:
                yield env.timeout(self.think_time)


class PoissonWorkload:
    """Open-loop arrivals at a fixed rate from one injector host."""

    def __init__(
        self,
        system: WhisperSystem,
        address: Tuple[str, int],
        path: str,
        operation: str,
        rate: float = 50.0,
        duration: float = 10.0,
        call_timeout: float = 30.0,
        arguments: Optional[ArgumentFactory] = None,
        rng_stream: str = "poisson-workload",
    ):
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.system = system
        self.address = address
        self.path = path
        self.operation = operation
        self.rate = rate
        self.duration = duration
        self.call_timeout = call_timeout
        self.arguments = arguments or _student_arguments
        self.rng = system.network.rng.stream(rng_stream)
        self.result = WorkloadResult()
        self._workload_id = next(_workload_ids)
        self._outstanding = 0
        self._drained = None

    def run(self) -> WorkloadResult:
        env = self.system.env
        node = self.system.network.add_host(f"injector-{self._workload_id}")
        self.result.started_at = env.now
        arrival_process = node.spawn(self._arrival_loop(node), name="poisson-arrivals")
        env.run(until=arrival_process)
        # Drain in-flight calls; re-arm the event in case it fired early.
        while self._outstanding > 0:
            self._drained = env.event()
            env.run(until=self._drained)
        self.result.finished_at = env.now
        return self.result

    def _arrival_loop(self, node):
        env = self.system.env
        deadline = env.now + self.duration
        sequence = 0
        while env.now < deadline:
            gap = self.rng.expovariate(self.rate)
            yield env.timeout(gap)
            if env.now >= deadline:
                break
            soap = SoapClient(node, default_timeout=self.call_timeout)
            self._outstanding += 1
            node.spawn(self._one_call(soap, sequence), name=f"poisson-call-{sequence}")
            sequence += 1

    def _one_call(self, soap: SoapClient, sequence: int):
        env = self.system.env
        started = env.now
        try:
            yield from soap.call(
                self.address,
                self.path,
                self.operation,
                self.arguments(sequence),
                timeout=self.call_timeout,
            )
        except SoapFault as fault:
            if fault.is_busy:
                self.result.shed += 1
            else:
                self.result.faults += 1
        except RequestTimeout:
            self.result.timeouts += 1
        except Interrupt:
            return
        else:
            self.result.successes += 1
            self.result.latencies.append(env.now - started)
        finally:
            self._outstanding -= 1
            if self._outstanding == 0 and self._drained is not None:
                if not self._drained.triggered:
                    self._drained.succeed()
