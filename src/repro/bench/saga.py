"""Saga bench: availability and atomicity of compensated B2B workflows.

The measurement the saga layer exists for, run on the loan-solvency
pipeline (CRUD → business-logic → orchestration) under the seeded fault
campaign: ≥1% network-wide message loss, orchestrator-host crashes
landed at commit-boundary decision points, and a b-peer coordinator
crash for good measure.  Per seed the bench reports:

* **availability** — the fraction of solvent submissions that still
  committed end-to-end through crashes and loss;
* **p99 latency** — simulated seconds from submission to terminal state
  over the committed sagas;
* **compensation correctness** — the saga atomicity audit
  (:func:`repro.check.invariants.saga_atomicity_violations`) over the
  durable saga log and every backend effect ledger: zero mixed-outcome
  sagas, zero double rollbacks, every insolvent submission compensated;
* **the baseline** — the identical run with compensation *disabled*,
  which must strand partial effects (registered-but-never-funded loans)
  — the measured cost of not having the saga layer.

``python -m repro saga`` writes the record to ``BENCH_saga.json``;
``make saga-smoke`` runs the single-seed variant CI uploads.
"""

from __future__ import annotations

import platform
from typing import Any, Dict, List, Optional, Sequence

from ..check.saga import (
    ORCHESTRATOR_HOST,
    SagaCheckScenario,
    SagaRunResult,
    loan_saga_context,
    run_saga_schedule,
)
from ..check.schedule import FaultOp, Schedule

__all__ = ["run_saga_bench", "check_record", "format_record"]

SEEDS = (7, 11, 42)
LOSS_RATE = 0.01


def _fault_schedule(decisions: int, label: str) -> Schedule:
    """Orchestrator crashes at commit boundaries + one coordinator kill.

    Decisions are aimed as fractions of the clean run's decision count,
    so the same recipe lands mid-workload at every seed and scale; the
    ``pre-commit`` point pins the orchestrator crashes to the instant a
    b-peer is about to apply a side effect — the in-doubt window the
    write-ahead saga log exists for.
    """
    at = lambda fraction: max(1, int(decisions * fraction))  # noqa: E731
    return Schedule(
        ops=(
            FaultOp(
                at_decision=at(0.25),
                action="crash",
                target=ORCHESTRATOR_HOST,
                duration=3.0,
                point="pre-commit",
            ),
            FaultOp(at_decision=at(0.45), action="crash-coordinator", duration=3.0),
            FaultOp(
                at_decision=at(0.65),
                action="crash",
                target=ORCHESTRATOR_HOST,
                duration=3.0,
                point="pre-commit",
            ),
        ),
        label=label,
    )


def _percentile(values: Sequence[float], fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _seed_result(seed: int, sagas: int) -> Dict[str, Any]:
    """One seed's measurement: clean run, faulted run, stranded baseline."""
    scenario = SagaCheckScenario(seed=seed, sagas=sagas, loss_rate=LOSS_RATE)
    clean = run_saga_schedule(scenario, Schedule(label=f"seed{seed}/clean"))
    schedule = _fault_schedule(clean.decisions, f"seed{seed}/faults")
    faulted = run_saga_schedule(scenario, schedule)
    baseline = run_saga_schedule(
        scenario.replace(compensation_enabled=False),
        schedule,
        halt_on_violation=False,
    )

    def digestible(run: SagaRunResult) -> Dict[str, Any]:
        solvent = [
            f"loan-{index:04d}"
            for index in range(sagas)
            if not loan_saga_context(scenario, index)["insolvent"]
        ]
        insolvent = [
            f"loan-{index:04d}"
            for index in range(sagas)
            if loan_saga_context(scenario, index)["insolvent"]
        ]
        solvent_submitted = [s for s in solvent if s in run.saga_states]
        committed = [
            s for s in solvent_submitted if run.saga_states[s] == "committed"
        ]
        insolvent_committed = [
            s
            for s in insolvent
            if run.saga_states.get(s) == "committed"
        ]
        latencies = [
            run.saga_elapsed[s] for s in committed if s in run.saga_elapsed
        ]
        return {
            "submitted": run.submitted,
            "solvent_submitted": len(solvent_submitted),
            "committed": run.committed,
            "compensated": run.compensated,
            "abandoned": run.abandoned,
            "dead_lettered": run.dead_lettered,
            "recoveries": run.recoveries,
            "availability": (
                len(committed) / len(solvent_submitted)
                if solvent_submitted
                else 0.0
            ),
            "p99_s": _percentile(latencies, 0.99),
            "p50_s": _percentile(latencies, 0.50),
            "insolvent_committed": len(insolvent_committed),
            "violations": list(run.violations),
            "effects_applied": run.effects_applied,
            "sim_time": run.sim_time,
        }

    stranded = [v for v in baseline.violations if "stranded" in v]
    return {
        "seed": seed,
        "schedule": schedule.describe(),
        "clean": digestible(clean),
        "faulted": digestible(faulted),
        "baseline": {
            **digestible(baseline),
            "stranded_violations": stranded,
        },
    }


def run_saga_bench(
    scale: str = "full",
    seeds: Optional[Sequence[int]] = None,
    progress=None,
) -> Dict[str, Any]:
    """The full saga measurement; returns the BENCH_saga record dict."""
    if seeds is None:
        seeds = SEEDS[:1] if scale == "smoke" else SEEDS
    sagas = 10 if scale == "smoke" else 24

    def say(text: str) -> None:
        if progress is not None:
            progress(text)

    results: List[Dict[str, Any]] = []
    for seed in seeds:
        say(f"seed {seed}: clean + faulted + no-compensation baseline ...")
        results.append(_seed_result(seed, sagas))

    assertions = {
        # The headline guarantee: with compensation on, the atomicity
        # audit is silent on every seed even under loss + crashes.
        "zero_mixed_outcome_sagas": all(
            not r["faulted"]["violations"] and not r["clean"]["violations"]
            for r in results
        ),
        # The counterfactual: without compensation the same schedules
        # strand partial effects — the defect the saga layer removes.
        "baseline_strands_partial_effects": all(
            r["baseline"]["stranded_violations"] for r in results
        ),
        # An insolvent applicant's loan must never survive to booking.
        "insolvent_never_committed": all(
            r["faulted"]["insolvent_committed"] == 0
            and r["clean"]["insolvent_committed"] == 0
            for r in results
        ),
        # Crash recovery actually ran (the schedules crash the
        # orchestrator twice; a run that never recovered proves nothing).
        "orchestrator_recovered": all(
            r["faulted"]["recoveries"] >= 1 for r in results
        ),
        # Solvent traffic stays mostly available through the campaign.
        "availability_floor": all(
            r["faulted"]["availability"] >= 0.5 for r in results
        ),
    }
    return {
        "schema": "repro-saga/1",
        "generated_by": "python -m repro saga",
        "scale": scale,
        "seeds": list(seeds),
        "sagas_per_seed": sagas,
        "loss_rate": LOSS_RATE,
        "python": platform.python_version(),
        "results": results,
        "assertions": assertions,
        "ok": all(assertions.values()),
    }


def check_record(record: Dict[str, Any]) -> List[str]:
    """Human-readable failures for a record's assertions (empty = pass)."""
    return [
        f"saga assertion failed: {name}"
        for name, held in record.get("assertions", {}).items()
        if not held
    ]


def format_record(record: Dict[str, Any]) -> str:
    """Human-readable tables for one BENCH_saga record."""
    lines: List[str] = []
    lines.append(
        f"== saga bench (loss {record['loss_rate']:.1%}, "
        f"{record['sagas_per_seed']} sagas/seed) =="
    )
    lines.append(
        f"{'seed':>5} {'mode':>9} {'avail':>6} {'p50':>7} {'p99':>7} "
        f"{'cmt':>4} {'comp':>5} {'aband':>6} {'dlq':>4} {'rec':>4} {'viol':>5}"
    )
    for result in record["results"]:
        for mode in ("clean", "faulted", "baseline"):
            row = result[mode]
            lines.append(
                f"{result['seed']:>5} {mode:>9} "
                f"{row['availability']*100:>5.0f}% "
                f"{row['p50_s']:>6.2f}s {row['p99_s']:>6.2f}s "
                f"{row['committed']:>4} {row['compensated']:>5} "
                f"{row['abandoned']:>6} {row['dead_lettered']:>4} "
                f"{row['recoveries']:>4} {len(row['violations']):>5}"
            )
    lines.append("")
    for result in record["results"]:
        stranded = result["baseline"]["stranded_violations"]
        lines.append(
            f"seed {result['seed']}: no-saga baseline strands "
            f"{len(stranded)} partial effect(s)"
        )
    lines.append("")
    lines.append("assertions: " + ", ".join(
        f"{name}={'ok' if held else 'FAIL'}"
        for name, held in record["assertions"].items()
    ))
    return "\n".join(lines)
