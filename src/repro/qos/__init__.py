"""QoS metrics, aggregation, and peer selection (§2.4).

The paper flags *semantic QoS integration* as the further integration
dimension beyond data and function: after semantic discovery finds a
matching b-peer group, selection should pick the peer "that provides the
best quality criteria match".  This package provides the time/cost/
reliability model, online profiles, composition-structure aggregation, and
the SAW-based selector (with random/round-robin baselines for ablation).
"""

from .aggregation import conditional, loop, parallel, sequence
from .metrics import QosMetrics, QosProfile
from .selection import QosSelector, QosWeights, RandomSelector, RoundRobinSelector

__all__ = [
    "QosMetrics",
    "QosProfile",
    "QosSelector",
    "QosWeights",
    "RandomSelector",
    "RoundRobinSelector",
    "conditional",
    "loop",
    "parallel",
    "sequence",
]
