"""QoS-based peer selection.

"After discovering a JXTA peer whose data and functional semantics match
the semantics of the required Web service, the next step is to select the
most suitable peer" (§2.4).  Candidates are ranked by a weighted sum of
min–max-normalised dimensions (the standard SAW — simple additive
weighting — method of the QoS-selection literature).  Random and
round-robin selectors provide the ablation baselines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from .metrics import QosMetrics

__all__ = [
    "QosWeights",
    "QosSelector",
    "RandomSelector",
    "RoundRobinSelector",
]


@dataclass(frozen=True)
class QosWeights:
    """Relative importance of each dimension (need not sum to one)."""

    time: float = 1.0
    cost: float = 1.0
    reliability: float = 1.0

    def __post_init__(self):
        if min(self.time, self.cost, self.reliability) < 0:
            raise ValueError("weights must be non-negative")
        if self.time + self.cost + self.reliability == 0:
            raise ValueError("at least one weight must be positive")


def _normalise(value: float, low: float, high: float, lower_is_better: bool) -> float:
    """Min–max normalise to [0, 1] where 1 is best."""
    if high <= low:
        return 1.0
    scaled = (value - low) / (high - low)
    return 1.0 - scaled if lower_is_better else scaled


class QosSelector:
    """Ranks candidates by weighted normalised QoS score."""

    def __init__(self, weights: Optional[QosWeights] = None):
        self.weights = weights or QosWeights()

    def score_all(
        self, candidates: Dict[Hashable, QosMetrics]
    ) -> List[Tuple[Hashable, float]]:
        """``(candidate, score)`` pairs, best first, deterministic ties."""
        if not candidates:
            return []
        times = [m.time for m in candidates.values()]
        costs = [m.cost for m in candidates.values()]
        reliabilities = [m.reliability for m in candidates.values()]
        t_low, t_high = min(times), max(times)
        c_low, c_high = min(costs), max(costs)
        r_low, r_high = min(reliabilities), max(reliabilities)
        weight_sum = self.weights.time + self.weights.cost + self.weights.reliability

        scored = []
        for key, metrics in candidates.items():
            score = (
                self.weights.time
                * _normalise(metrics.time, t_low, t_high, lower_is_better=True)
                + self.weights.cost
                * _normalise(metrics.cost, c_low, c_high, lower_is_better=True)
                + self.weights.reliability
                * _normalise(metrics.reliability, r_low, r_high, lower_is_better=False)
            ) / weight_sum
            scored.append((key, score))
        scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return scored

    def select(self, candidates: Dict[Hashable, QosMetrics]) -> Optional[Hashable]:
        """The best candidate, or None when there are none."""
        ranked = self.score_all(candidates)
        return ranked[0][0] if ranked else None


class RandomSelector:
    """Uniform random choice (the no-QoS baseline for Ablation D)."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)

    def select(self, candidates: Dict[Hashable, QosMetrics]) -> Optional[Hashable]:
        if not candidates:
            return None
        ordered = sorted(candidates, key=str)
        return self.rng.choice(ordered)


class RoundRobinSelector:
    """Cycles through candidates (the load-sharing baseline)."""

    def __init__(self):
        self._cursor = 0

    def select(self, candidates: Dict[Hashable, QosMetrics]) -> Optional[Hashable]:
        if not candidates:
            return None
        ordered = sorted(candidates, key=str)
        choice = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return choice
