"""QoS aggregation over composition structures.

Cardoso's workflow-QoS model (reference [11] of the paper) computes the
QoS of a composite process from its parts by structural reduction.  B2B
processes built on Whisper services (see ``examples/b2b_supply_chain.py``)
use these rules to predict end-to-end time/cost/reliability:

* **sequence**   — times and costs add, reliabilities multiply;
* **parallel**   — time is the slowest branch, costs add, reliabilities
  multiply (every branch must succeed);
* **conditional** — probability-weighted average of the branches;
* **loop**       — a body executed a geometrically distributed number of
  times.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .metrics import QosMetrics

__all__ = ["sequence", "parallel", "conditional", "loop"]


def sequence(parts: Sequence[QosMetrics]) -> QosMetrics:
    """QoS of ``parts`` executed one after another."""
    if not parts:
        raise ValueError("sequence() needs at least one part")
    time = sum(part.time for part in parts)
    cost = sum(part.cost for part in parts)
    reliability = 1.0
    for part in parts:
        reliability *= part.reliability
    return QosMetrics(time=time, cost=cost, reliability=reliability)


def parallel(parts: Sequence[QosMetrics]) -> QosMetrics:
    """QoS of ``parts`` executed concurrently (all must succeed)."""
    if not parts:
        raise ValueError("parallel() needs at least one part")
    time = max(part.time for part in parts)
    cost = sum(part.cost for part in parts)
    reliability = 1.0
    for part in parts:
        reliability *= part.reliability
    return QosMetrics(time=time, cost=cost, reliability=reliability)


def conditional(branches: Sequence[Tuple[float, QosMetrics]]) -> QosMetrics:
    """QoS of a probabilistic choice among ``(probability, part)`` branches.

    Probabilities must sum to 1 (within tolerance).
    """
    if not branches:
        raise ValueError("conditional() needs at least one branch")
    total = sum(probability for probability, _part in branches)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"branch probabilities sum to {total}, not 1")
    time = sum(p * part.time for p, part in branches)
    cost = sum(p * part.cost for p, part in branches)
    # The weighted mean lies in [0, 1] mathematically; clamp float drift.
    reliability = min(1.0, max(0.0, sum(p * part.reliability for p, part in branches)))
    return QosMetrics(time=time, cost=cost, reliability=reliability)


def loop(body: QosMetrics, repeat_probability: float) -> QosMetrics:
    """QoS of a body repeated while a condition holds.

    With repeat probability ``q`` the expected iteration count is
    ``1 / (1 - q)``; reliability compounds per expected iteration.
    """
    if not 0.0 <= repeat_probability < 1.0:
        raise ValueError(f"repeat probability {repeat_probability} outside [0, 1)")
    expected_iterations = 1.0 / (1.0 - repeat_probability)
    return QosMetrics(
        time=body.time * expected_iterations,
        cost=body.cost * expected_iterations,
        reliability=min(1.0, max(0.0, body.reliability**expected_iterations)),
    )
