"""QoS metrics for peers and services.

§2.4: "Each peer can have different quality aspect and hence selection
involves locating the peer that provides the best quality criteria match.
This demands management of QoS metrics for peers."  We implement the QoS
model of Cardoso's workflow-QoS line of work (the paper's reference [11]):
three dimensions — *time*, *cost*, and *reliability* — tracked per peer as
an online profile updated from observed invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["QosMetrics", "QosProfile"]


@dataclass(frozen=True)
class QosMetrics:
    """A point estimate of a service provider's quality.

    * ``time`` — expected response time in seconds (lower is better);
    * ``cost`` — cost per invocation in arbitrary currency units (lower is
      better);
    * ``reliability`` — probability of successful completion in [0, 1]
      (higher is better).
    """

    time: float
    cost: float
    reliability: float

    def __post_init__(self):
        if self.time < 0:
            raise ValueError(f"negative time {self.time}")
        if self.cost < 0:
            raise ValueError(f"negative cost {self.cost}")
        if not 0.0 <= self.reliability <= 1.0:
            raise ValueError(f"reliability {self.reliability} outside [0, 1]")


@dataclass
class QosProfile:
    """An online QoS estimate, updated from invocation observations.

    The time estimate is an exponentially weighted moving average;
    reliability is the EWMA of the success indicator.  ``alpha`` controls
    how quickly history decays.
    """

    cost: float = 1.0
    alpha: float = 0.2
    initial_time: float = 0.05
    initial_reliability: float = 1.0

    _time: Optional[float] = field(default=None, repr=False)
    _reliability: Optional[float] = field(default=None, repr=False)
    observations: int = 0
    successes: int = 0
    samples: List[float] = field(default_factory=list, repr=False)

    def record_success(self, elapsed: float) -> None:
        """Record a successful invocation that took ``elapsed`` seconds."""
        self.observations += 1
        self.successes += 1
        self.samples.append(elapsed)
        self._time = (
            elapsed
            if self._time is None
            else (1 - self.alpha) * self._time + self.alpha * elapsed
        )
        current = (
            self.initial_reliability if self._reliability is None else self._reliability
        )
        self._reliability = (1 - self.alpha) * current + self.alpha * 1.0

    def record_failure(self) -> None:
        """Record a failed or timed-out invocation."""
        self.observations += 1
        current = (
            self.initial_reliability if self._reliability is None else self._reliability
        )
        self._reliability = (1 - self.alpha) * current + self.alpha * 0.0

    def snapshot(self) -> QosMetrics:
        """The current point estimate."""
        return QosMetrics(
            time=self._time if self._time is not None else self.initial_time,
            cost=self.cost,
            reliability=(
                self._reliability
                if self._reliability is not None
                else self.initial_reliability
            ),
        )

    @property
    def empirical_reliability(self) -> float:
        """Plain success fraction (no decay); 1.0 with no observations."""
        if self.observations == 0:
            return 1.0
        return self.successes / self.observations
