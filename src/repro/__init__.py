"""repro — a reproduction of Whisper (Cardoso, IWDDS/ICDCS 2006).

Whisper is a fault-tolerant Service-Oriented Architecture that increases
Web-service availability by delegating service execution to redundant
groups of peers on a JXTA-like peer-to-peer network, integrated with the
Web-service world through semantic (OWL / WSDL-S) annotations.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.simnet`    — discrete-event kernel + simulated LAN testbed
* :mod:`repro.ontology`  — OWL-lite ontologies, subsumption, matching
* :mod:`repro.wsdl`      — WSDL 1.1 + WSDL-S semantic annotations
* :mod:`repro.soap`      — SOAP envelopes/faults + simulated HTTP
* :mod:`repro.p2p`       — JXTA-like peers, groups, advertisements, discovery
* :mod:`repro.election`  — Bully algorithm + heartbeat failure detection
* :mod:`repro.qos`       — QoS metrics and peer selection
* :mod:`repro.backend`   — service backends (operational DB, warehouse)
* :mod:`repro.core`      — Whisper itself: semantic services, SWS-proxies,
  b-peers, b-peer groups, fault-tolerant invocation
* :mod:`repro.bench`     — workload generators, sweeps, statistics, reports
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
