"""A working subset of XML Schema for WSDL message types.

WSDL describes message parts with XML-Schema elements.  Whisper only needs
enough of XSD to (a) give each part a named, structured type and (b)
validate the Python values that flow through SOAP encoding.  We support the
usual built-in simple types plus named complex types with element fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "XSD_NS",
    "BUILTIN_TYPES",
    "ElementDecl",
    "ComplexType",
    "Schema",
    "SchemaError",
]

XSD_NS = "http://www.w3.org/2001/XMLSchema"

#: Built-in simple types and the Python types they accept.
BUILTIN_TYPES: Dict[str, tuple] = {
    "string": (str,),
    "int": (int,),
    "integer": (int,),
    "long": (int,),
    "float": (int, float),
    "double": (int, float),
    "decimal": (int, float),
    "boolean": (bool,),
    "date": (str,),
    "dateTime": (str,),
    "anyURI": (str,),
}


class SchemaError(Exception):
    """Raised when a value does not conform to its declared type."""


@dataclass
class ElementDecl:
    """One field of a complex type (or a global element declaration)."""

    name: str
    type_name: str  # "xsd:string" or a schema-local complex type name
    min_occurs: int = 1
    max_occurs: int = 1  # -1 means unbounded

    @property
    def required(self) -> bool:
        return self.min_occurs >= 1

    @property
    def repeated(self) -> bool:
        return self.max_occurs == -1 or self.max_occurs > 1


@dataclass
class ComplexType:
    """A named sequence of element declarations."""

    name: str
    elements: List[ElementDecl] = field(default_factory=list)

    def element(self, name: str) -> Optional[ElementDecl]:
        for declaration in self.elements:
            if declaration.name == name:
                return declaration
        return None


class Schema:
    """A collection of named types plus global element declarations."""

    def __init__(self, target_namespace: str = ""):
        self.target_namespace = target_namespace
        self.complex_types: Dict[str, ComplexType] = {}
        self.elements: Dict[str, ElementDecl] = {}

    # -- construction ------------------------------------------------------------

    def add_complex_type(self, complex_type: ComplexType) -> ComplexType:
        if complex_type.name in self.complex_types:
            raise SchemaError(f"duplicate complex type {complex_type.name!r}")
        self.complex_types[complex_type.name] = complex_type
        return complex_type

    def add_element(self, element: ElementDecl) -> ElementDecl:
        if element.name in self.elements:
            raise SchemaError(f"duplicate element {element.name!r}")
        self.elements[element.name] = element
        return element

    # -- validation ------------------------------------------------------------------

    @staticmethod
    def _local(type_name: str) -> tuple:
        """Split ``xsd:string`` / ``tns:StudentInfo`` into (prefix, local)."""
        if ":" in type_name:
            prefix, local = type_name.split(":", 1)
            return prefix, local
        return "", type_name

    def is_simple(self, type_name: str) -> bool:
        prefix, local = self._local(type_name)
        return prefix in ("xsd", "xs") and local in BUILTIN_TYPES

    def validate_value(self, type_name: str, value: Any) -> None:
        """Raise :class:`SchemaError` unless ``value`` conforms to the type.

        Simple types accept matching Python scalars; complex types accept
        dicts keyed by element name (repeated elements take lists).
        """
        prefix, local = self._local(type_name)
        if prefix in ("xsd", "xs"):
            expected = BUILTIN_TYPES.get(local)
            if expected is None:
                raise SchemaError(f"unknown built-in type {type_name!r}")
            # bool is an int subclass: reject bools for numeric types.
            if isinstance(value, bool) and bool not in expected:
                raise SchemaError(f"{value!r} is not a {type_name}")
            if not isinstance(value, expected):
                raise SchemaError(
                    f"{value!r} ({type(value).__name__}) is not a {type_name}"
                )
            return

        complex_type = self.complex_types.get(local)
        if complex_type is None:
            raise SchemaError(f"unknown type {type_name!r}")
        if not isinstance(value, dict):
            raise SchemaError(
                f"complex type {type_name!r} requires a dict, got {type(value).__name__}"
            )
        for declaration in complex_type.elements:
            if declaration.name not in value:
                if declaration.required:
                    raise SchemaError(
                        f"missing required element {declaration.name!r} "
                        f"of {type_name!r}"
                    )
                continue
            item = value[declaration.name]
            if declaration.repeated:
                if not isinstance(item, list):
                    raise SchemaError(
                        f"element {declaration.name!r} of {type_name!r} repeats; "
                        "expected a list"
                    )
                for entry in item:
                    self.validate_value(declaration.type_name, entry)
            else:
                self.validate_value(declaration.type_name, item)
        extraneous = set(value) - {d.name for d in complex_type.elements}
        if extraneous:
            raise SchemaError(
                f"unexpected elements {sorted(extraneous)} for {type_name!r}"
            )

    def validate_element(self, element_name: str, value: Any) -> None:
        """Validate against a global element declaration."""
        declaration = self.elements.get(element_name)
        if declaration is None:
            raise SchemaError(f"unknown global element {element_name!r}")
        self.validate_value(declaration.type_name, value)
