"""Ready-made WSDL-S documents for the paper's scenarios.

:func:`student_management_wsdl` reproduces §3.1's listing — the
``StudentManagement`` service whose ``StudentInformation`` operation takes
a ``StudentID`` and returns a ``StudentInfo`` structure — and the other
factories cover the §1 B2B domains used by examples and benchmarks.
"""

from __future__ import annotations

from ..ontology.domains import B2B, SM
from .definitions import Definitions, Interface, MessagePart, Operation
from .schema import ComplexType, ElementDecl, Schema

__all__ = [
    "student_management_wsdl",
    "student_admin_wsdl",
    "insurance_claims_wsdl",
    "bank_loans_wsdl",
    "healthcare_wsdl",
    "loan_desk_wsdl",
    "solvency_wsdl",
    "loan_booking_wsdl",
]

_UMA_TNS = "http://uma.pt/services/StudentManagement"


def student_management_wsdl() -> Definitions:
    """The paper's running example (§3.1), fully annotated."""
    schema = Schema(target_namespace=_UMA_TNS)
    schema.add_complex_type(
        ComplexType(
            name="StudentInfoType",
            elements=[
                ElementDecl("studentId", "xsd:string"),
                ElementDecl("name", "xsd:string"),
                ElementDecl("degree", "xsd:string"),
                ElementDecl("email", "xsd:string", min_occurs=0),
                ElementDecl("enrolledCourses", "xsd:string", min_occurs=0, max_occurs=-1),
                ElementDecl("source", "xsd:string", min_occurs=0),
            ],
        )
    )
    schema.add_element(ElementDecl("StudentID", "xsd:string"))
    schema.add_element(ElementDecl("StudentInfo", "tns:StudentInfoType"))

    operation = Operation(
        name="StudentInformation",
        action=SM["StudentInformation"],
        inputs=[
            MessagePart(
                message_label="ID",
                element="tns:StudentID",
                model_reference=SM["StudentID"],
            )
        ],
        outputs=[
            MessagePart(
                message_label="student",
                element="tns:StudentInfo",
                model_reference=SM["StudentInfo"],
            )
        ],
    )
    interface = Interface(name="StudentManagementUMA")
    interface.add_operation(operation)

    definitions = Definitions(
        name="StudentManagement",
        target_namespace=_UMA_TNS,
        schema=schema,
        namespaces={"sm": SM.uri, "tns": _UMA_TNS + "#"},
    )
    definitions.add_interface(interface)
    return definitions


def student_admin_wsdl() -> Definitions:
    """A multi-operation variant: information retrieval *and* enrollment.

    Exercises one-b-peer-group-per-operation deployments: the two
    operations carry different functional semantics (``sm:StudentInformation``
    vs. ``sm:EnrollStudent``) and are served by different groups.
    """
    base = student_management_wsdl()
    definitions = Definitions(
        name="StudentAdmin",
        target_namespace=base.target_namespace,
        schema=base.schema,
        namespaces=dict(base.namespaces),
    )
    interface = Interface(name="StudentAdminUMA")
    retrieval = base.single_interface().operation("StudentInformation")
    interface.add_operation(retrieval)
    interface.add_operation(
        Operation(
            name="EnrollStudent",
            action=SM["EnrollStudent"],
            inputs=[
                MessagePart(
                    message_label="ID",
                    element="tns:StudentID",
                    model_reference=SM["StudentID"],
                ),
                MessagePart(
                    message_label="course",
                    element="tns:StudentID",
                    model_reference=SM["CourseCode"],
                ),
            ],
            outputs=[
                MessagePart(
                    message_label="student",
                    element="tns:StudentInfo",
                    model_reference=SM["StudentInfo"],
                )
            ],
        )
    )
    definitions.add_interface(interface)
    return definitions


def _single_operation_wsdl(
    service_name: str,
    interface_name: str,
    operation_name: str,
    action: str,
    input_concept: str,
    output_concept: str,
) -> Definitions:
    tns = f"http://example.org/services/{service_name}"
    schema = Schema(target_namespace=tns)
    schema.add_element(ElementDecl("Request", "xsd:string"))
    schema.add_element(ElementDecl("Response", "xsd:string"))
    operation = Operation(
        name=operation_name,
        action=action,
        inputs=[
            MessagePart(
                message_label="request",
                element="tns:Request",
                model_reference=input_concept,
            )
        ],
        outputs=[
            MessagePart(
                message_label="response",
                element="tns:Response",
                model_reference=output_concept,
            )
        ],
    )
    interface = Interface(name=interface_name)
    interface.add_operation(operation)
    definitions = Definitions(
        name=service_name,
        target_namespace=tns,
        schema=schema,
        namespaces={"b2b": B2B.uri, "tns": tns + "#"},
    )
    definitions.add_interface(interface)
    return definitions


def insurance_claims_wsdl() -> Definitions:
    """Insurance claim processing (§1's first motivating domain)."""
    return _single_operation_wsdl(
        "InsuranceClaims",
        "ClaimProcessingPort",
        "ProcessClaim",
        action=B2B["ProcessClaim"],
        input_concept=B2B["ClaimID"],
        output_concept=B2B["AssessmentReport"],
    )


def bank_loans_wsdl() -> Definitions:
    """Bank loan management (§1's second motivating domain)."""
    return _single_operation_wsdl(
        "BankLoans",
        "LoanManagementPort",
        "ApproveLoan",
        action=B2B["LoanApproval"],
        input_concept=B2B["LoanID"],
        output_concept=B2B["LoanDecision"],
    )


def healthcare_wsdl() -> Definitions:
    """Healthcare patient-record retrieval (§1's third motivating domain)."""
    return _single_operation_wsdl(
        "Healthcare",
        "PatientCarePort",
        "RetrievePatientRecord",
        action=B2B["RetrievePatientRecord"],
        input_concept=B2B["PatientID"],
        output_concept=B2B["PatientRecord"],
    )


# -- loan-solvency saga pipeline ---------------------------------------------------------
#
# Three services, each pairing a mutating forward operation with its
# compensating operation (the saga's reverse-order rollback): the
# message labels are the handler argument keys (see
# :mod:`repro.backend.loans`).


def _saga_pair_wsdl(
    service_name: str,
    interface_name: str,
    forward: Operation,
    compensation: Operation,
) -> Definitions:
    tns = f"http://example.org/services/{service_name}"
    schema = Schema(target_namespace=tns)
    schema.add_element(ElementDecl("Request", "xsd:string"))
    schema.add_element(ElementDecl("Response", "xsd:string"))
    interface = Interface(name=interface_name)
    interface.add_operation(forward)
    interface.add_operation(compensation)
    definitions = Definitions(
        name=service_name,
        target_namespace=tns,
        schema=schema,
        namespaces={"b2b": B2B.uri, "tns": tns + "#"},
    )
    definitions.add_interface(interface)
    return definitions


def _part(label: str, concept: str) -> MessagePart:
    return MessagePart(
        message_label=label, element="tns:Request", model_reference=concept
    )


def _out(concept: str) -> MessagePart:
    return MessagePart(
        message_label="response", element="tns:Response", model_reference=concept
    )


def loan_desk_wsdl() -> Definitions:
    """CRUD tier of the loan-solvency pipeline: register / cancel."""
    return _saga_pair_wsdl(
        "LoanDesk",
        "LoanDeskPort",
        Operation(
            name="RegisterLoan",
            action=B2B["RegisterLoan"],
            inputs=[
                _part("loanId", B2B["LoanID"]),
                _part("applicant", B2B["CustomerID"]),
                _part("amount", B2B["LoanApplicationForm"]),
            ],
            outputs=[_out(B2B["LoanRegistration"])],
        ),
        Operation(
            name="CancelLoan",
            action=B2B["CancelLoan"],
            inputs=[_part("loanId", B2B["LoanID"])],
            outputs=[_out(B2B["LoanRegistration"])],
        ),
    )


def solvency_wsdl() -> Definitions:
    """Business-logic tier: reserve funds against a solvency check."""
    return _saga_pair_wsdl(
        "SolvencyEngine",
        "SolvencyPort",
        Operation(
            name="ReserveFunds",
            action=B2B["ReserveFunds"],
            inputs=[
                _part("loanId", B2B["LoanID"]),
                _part("applicant", B2B["CustomerID"]),
                _part("amount", B2B["LoanApplicationForm"]),
            ],
            outputs=[_out(B2B["FundsReservation"])],
        ),
        Operation(
            name="ReleaseFunds",
            action=B2B["ReleaseFunds"],
            inputs=[_part("loanId", B2B["LoanID"])],
            outputs=[_out(B2B["FundsReservation"])],
        ),
    )


def loan_booking_wsdl() -> Definitions:
    """Orchestration tier: finalise (or unwind) the approved loan."""
    return _saga_pair_wsdl(
        "LoanBooking",
        "LoanBookingPort",
        Operation(
            name="BookLoan",
            action=B2B["BookLoan"],
            inputs=[
                _part("loanId", B2B["LoanID"]),
                _part("amount", B2B["LoanApplicationForm"]),
            ],
            outputs=[_out(B2B["LoanBooking"])],
        ),
        Operation(
            name="UnbookLoan",
            action=B2B["UnbookLoan"],
            inputs=[_part("loanId", B2B["LoanID"])],
            outputs=[_out(B2B["LoanBooking"])],
        ),
    )
