"""Reading and writing WSDL-S documents as XML.

The writer emits documents shaped like the paper's §3.1 listing::

    <definitions name="StudentManagement" ... xmlns:sm="http://uma.pt/...#">
      <interface name="StudentManagementUMA">
        <operation name="StudentInformation">
          <wssem:action modelReference="sm:StudentInformation"/>
          <input messageLabel="ID" element="tns:StudentID"
                 wssem:modelReference="sm:StudentID"/>
          <output messageLabel="student" element="tns:StudentInfo"
                  wssem:modelReference="sm:StudentInfo"/>
        </operation>
      </interface>
    </definitions>

The parser additionally accepts the paper's shorthand, where the ``element``
attribute itself names the ontology concept (``element="sm:StudentID"``):
if no ``modelReference`` is present, the ``element`` CURIE is resolved
through the document's namespace bindings and used as the concept.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Optional

from .definitions import (
    Definitions,
    Interface,
    MessagePart,
    Operation,
    ServicePort,
    WsdlError,
)
from .schema import ComplexType, ElementDecl, Schema

__all__ = ["definitions_to_xml", "definitions_from_xml", "WSDL_NS", "WSSEM_NS"]

WSDL_NS = "http://www.w3.org/2006/01/wsdl"
WSSEM_NS = "http://www.ibm.com/xmlns/WebServices/WSDL-S"
XSD_NS = "http://www.w3.org/2001/XMLSchema"

_MODEL_REF = f"{{{WSSEM_NS}}}modelReference"


def definitions_to_xml(definitions: Definitions) -> str:
    """Serialise a :class:`Definitions` document to XML."""
    ET.register_namespace("", WSDL_NS)
    ET.register_namespace("wssem", WSSEM_NS)
    ET.register_namespace("xsd", XSD_NS)
    for prefix, uri in definitions.namespaces.items():
        ET.register_namespace(prefix, uri)

    root = ET.Element(
        f"{{{WSDL_NS}}}definitions",
        {
            "name": definitions.name,
            "targetNamespace": definitions.target_namespace,
        },
    )
    for prefix, uri in sorted(definitions.namespaces.items()):
        root.set(f"xmlns:{prefix}" if prefix else "xmlns", uri)

    if definitions.schema.elements or definitions.schema.complex_types:
        types = ET.SubElement(root, f"{{{WSDL_NS}}}types")
        schema_el = ET.SubElement(
            types,
            f"{{{XSD_NS}}}schema",
            {"targetNamespace": definitions.schema.target_namespace},
        )
        for name in sorted(definitions.schema.complex_types):
            complex_type = definitions.schema.complex_types[name]
            ct_el = ET.SubElement(
                schema_el, f"{{{XSD_NS}}}complexType", {"name": name}
            )
            sequence = ET.SubElement(ct_el, f"{{{XSD_NS}}}sequence")
            for element in complex_type.elements:
                attrs = {"name": element.name, "type": element.type_name}
                if element.min_occurs != 1:
                    attrs["minOccurs"] = str(element.min_occurs)
                if element.max_occurs != 1:
                    attrs["maxOccurs"] = (
                        "unbounded" if element.max_occurs == -1 else str(element.max_occurs)
                    )
                ET.SubElement(sequence, f"{{{XSD_NS}}}element", attrs)
        for name in sorted(definitions.schema.elements):
            element = definitions.schema.elements[name]
            ET.SubElement(
                schema_el,
                f"{{{XSD_NS}}}element",
                {"name": element.name, "type": element.type_name},
            )

    for interface in definitions.interfaces.values():
        interface_el = ET.SubElement(
            root, f"{{{WSDL_NS}}}interface", {"name": interface.name}
        )
        for operation in interface.operations.values():
            op_el = ET.SubElement(
                interface_el, f"{{{WSDL_NS}}}operation", {"name": operation.name}
            )
            if operation.action:
                ET.SubElement(
                    op_el,
                    f"{{{WSSEM_NS}}}action",
                    {"modelReference": operation.action},
                )
            for part in operation.inputs:
                _write_part(op_el, f"{{{WSDL_NS}}}input", part)
            for part in operation.outputs:
                _write_part(op_el, f"{{{WSDL_NS}}}output", part)
            for fault in operation.faults:
                ET.SubElement(op_el, f"{{{WSDL_NS}}}outfault", {"ref": fault})

    if definitions.ports:
        service_el = ET.SubElement(
            root, f"{{{WSDL_NS}}}service", {"name": definitions.name}
        )
        for port in definitions.ports:
            ET.SubElement(
                service_el,
                f"{{{WSDL_NS}}}port",
                {
                    "name": port.name,
                    "binding": port.interface_name,
                    "location": port.location,
                },
            )

    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def _write_part(parent: ET.Element, tag: str, part: MessagePart) -> None:
    attrs = {"messageLabel": part.message_label, "element": part.element}
    if part.model_reference:
        attrs[_MODEL_REF] = part.model_reference
    ET.SubElement(parent, tag, attrs)


def definitions_from_xml(document: str) -> Definitions:
    """Parse a WSDL-S document (our output format or the paper's shorthand)."""
    root, namespaces = _parse_with_namespaces(document)
    if root.tag not in (f"{{{WSDL_NS}}}definitions", "definitions"):
        raise WsdlError(f"expected wsdl:definitions root, found {root.tag}")

    name = root.get("name")
    if not name:
        raise WsdlError("definitions element lacks a name")
    definitions = Definitions(
        name=name,
        target_namespace=root.get("targetNamespace", ""),
        namespaces=namespaces,
    )

    schema_el = root.find(f"{{{WSDL_NS}}}types/{{{XSD_NS}}}schema")
    if schema_el is None:
        schema_el = root.find(f"types/{{{XSD_NS}}}schema")
    if schema_el is not None:
        definitions.schema = _parse_schema(schema_el)

    for interface_el in _findall_either(root, "interface"):
        interface = Interface(name=interface_el.get("name", ""))
        for op_el in _findall_either(interface_el, "operation"):
            operation = Operation(name=op_el.get("name", ""))
            action_el = op_el.find(f"{{{WSSEM_NS}}}action")
            if action_el is None:
                action_el = op_el.find("action")
            if action_el is not None:
                reference = action_el.get("modelReference") or action_el.get("element")
                if reference:
                    operation.action = _resolve_curie(reference, namespaces)
            for input_el in _findall_either(op_el, "input"):
                operation.inputs.append(_parse_part(input_el, namespaces))
            for output_el in _findall_either(op_el, "output"):
                operation.outputs.append(_parse_part(output_el, namespaces))
            interface.add_operation(operation)
        definitions.add_interface(interface)

    for service_el in _findall_either(root, "service"):
        for port_el in _findall_either(service_el, "port"):
            definitions.add_port(
                ServicePort(
                    name=port_el.get("name", ""),
                    interface_name=port_el.get("binding", ""),
                    location=port_el.get("location", ""),
                )
            )

    return definitions


def _parse_with_namespaces(document: str):
    """Parse XML keeping prefix -> URI declarations (ET normally drops them)."""
    parser = ET.XMLPullParser(events=("start-ns", "start", "end"))
    bindings: Dict[str, str] = {}
    root: Optional[ET.Element] = None
    try:
        parser.feed(document)
        for event, payload in parser.read_events():
            if event == "start-ns":
                prefix, uri = payload
                if prefix:
                    bindings[prefix] = uri
            elif event == "start" and root is None:
                root = payload
        parser.close()
    except ET.ParseError as error:
        raise WsdlError(f"malformed WSDL XML: {error}") from error
    if root is None:
        raise WsdlError("empty WSDL document")
    return root, bindings


def _parse_schema(schema_el: ET.Element) -> Schema:
    schema = Schema(target_namespace=schema_el.get("targetNamespace", ""))
    for ct_el in schema_el.findall(f"{{{XSD_NS}}}complexType"):
        complex_type = ComplexType(name=ct_el.get("name", ""))
        sequence = ct_el.find(f"{{{XSD_NS}}}sequence")
        if sequence is not None:
            for element_el in sequence.findall(f"{{{XSD_NS}}}element"):
                max_occurs = element_el.get("maxOccurs", "1")
                complex_type.elements.append(
                    ElementDecl(
                        name=element_el.get("name", ""),
                        type_name=element_el.get("type", "xsd:string"),
                        min_occurs=int(element_el.get("minOccurs", "1")),
                        max_occurs=-1 if max_occurs == "unbounded" else int(max_occurs),
                    )
                )
        schema.add_complex_type(complex_type)
    for element_el in schema_el.findall(f"{{{XSD_NS}}}element"):
        schema.add_element(
            ElementDecl(
                name=element_el.get("name", ""),
                type_name=element_el.get("type", "xsd:string"),
            )
        )
    return schema


def _parse_part(element: ET.Element, namespaces: Dict[str, str]) -> MessagePart:
    model_reference = element.get(_MODEL_REF) or element.get("modelReference")
    schema_element = element.get("element", "")
    if model_reference is None and schema_element:
        # Paper shorthand: element="sm:StudentID" names the concept directly.
        resolved = _resolve_curie(schema_element, namespaces)
        if resolved != schema_element:
            model_reference = resolved
    elif model_reference is not None:
        model_reference = _resolve_curie(model_reference, namespaces)
    return MessagePart(
        message_label=element.get("messageLabel", ""),
        element=schema_element,
        model_reference=model_reference,
    )


def _resolve_curie(value: str, namespaces: Dict[str, str]) -> str:
    if "://" in value:
        return value
    if ":" in value:
        prefix, local = value.split(":", 1)
        base = namespaces.get(prefix)
        if base:
            return base + local
    return value


def _findall_either(parent: ET.Element, local_name: str):
    """Find children whether or not they carry the WSDL namespace."""
    found = parent.findall(f"{{{WSDL_NS}}}{local_name}")
    if found:
        return found
    return parent.findall(local_name)
