"""WSDL 1.1-style service descriptions with WSDL-S semantic annotations.

Traditional WSDL "provides only syntactical information" (§3.1); Whisper
annotates operations with ontology concepts following WSDL-S.  This package
holds the document model, an XML reader/writer compatible with the paper's
§3.1 listing, a small XML-Schema subset for message payload validation, and
the sample service descriptions used throughout examples and benchmarks.
"""

from .annotations import SemanticAnnotation
from .definitions import (
    Definitions,
    Interface,
    MessagePart,
    Operation,
    ServicePort,
    WsdlError,
)
from .samples import (
    bank_loans_wsdl,
    healthcare_wsdl,
    insurance_claims_wsdl,
    loan_booking_wsdl,
    loan_desk_wsdl,
    solvency_wsdl,
    student_admin_wsdl,
    student_management_wsdl,
)
from .schema import BUILTIN_TYPES, ComplexType, ElementDecl, Schema, SchemaError
from .xmlio import WSDL_NS, WSSEM_NS, definitions_from_xml, definitions_to_xml

__all__ = [
    "BUILTIN_TYPES",
    "ComplexType",
    "Definitions",
    "ElementDecl",
    "Interface",
    "MessagePart",
    "Operation",
    "Schema",
    "SchemaError",
    "ServicePort",
    "SemanticAnnotation",
    "WSDL_NS",
    "WSSEM_NS",
    "WsdlError",
    "bank_loans_wsdl",
    "definitions_from_xml",
    "definitions_to_xml",
    "healthcare_wsdl",
    "insurance_claims_wsdl",
    "loan_booking_wsdl",
    "loan_desk_wsdl",
    "solvency_wsdl",
    "student_admin_wsdl",
    "student_management_wsdl",
]
