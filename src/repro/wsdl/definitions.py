"""The WSDL model: definitions, interfaces, operations, messages.

Mirrors the WSDL-S example in §3.1 of the paper: a ``definitions`` document
with a named ``interface`` containing ``operation`` elements whose inputs,
outputs, and action carry semantic annotations (held in
:class:`SemanticAnnotation`, defined in :mod:`repro.wsdl.annotations`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .annotations import SemanticAnnotation
from .schema import Schema

__all__ = [
    "MessagePart",
    "Operation",
    "Interface",
    "ServicePort",
    "Definitions",
    "WsdlError",
]


class WsdlError(Exception):
    """Raised for structurally invalid WSDL documents."""


@dataclass
class MessagePart:
    """One input or output message of an operation.

    ``message_label`` is the WSDL-S ``messageLabel`` attribute; ``element``
    names the schema element carrying the payload; ``model_reference`` is
    the ontology concept annotating the part (WSDL-S ``modelReference``).
    """

    message_label: str
    element: str
    model_reference: Optional[str] = None


@dataclass
class Operation:
    """One operation of an interface (e.g. ``StudentInformation``)."""

    name: str
    inputs: List[MessagePart] = field(default_factory=list)
    outputs: List[MessagePart] = field(default_factory=list)
    #: WSDL-S functional annotation: the ontology concept for the action.
    action: Optional[str] = None
    faults: List[str] = field(default_factory=list)

    def annotation(self) -> SemanticAnnotation:
        """The (action, inputs, outputs) concept triple for matching."""
        if self.action is None:
            raise WsdlError(f"operation {self.name!r} has no action annotation")
        missing = [
            part.message_label
            for part in self.inputs + self.outputs
            if part.model_reference is None
        ]
        if missing:
            raise WsdlError(
                f"operation {self.name!r} has unannotated parts: {missing}"
            )
        return SemanticAnnotation(
            action=self.action,
            inputs=tuple(part.model_reference for part in self.inputs),
            outputs=tuple(part.model_reference for part in self.outputs),
        )

    @property
    def is_annotated(self) -> bool:
        """True if every part and the action carry model references."""
        if self.action is None:
            return False
        return all(
            part.model_reference is not None
            for part in self.inputs + self.outputs
        )


@dataclass
class Interface:
    """A named set of operations (WSDL 2.0 ``interface``)."""

    name: str
    operations: Dict[str, Operation] = field(default_factory=dict)

    def add_operation(self, operation: Operation) -> Operation:
        if operation.name in self.operations:
            raise WsdlError(f"duplicate operation {operation.name!r}")
        self.operations[operation.name] = operation
        return operation

    def operation(self, name: str) -> Operation:
        try:
            return self.operations[name]
        except KeyError:
            raise WsdlError(
                f"interface {self.name!r} has no operation {name!r}"
            ) from None


@dataclass
class ServicePort:
    """A concrete endpoint binding an interface to an address.

    The WSDL ``service``/``port`` element: where the interface can actually
    be invoked.  ``location`` is a URL-ish string; for the simulated stack
    it is ``sim://<host>:<port><path>``.
    """

    name: str
    interface_name: str
    location: str

    def address(self) -> tuple:
        """Parse the simulated location into ``((host, port), path)``."""
        if not self.location.startswith("sim://"):
            raise WsdlError(f"not a simulated endpoint: {self.location!r}")
        rest = self.location[len("sim://"):]
        host_port, _slash, path = rest.partition("/")
        host, _colon, port = host_port.partition(":")
        if not port:
            raise WsdlError(f"endpoint lacks a port: {self.location!r}")
        return (host, int(port)), "/" + path


@dataclass
class Definitions:
    """A WSDL ``definitions`` document."""

    name: str
    target_namespace: str
    interfaces: Dict[str, Interface] = field(default_factory=dict)
    schema: Schema = field(default_factory=Schema)
    #: prefix -> namespace URI bindings on the document element.
    namespaces: Dict[str, str] = field(default_factory=dict)
    #: Concrete endpoints (WSDL service/port elements).
    ports: List[ServicePort] = field(default_factory=list)

    def add_port(self, port: ServicePort) -> ServicePort:
        if port.interface_name not in self.interfaces:
            raise WsdlError(
                f"port {port.name!r} binds unknown interface {port.interface_name!r}"
            )
        self.ports.append(port)
        return port

    def endpoint(self) -> tuple:
        """The first port's parsed ``((host, port), path)``."""
        if not self.ports:
            raise WsdlError(f"{self.name!r} declares no service ports")
        return self.ports[0].address()

    def add_interface(self, interface: Interface) -> Interface:
        if interface.name in self.interfaces:
            raise WsdlError(f"duplicate interface {interface.name!r}")
        self.interfaces[interface.name] = interface
        return interface

    def interface(self, name: str) -> Interface:
        try:
            return self.interfaces[name]
        except KeyError:
            raise WsdlError(f"no interface {name!r} in {self.name!r}") from None

    def single_interface(self) -> Interface:
        """The only interface (common case for Whisper services)."""
        if len(self.interfaces) != 1:
            raise WsdlError(
                f"{self.name!r} has {len(self.interfaces)} interfaces; expected 1"
            )
        return next(iter(self.interfaces.values()))

    def operations(self) -> List[Operation]:
        """Every operation across every interface."""
        result: List[Operation] = []
        for interface in self.interfaces.values():
            result.extend(interface.operations.values())
        return result

    def validate(self) -> List[str]:
        """Structural checks; returns problems (empty = valid)."""
        problems: List[str] = []
        if not self.interfaces:
            problems.append(f"definitions {self.name!r} declares no interface")
        for interface in self.interfaces.values():
            if not interface.operations:
                problems.append(f"interface {interface.name!r} has no operations")
            for operation in interface.operations.values():
                for part in operation.inputs + operation.outputs:
                    local = part.element.split(":", 1)[-1]
                    if (
                        self.schema.elements
                        and local not in self.schema.elements
                        and local not in self.schema.complex_types
                    ):
                        problems.append(
                            f"operation {operation.name!r} references undeclared "
                            f"element {part.element!r}"
                        )
        return problems
