"""WSDL-S semantic annotations.

WSDL-S (the METEOR-S lineage the paper cites, [9, 13]) extends WSDL with
``modelReference`` attributes mapping syntactic elements to ontology
concepts.  Whisper annotates three things per operation: the *action*
(functional semantics, §2.3) and each *input*/*output* part (data
semantics, §2.2).  The resulting concept triple is the unit of matching
between services and peer-group advertisements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["SemanticAnnotation"]


@dataclass(frozen=True)
class SemanticAnnotation:
    """The (action, inputs, outputs) ontology-concept triple of an operation."""

    action: str
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()

    def all_concepts(self) -> List[str]:
        """Every concept URI referenced by the annotation."""
        return [self.action, *self.inputs, *self.outputs]

    def unresolved_in(self, ontology) -> List[str]:
        """Concept URIs that the given ontology does not declare."""
        return [uri for uri in self.all_concepts() if not ontology.has_concept(uri)]

    def __str__(self) -> str:
        inputs = ", ".join(self.inputs)
        outputs = ", ".join(self.outputs)
        return f"action={self.action} inputs=[{inputs}] outputs=[{outputs}]"
