"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro fig4 [--max-peers 16] [--seed 42]
    python -m repro rtt [--samples 400]
    python -m repro failover [--heartbeat 1.0]
    python -m repro availability [--replicas 4] [--duration 120]
    python -m repro campaign [--duration 90] [--workload enroll] [--loss 0.01]
                             [--no-journal] [--json]
    python -m repro overload [--rates 125,250,375,500] [--queue-bound 8]
    python -m repro shard [--shards 1,2,4] [--replicas 2] [--rate-multiple 3.0]
                          [--skip-rebalance] [--json]
    python -m repro check [--seeds 5] [--schedules 50] [--timeout 300]
                          [--regions 2] [--capacity] [--self-test]
                          [--replay FILE]
                          [--saga] [--saga-self-test] [--saga-replay FILE]
                          [--out FILE] [--json]
    python -m repro trace [--samples 20] [--crash] [--last 5] [--json]
    python -m repro metrics [--samples 50] [--crash] [--json | --csv]
    python -m repro perf [--scale smoke|full|both] [--out BENCH_simnet.json]
                         [--check RECORD] [--tolerance 0.25] [--json]
    python -m repro wan [--scale smoke|full] [--out BENCH_wan.json] [--json]
    python -m repro saga [--scale smoke|full] [--out BENCH_saga.json] [--json]
    python -m repro capacity [--scale smoke|full] [--out BENCH_capacity.json]
                             [--json]
    python -m repro dlq [--sagas 3] [--requeue] [--json]

Each subcommand prints the same tables the corresponding benchmark
asserts on (see EXPERIMENTS.md).  Common flags — ``--seed``,
``--duration``, ``--json`` — are shared parent parsers, so they work
uniformly before or after the subcommand name.  ``overload`` sweeps an
open-loop arrival rate across the deployment's saturation knee and shows
what bounded queues + load-aware dispatch do to shed rate and tail
latency.
"""

from __future__ import annotations

import argparse
import json as json_module
from typing import List, Optional, Tuple

from .bench import (
    ClosedLoopWorkload,
    ascii_plot,
    format_phase_breakdown,
    format_sweep,
    format_table,
    linear_fit,
    run_sweep,
    summarize,
)
from .bench.overload import run_overload_point
from .core import ScenarioConfig, WhisperSystem
from .core.dispatch import DISPATCH_POLICIES

__all__ = ["main"]


def _cmd_fig4(args: argparse.Namespace) -> int:
    counts = [n for n in (2, 4, 6, 8, 10, 12, 16, 20, 24) if n <= args.max_peers]

    def measure(replicas: int) -> dict:
        system = WhisperSystem(ScenarioConfig(seed=args.seed, replicas=replicas))
        service = system.deploy_student_service()
        system.settle(6.0)
        ClosedLoopWorkload(
            system, service.address, service.path, "StudentInformation",
            clients=2, think_time=0.1, requests_per_client=10,
        ).run()
        system.reset_counters()
        system.run_until(system.env.now + 20.0)
        return {"messages": system.trace.sent_total}

    sweep = run_sweep("Figure 4", "b-peers", counts, measure)
    print(format_sweep(sweep, title="Figure 4 — messages vs. b-peers (20s window)"))
    xs = [float(n) for n in sweep.parameters()]
    ys = [float(v) for v in sweep.series("messages")]
    print()
    print(ascii_plot(xs, ys, x_label="b-peers", y_label="messages"))
    fit = linear_fit(xs, ys)
    print(f"\nfit: messages = {fit.slope:.1f} x peers {fit.intercept:+.1f} "
          f"(r² = {fit.r_squared:.5f})")
    return 0


def _cmd_rtt(args: argparse.Namespace) -> int:
    system = WhisperSystem(ScenarioConfig(seed=args.seed, replicas=4))
    service = system.deploy_student_service()
    system.settle(6.0)
    node, soap = system.add_client("rtt-client")
    latencies: List[float] = []

    def loop():
        for index in range(args.samples):
            started = system.env.now
            yield from soap.call(
                service.address, service.path, "StudentInformation",
                {"ID": f"S{(index % 200) + 1:05d}"}, timeout=30.0,
            )
            latencies.append(system.env.now - started)
            yield system.env.timeout(0.01)

    system.env.run(until=node.spawn(loop()))
    summary = summarize([l * 1000 for l in latencies])
    print(format_table(
        ["metric", "ms"],
        [["samples", summary.count], ["mean", summary.mean],
         ["p50", summary.p50], ["p95", summary.p95], ["max", summary.maximum]],
        title="End-to-end invocation RTT (failure-free)",
    ))
    return 0


def _cmd_failover(args: argparse.Namespace) -> int:
    system = WhisperSystem(
        ScenarioConfig(seed=args.seed, heartbeat_interval=args.heartbeat, replicas=4)
    )
    service = system.deploy_student_service()
    system.settle(8.0)
    node, soap = system.add_client("failover-client")
    rows = []

    def loop():
        for index in range(8):
            started = system.env.now
            yield from soap.call(
                service.address, service.path, "StudentInformation",
                {"ID": f"S{index + 1:05d}"}, timeout=120.0,
            )
            rows.append([index, (system.env.now - started) * 1000])
            yield system.env.timeout(0.5)

    victim = service.group.coordinator_peer()
    system.failures.crash_at(system.env.now + 1.2, victim.node.name)
    system.env.run(until=node.spawn(loop()))
    print(format_table(
        ["request", "rtt (ms)"], rows,
        title=f"Coordinator crash after request 2 (heartbeat {args.heartbeat}s)",
    ))
    print(f"\nproxy re-binds: {service.proxy.stats.rebinds}, "
          f"timeouts masked: {service.proxy.stats.timeouts}")
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    system = WhisperSystem(
        ScenarioConfig(
            seed=args.seed,
            heartbeat_interval=0.5,
            miss_threshold=2,
            replicas=args.replicas,
        )
    )
    service = system.deploy_student_service()
    system.settle(6.0)
    hosts = [peer.node.name for peer in service.group.peers]
    run_seconds = args.duration
    system.failures.churn(hosts, mtbf=25.0, mttr=20.0, until=system.env.now + run_seconds)
    node, soap = system.add_client("avail-client", timeout=2.0)
    results = {"ok": 0, "failed": 0}

    def loop():
        clock = 0.0
        while clock < run_seconds:
            def probe(sequence=int(clock * 10)):
                try:
                    yield from soap.call(
                        service.address, service.path, "StudentInformation",
                        {"ID": f"S{sequence % 200 + 1:05d}"}, timeout=2.0,
                    )
                except Exception:  # noqa: BLE001 - availability probe
                    results["failed"] += 1
                else:
                    results["ok"] += 1

            node.spawn(probe())
            yield system.env.timeout(0.5)
            clock += 0.5

    system.env.run(until=node.spawn(loop()))
    system.run_until(system.env.now + 5.0)
    total = results["ok"] + results["failed"]
    availability = results["ok"] / total if total else 0.0
    if args.json:
        print(json_module.dumps({
            "replicas": args.replicas, "probes": total,
            "succeeded": results["ok"], "availability": availability,
        }, indent=2))
        return 0
    print(format_table(
        ["metric", "value"],
        [["replicas", args.replicas], ["probes", total],
         ["succeeded", results["ok"]], ["availability", availability]],
        title=f"Availability under churn ({run_seconds:.0f}s, MTBF 25s, MTTR 20s)",
    ))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .core import FaultCampaign

    campaign = FaultCampaign(
        seed=args.seed,
        duration=args.duration,
        replicas=args.replicas,
        mtbf=args.mtbf,
        mttr=args.mttr,
        partitions=args.partitions,
        partition_duration=args.partition_duration,
        workload=args.workload,
        loss_rate=args.loss,
        dedup_journal=not args.no_journal,
    )
    report = campaign.run()
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _cmd_overload(args: argparse.Namespace) -> int:
    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    config = ScenarioConfig(
        seed=args.seed,
        replicas=args.replicas,
        dispatch=args.dispatch,
        queue_bound=args.queue_bound,
        request_timeout=2.0,
        max_attempts=6,
        deadline_budget=args.deadline,
    )
    points = [
        run_overload_point(rate, duration=args.duration, config=config)
        for rate in rates
    ]
    if args.json:
        print(json_module.dumps([
            {
                "rate": p.rate, "capacity": p.capacity, "dispatch": p.dispatch,
                "queue_bound": p.queue_bound, "requests": p.requests,
                "successes": p.successes, "shed": p.shed, "faults": p.faults,
                "timeouts": p.timeouts, "shed_rate": p.shed_rate,
                "availability": p.availability,
                "accepted_availability": p.accepted_availability,
                "throughput": p.throughput,
                "p50_ms": p.latency.p50 * 1000, "p99_ms": p.latency.p99 * 1000,
                "coordinator_sheds": p.coordinator_sheds,
                "retry_after_honored": p.retry_after_honored,
            }
            for p in points
        ], indent=2))
        return 0
    capacity = points[0].capacity if points else 0.0
    bound = "unbounded" if args.queue_bound is None else str(args.queue_bound)
    print(format_table(
        ["rate", "load", "offered", "ok", "shed", "shed rate",
         "accepted avail", "tput", "p50 ms", "p99 ms"],
        [p.row() for p in points],
        title=(f"Overload sweep — {args.replicas} replicas, knee ~{capacity:.0f}/s, "
               f"dispatch {args.dispatch}, queue bound {bound}"),
    ))
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    """Sharding sweep: read scaling, message growth, rebalance safety."""
    from .bench.sharding import run_rebalance, run_shard_sweep, shard_capacity

    shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]
    points = run_shard_sweep(
        shard_counts=shard_counts,
        replicas=args.replicas,
        rate_multiple=args.rate_multiple,
        duration=args.duration,
        seed=args.seed,
        message_window=args.window,
    )
    rebalance = None
    if not args.skip_rebalance:
        rebalance = run_rebalance(
            shards=max(shard_counts),
            replicas=args.replicas,
            seed=args.seed,
        )

    if args.json:
        payload = {
            "sweep": [
                {
                    "shards": p.shards,
                    "replicas_per_shard": p.replicas_per_shard,
                    "rate": p.rate,
                    "shard_knee": p.shard_knee,
                    "requests": p.requests,
                    "successes": p.successes,
                    "shed": p.shed,
                    "timeouts": p.timeouts,
                    "faults": p.faults,
                    "throughput": p.throughput,
                    "p50_ms": p.latency.p50 * 1000,
                    "p99_ms": p.latency.p99 * 1000,
                    "shard_routed": p.shard_routed,
                    "steady_messages": p.steady_messages,
                    "per_group_executed": p.per_group_executed,
                }
                for p in points
            ],
            "speedup": (
                points[-1].throughput / points[0].throughput
                if points and points[0].throughput > 0
                else None
            ),
            "rebalance": None
            if rebalance is None
            else {
                "shards": rebalance.shards,
                "victim": rebalance.victim,
                "remapped_fraction": rebalance.remapped_fraction,
                "enrollments": rebalance.enrollments,
                "succeeded": rebalance.succeeded,
                "failed": rebalance.failed,
                "shard_failovers": rebalance.shard_failovers,
                "distinct_effects": rebalance.distinct_effects,
                "double_applied": rebalance.double_applied,
                "exactly_once": rebalance.exactly_once,
            },
        }
        print(json_module.dumps(payload, indent=2))
        return 0

    knee = shard_capacity(args.replicas)
    print(format_table(
        ["shards", "offered/s", "requests", "ok", "shed",
         "tput", "p50 ms", "p99 ms", "msgs"],
        [p.row() for p in points],
        title=(
            f"Shard scaling — {args.replicas} replicas/shard "
            f"(knee ~{knee:.0f}/s each), offered "
            f"{args.rate_multiple:.1f}x one shard's knee, "
            f"{args.duration:.0f}s Poisson + {args.window:.0f}s message window"
        ),
    ))
    if len(points) > 1 and points[0].throughput > 0:
        speedup = points[-1].throughput / points[0].throughput
        print(f"\nspeedup at {points[-1].shards} shards vs "
              f"{points[0].shards}: {speedup:.2f}x")
    if rebalance is not None:
        print()
        print(format_table(
            ["metric", "value"],
            rebalance.rows(),
            title=(
                "Rebalance — whole shard group crashed mid-enrollment "
                "(ring-successor handoff, per-group dedup journals)"
            ),
        ))
        print("exactly-once across handoff: "
              + ("HELD" if rebalance.exactly_once else "VIOLATED"))
    return 0 if rebalance is None or rebalance.exactly_once else 1


def _cmd_check(args: argparse.Namespace) -> int:
    """Schedule exploration: 0 = clean, 1 = counterexample, 2 = checker broken."""
    from .check import CheckScenario, ScheduleExplorer, replay_repro, self_test

    if args.saga_replay:
        from .check import replay_saga_repro

        ok, result, expected = replay_saga_repro(args.saga_replay)
        payload = {
            "replay": args.saga_replay,
            "match": ok,
            "digest": result.digest(),
            "expected_digest": expected["digest"],
            "violations": result.violations,
        }
        if args.json:
            print(json_module.dumps(payload, indent=2))
        elif ok:
            print(f"saga replay {args.saga_replay}: byte-identical "
                  f"({len(result.violations)} violation(s) reproduced)")
            for violation in result.violations:
                print(f"  - {violation}")
        else:
            print(f"saga replay {args.saga_replay}: DIVERGED "
                  f"(got {result.digest()[:16]}…, "
                  f"expected {expected['digest'][:16]}…)")
        return 0 if ok else 2

    if args.saga_self_test:
        from .check import saga_self_test

        outcome = saga_self_test(
            seed=args.seed,
            repro_path=args.out,
            time_budget=args.timeout,
        )
        if args.json:
            print(json_module.dumps(outcome, indent=2))
        else:
            status = "OK" if outcome["ok"] else "FAILED"
            print(f"saga checker self-test (compensation disabled): {status}")
            for key in ("violations", "shrunk_schedule", "shrink_runs",
                        "repro_path", "replay_ok", "tries"):
                if key in outcome:
                    print(f"  {key:16}: {outcome[key]}")
        # Like --self-test: a clean pass means the atomicity audit has no
        # teeth, which outranks a mere counterexample.
        return 0 if outcome["ok"] else 2

    if args.saga:
        from .check import explore_saga_schedules

        report = explore_saga_schedules(
            seeds=range(args.seed, args.seed + args.seeds),
            schedules_per_seed=args.schedules,
            max_ops=args.max_ops,
            time_budget=args.timeout,
            repro_path=args.out,
        )
        if args.json:
            print(json_module.dumps(report, indent=2))
        else:
            status = "clean" if report["clean"] else "COUNTEREXAMPLE"
            print(f"saga schedule exploration: {status} "
                  f"({report['runs']} runs"
                  + (", truncated" if report.get("truncated") else "")
                  + ")")
            for key in ("seed", "violations", "schedule",
                        "shrunk_schedule", "repro_path"):
                if key in report:
                    print(f"  {key:16}: {report[key]}")
        return 0 if report["clean"] else 1

    if args.replay:
        ok, result, expected = replay_repro(args.replay)
        payload = {
            "replay": args.replay,
            "match": ok,
            "digest": result.digest(),
            "expected_digest": expected["digest"],
            "violations": result.violations,
        }
        if args.json:
            print(json_module.dumps(payload, indent=2))
        elif ok:
            print(f"replay {args.replay}: byte-identical "
                  f"({len(result.violations)} violation(s) reproduced)")
            for violation in result.violations:
                print(f"  - {violation}")
        else:
            print(f"replay {args.replay}: DIVERGED "
                  f"(got {result.digest()[:16]}…, "
                  f"expected {expected['digest'][:16]}…)")
        return 0 if ok else 2

    if args.self_test:
        outcome = self_test(
            seed=args.seed,
            repro_path=args.out,
            time_budget=args.timeout,
        )
        if args.json:
            print(json_module.dumps(outcome, indent=2))
        else:
            status = "OK" if outcome["ok"] else "FAILED"
            print(f"checker self-test (epoch fencing disabled): {status}")
            for key in ("violations", "shrunk_schedule", "shrink_runs",
                        "repro_path", "replay_ok", "tries"):
                if key in outcome:
                    print(f"  {key:16}: {outcome[key]}")
        # The self-test *must* catch the seeded regression: a clean pass
        # means the checker itself is broken, which outranks a mere
        # counterexample.
        return 0 if outcome["ok"] else 2

    explorer = ScheduleExplorer(
        CheckScenario(
            shards=args.shards,
            regions=args.regions,
            capacity=args.capacity,
        ),
        seeds=range(args.seed, args.seed + args.seeds),
        schedules_per_seed=args.schedules,
        max_ops=args.max_ops,
        time_budget=args.timeout,
        repro_path=args.out,
    )
    report = explorer.explore()
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return 0 if report.clean else 1


def _observed_run(
    seed: int, samples: int, crash: bool = False, replicas: int = 4
) -> Tuple[WhisperSystem, object]:
    """Deploy the student service and drive ``samples`` requests through it.

    With ``crash=True`` the group's coordinator is crashed shortly after
    the workload starts, so the traces show the full failure story: a
    timed-out ``invoke``, a ``recover`` span, re-``bind``, and retry.
    """
    system = WhisperSystem(ScenarioConfig(seed=seed, replicas=replicas))
    service = system.deploy_student_service()
    system.settle(6.0)
    node, soap = system.add_client("obs-client")
    if crash:
        victim = service.group.coordinator_peer()
        system.failures.crash_at(system.env.now + 0.8, victim.node.name)

    def loop():
        for index in range(samples):
            try:
                yield from soap.call(
                    service.address, service.path, "StudentInformation",
                    {"ID": f"S{(index % 200) + 1:05d}"}, timeout=60.0,
                )
            except Exception:  # noqa: BLE001 - keep driving under failures
                pass
            yield system.env.timeout(0.1)

    system.env.run(until=node.spawn(loop()))
    return system, service


def _cmd_trace(args: argparse.Namespace) -> int:
    system, _service = _observed_run(args.seed, args.samples, crash=args.crash)
    if args.json:
        print(system.obs.traces_to_json(limit=args.last, indent=2))
        return 0
    for trace in system.obs.recent_traces(limit=args.last):
        print(trace.format())
        print()
    print(format_phase_breakdown(
        system.obs.phase_summary(),
        title=f"Per-phase latency over {args.samples} requests"
        + (" (coordinator crashed mid-run)" if args.crash else ""),
    ))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.json and args.csv:
        raise SystemExit("--json and --csv are mutually exclusive")
    system, _service = _observed_run(args.seed, args.samples, crash=args.crash)
    if args.json:
        print(system.obs.to_json(indent=2))
        return 0
    if args.csv:
        print(system.obs.phases_to_csv(), end="")
        return 0
    counters = system.obs.metrics.counters
    print(format_table(
        ["counter", "value"],
        [[name, counter.value] for name, counter in sorted(counters.items())],
        title="Counters",
    ))
    print()
    print(format_phase_breakdown(system.obs.phase_summary()))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from .bench import perf as perf_module

    if args.worker is not None:
        # Internal entry: one mode in this process, record JSON on stdout.
        record = perf_module.run_mode(args.worker, args.worker_scale, seed=args.seed)
        print(json_module.dumps(record))
        return 0

    if args.smoke:
        scales = ["smoke"]
    elif args.scale == "both":
        scales = ["full", "smoke"]
    else:
        scales = [args.scale]

    record = perf_module.run_perf(
        scales,
        seed=args.seed,
        isolate=not args.in_process,
        progress=None if args.json else print,
    )
    with open(args.out, "w") as handle:
        handle.write(json_module.dumps(record, indent=2) + "\n")
    if args.json:
        print(json_module.dumps(record, indent=2))
    else:
        print(perf_module.format_record(record))
        print(f"wrote {args.out}")

    if args.check is not None:
        with open(args.check) as handle:
            committed = json_module.load(handle)
        failures = perf_module.check_record(record, committed, args.tolerance)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}")
            return 1
        print(f"perf check vs {args.check}: ok (tolerance {args.tolerance:.0%})")
    return 0


def _cmd_wan(args: argparse.Namespace) -> int:
    from .bench import wan as wan_module

    record = wan_module.run_wan(
        scale="smoke" if args.smoke else args.scale,
        seed=args.seed,
        progress=None if args.json else print,
    )
    with open(args.out, "w") as handle:
        handle.write(json_module.dumps(record, indent=2) + "\n")
    if args.json:
        print(json_module.dumps(record, indent=2))
    else:
        print(wan_module.format_record(record))
        print(f"wrote {args.out}")
    failures = wan_module.check_record(record)
    for failure in failures:
        print(failure)
    return 0 if not failures else 1


def _cmd_saga(args: argparse.Namespace) -> int:
    from .bench import saga as saga_module

    record = saga_module.run_saga_bench(
        scale="smoke" if args.smoke else args.scale,
        progress=None if args.json else print,
    )
    with open(args.out, "w") as handle:
        handle.write(json_module.dumps(record, indent=2) + "\n")
    if args.json:
        print(json_module.dumps(record, indent=2))
    else:
        print(saga_module.format_record(record))
        print(f"wrote {args.out}")
    failures = saga_module.check_record(record)
    for failure in failures:
        print(failure)
    return 0 if not failures else 1


def _cmd_capacity(args: argparse.Namespace) -> int:
    from .bench import capacity as capacity_module

    record = capacity_module.run_capacity(
        scale="smoke" if args.smoke else args.scale,
        seed=args.seed,
        progress=None if args.json else print,
    )
    with open(args.out, "w") as handle:
        handle.write(json_module.dumps(record, indent=2) + "\n")
    if args.json:
        print(json_module.dumps(record, indent=2))
    else:
        print(capacity_module.format_record(record))
        print(f"wrote {args.out}")
    failures = capacity_module.check_record(record)
    for failure in failures:
        print(failure)
    return 0 if not failures else 1


def _cmd_dlq(args: argparse.Namespace) -> int:
    """Inspect (and optionally requeue) dead-lettered sagas."""
    from .check import run_dlq_demo

    demo = run_dlq_demo(
        seed=args.seed, sagas=args.sagas, requeue=args.requeue
    )
    if args.json:
        print(json_module.dumps(demo, indent=2))
    else:
        print(f"dead-letter queue after a {demo['outage']:.0f}s outage of "
              f"{', '.join(demo['cancel_hosts'])} "
              f"({demo['parked']} saga(s) parked):")
        for line in demo["entries"]:
            print(f"  {line}")
        if args.requeue:
            print("\nafter outage heal + requeue:")
            for line in demo.get("entries_after", []):
                print(f"  {line}")
            print("final states: " + ", ".join(
                f"{saga_id}={state}"
                for saga_id, state in sorted(demo["states"].items())
            ))
        print(f"\npending entries: {demo['pending_after']}, "
              f"atomicity violations: {len(demo['violations'])}")
        for violation in demo["violations"]:
            print(f"  - {violation}")
    if demo["violations"]:
        return 1
    if args.requeue:
        return 0 if demo["pending_after"] == 0 else 1
    return 0 if demo["parked"] > 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Whisper reproduction — run the paper's experiments.",
    )
    parser.add_argument("--seed", type=int, default=42, help="root RNG seed")

    # Shared flags as parent parsers.  ``default=argparse.SUPPRESS`` keeps
    # a subcommand-level ``--seed``/``--duration`` from clobbering the
    # top-level value (or the per-command ``set_defaults``) when the flag
    # is not actually on the command line.
    seed_parent = argparse.ArgumentParser(add_help=False)
    seed_parent.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="root RNG seed"
    )
    duration_parent = argparse.ArgumentParser(add_help=False)
    duration_parent.add_argument(
        "--duration", type=float, default=argparse.SUPPRESS,
        help="run length in simulated seconds",
    )
    json_parent = argparse.ArgumentParser(add_help=False)
    json_parent.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    subparsers = parser.add_subparsers(dest="command", required=True)

    fig4 = subparsers.add_parser(
        "fig4", parents=[seed_parent], help="Figure 4: messages vs b-peers"
    )
    fig4.add_argument("--max-peers", type=int, default=16)
    fig4.set_defaults(func=_cmd_fig4)

    rtt = subparsers.add_parser(
        "rtt", parents=[seed_parent], help="failure-free RTT distribution"
    )
    rtt.add_argument("--samples", type=int, default=200)
    rtt.set_defaults(func=_cmd_rtt)

    failover = subparsers.add_parser(
        "failover", parents=[seed_parent], help="worst-case RTT (crash)"
    )
    failover.add_argument("--heartbeat", type=float, default=1.0)
    failover.set_defaults(func=_cmd_failover)

    availability = subparsers.add_parser(
        "availability",
        parents=[seed_parent, duration_parent, json_parent],
        help="availability under churn",
    )
    availability.add_argument("--replicas", type=int, default=4)
    availability.set_defaults(func=_cmd_availability, duration=120.0)

    campaign = subparsers.add_parser(
        "campaign",
        parents=[seed_parent, duration_parent, json_parent],
        help="seeded fault campaign (churn + partitions) with invariant audit",
    )
    campaign.add_argument("--replicas", type=int, default=4)
    campaign.add_argument("--mtbf", type=float, default=25.0)
    campaign.add_argument("--mttr", type=float, default=10.0)
    campaign.add_argument("--partitions", type=int, default=2)
    campaign.add_argument("--partition-duration", type=float, default=6.0)
    campaign.add_argument(
        "--workload", choices=("lookup", "enroll"), default="lookup",
        help="probe workload: read-only lookups or mutating enrollments",
    )
    campaign.add_argument(
        "--loss", type=float, default=0.0,
        help="network-wide message loss rate (e.g. 0.01 for 1%%)",
    )
    campaign.add_argument(
        "--no-journal", action="store_true",
        help="disable the dedup journal (at-least-once baseline)",
    )
    campaign.set_defaults(func=_cmd_campaign, duration=90.0)

    overload = subparsers.add_parser(
        "overload",
        parents=[seed_parent, duration_parent, json_parent],
        help="saturation sweep: shed rate + tail latency across the knee",
    )
    overload.add_argument(
        "--rates", default="125,250,375,500",
        help="comma-separated open-loop arrival rates (requests/s)",
    )
    overload.add_argument("--replicas", type=int, default=4)
    overload.add_argument(
        "--dispatch", choices=sorted(DISPATCH_POLICIES), default="least-outstanding",
    )
    overload.add_argument(
        "--queue-bound", type=int, default=8,
        help="per-member admission bound (0 = unbounded)",
    )
    overload.add_argument(
        "--deadline", type=float, default=2.0,
        help="per-request deadline budget in seconds",
    )
    overload.set_defaults(func=_cmd_overload, duration=5.0)

    shard = subparsers.add_parser(
        "shard",
        parents=[seed_parent, json_parent],
        help="semantic sharding: read scaling, message growth, rebalance",
    )
    shard.add_argument(
        "--shards", default="1,2,4",
        help="comma-separated shard counts to sweep",
    )
    shard.add_argument(
        "--replicas", type=int, default=2,
        help="replicas per shard group (fixed across the sweep)",
    )
    shard.add_argument(
        "--rate-multiple", type=float, default=3.0,
        help="offered load as a multiple of one shard group's knee",
    )
    shard.add_argument(
        "--duration", type=float, default=8.0,
        help="Poisson workload duration per point (simulated seconds)",
    )
    shard.add_argument(
        "--window", type=float, default=10.0,
        help="steady-state message-count window per point",
    )
    shard.add_argument(
        "--skip-rebalance", action="store_true",
        help="skip the shard-group-crash rebalance audit",
    )
    shard.set_defaults(func=_cmd_shard)

    check = subparsers.add_parser(
        "check",
        parents=[seed_parent, json_parent],
        help="schedule exploration: invariants under perturbed orderings",
    )
    check.add_argument(
        "--seeds", type=int, default=5,
        help="how many root seeds to explore (starting at --seed)",
    )
    check.add_argument(
        "--schedules", type=int, default=50,
        help="perturbed schedules per seed (plus one baseline run each)",
    )
    check.add_argument(
        "--max-ops", type=int, default=4,
        help="maximum fault ops per random schedule",
    )
    check.add_argument(
        "--timeout", type=float, default=None,
        help="wall-clock budget in real seconds (truncates, never fails)",
    )
    check.add_argument(
        "--out", default="whisper-check-repro.json",
        help="where to write the repro file if a violation is found",
    )
    check.add_argument(
        "--replay", metavar="FILE", default=None,
        help="re-execute a saved repro file and verify its digest",
    )
    check.add_argument(
        "--self-test", action="store_true",
        help="disable epoch fencing and require the checker to catch, "
             "shrink, and replay the resulting violation",
    )
    check.add_argument(
        "--shards", type=int, default=1,
        help="federated shard groups for the explored enroll service "
             "(cross-shard schedules audit ring handoff safety)",
    )
    check.add_argument(
        "--regions", type=int, default=1,
        help="WAN regions the explored group spans (region-isolation "
             "schedules audit election safety across WAN splits)",
    )
    check.add_argument(
        "--capacity", action="store_true",
        help="arm the adaptive-capacity layer (autoscaler + breaker + "
             "cache) and add forced scale ops to explored schedules",
    )
    check.add_argument(
        "--saga", action="store_true",
        help="explore the saga scenario instead: random fault schedules "
             "(orchestrator crashes included) under the atomicity audit",
    )
    check.add_argument(
        "--saga-self-test", action="store_true",
        help="disable compensation and require the atomicity audit to "
             "catch, shrink, and replay the stranded-effects violation",
    )
    check.add_argument(
        "--saga-replay", metavar="FILE", default=None,
        help="re-execute a saved saga repro file and verify its digest",
    )
    check.set_defaults(func=_cmd_check)

    trace = subparsers.add_parser(
        "trace",
        parents=[seed_parent, json_parent],
        help="per-request phase span trees + phase breakdown",
    )
    trace.add_argument("--samples", type=int, default=20)
    trace.add_argument("--crash", action="store_true",
                       help="crash the coordinator mid-run (shows recovery)")
    trace.add_argument("--last", type=int, default=5,
                       help="how many recent traces to print")
    trace.set_defaults(func=_cmd_trace)

    metrics = subparsers.add_parser(
        "metrics",
        parents=[seed_parent, json_parent],
        help="aggregated counters + per-phase latency histograms",
    )
    metrics.add_argument("--samples", type=int, default=50)
    metrics.add_argument("--crash", action="store_true",
                         help="crash the coordinator mid-run (shows recovery)")
    metrics.add_argument("--csv", action="store_true",
                         help="emit the phase breakdown as CSV")
    metrics.set_defaults(func=_cmd_metrics)

    perf = subparsers.add_parser(
        "perf",
        parents=[seed_parent, json_parent],
        help="simulator throughput record (baseline vs current modes)",
    )
    perf.add_argument(
        "--scale", choices=("smoke", "full", "both"), default="both",
        help="workload size; 'both' records the full and smoke tiers",
    )
    perf.add_argument(
        "--smoke", action="store_true",
        help="shorthand for --scale smoke (the CI tier)",
    )
    perf.add_argument(
        "--out", default="BENCH_simnet.json",
        help="where to write the perf record",
    )
    perf.add_argument(
        "--check", metavar="RECORD", default=None,
        help="fail if speedups regress vs this committed record",
    )
    perf.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional speedup regression for --check",
    )
    perf.add_argument(
        "--in-process", action="store_true",
        help="skip subprocess isolation (debugging; shared peak RSS)",
    )
    perf.add_argument("--worker", choices=("baseline", "current"),
                      default=None, help=argparse.SUPPRESS)
    perf.add_argument("--worker-scale", choices=("smoke", "full"),
                      default="smoke", help=argparse.SUPPRESS)
    perf.set_defaults(func=_cmd_perf)

    wan = subparsers.add_parser(
        "wan",
        parents=[seed_parent, json_parent],
        help="multi-region gossip: convergence, staleness, message economy",
    )
    wan.add_argument(
        "--scale", choices=("smoke", "full"), default="full",
        help="sweep size; smoke is the CI tier",
    )
    wan.add_argument(
        "--smoke", action="store_true",
        help="shorthand for --scale smoke (the CI tier)",
    )
    wan.add_argument(
        "--out", default="BENCH_wan.json",
        help="where to write the WAN record",
    )
    wan.set_defaults(func=_cmd_wan)

    saga = subparsers.add_parser(
        "saga",
        parents=[json_parent],
        help="saga bench: availability + atomicity under faults, vs the "
             "no-compensation baseline",
    )
    saga.add_argument(
        "--scale", choices=("smoke", "full"), default="full",
        help="seed count and sagas per seed; smoke is the CI tier",
    )
    saga.add_argument(
        "--smoke", action="store_true",
        help="shorthand for --scale smoke (the CI tier)",
    )
    saga.add_argument(
        "--out", default="BENCH_saga.json",
        help="where to write the saga record",
    )
    saga.set_defaults(func=_cmd_saga)

    capacity = subparsers.add_parser(
        "capacity",
        parents=[seed_parent, json_parent],
        help="adaptive capacity: diurnal trace, autoscaled vs static-max, "
             "plus breaker drill and cache gates",
    )
    capacity.add_argument(
        "--scale", choices=("smoke", "full"), default="full",
        help="phase lengths; smoke is the CI tier",
    )
    capacity.add_argument(
        "--smoke", action="store_true",
        help="shorthand for --scale smoke (the CI tier)",
    )
    capacity.add_argument(
        "--out", default="BENCH_capacity.json",
        help="where to write the capacity record",
    )
    capacity.set_defaults(func=_cmd_capacity)

    dlq = subparsers.add_parser(
        "dlq",
        parents=[seed_parent, json_parent],
        help="dead-letter queue: park sagas whose compensation exhausted "
             "its budget, inspect, optionally requeue",
    )
    dlq.add_argument(
        "--sagas", type=int, default=3,
        help="insolvent sagas to submit against the dead CancelLoan group",
    )
    dlq.add_argument(
        "--requeue", action="store_true",
        help="after the outage heals, requeue every pending entry and "
             "re-audit atomicity",
    )
    dlq.set_defaults(func=_cmd_dlq)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "queue_bound", None) == 0:
        args.queue_bound = None
    return args.func(args)
