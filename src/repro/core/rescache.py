"""Read-through semantic result cache for the SWS-proxy.

Semantically-equivalent read requests need not reach a replica at all:
the proxy keys results on the operation's *semantic annotation* (the
ontology action concept) plus the canonicalized argument map — the same
``shard_key`` canonicalization the shard router uses — so two
syntactically different but semantically identical calls share one
entry.  Hits are served before discovery, skipping the whole
discover→bind→invoke path.

Freshness is bounded two ways:

* **staleness bound** — entries older than ``staleness_bound`` simulated
  seconds are never served;
* **epoch fencing** — every entry remembers the coordination epoch of
  the result it stores.  If the proxy has since accepted a result under
  a *higher* epoch for that group (i.e. a failover happened), the entry
  is fenced: a new coordinator may have recovered writes the cached
  value predates.  Fenced entries are invalidated, never served.

A mutating invocation through the same proxy flushes the whole cache:
without per-key write-set knowledge, any local write may affect any
cached read of the service (conservative, always safe).  Every *serve* is
journalled with the entry's epoch and the fence the proxy held at that
instant, so the checker can audit "zero stale-epoch serves" offline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

__all__ = ["ResultCacheSpec", "CacheEntry", "CacheServe", "SemanticResultCache"]


@dataclass(frozen=True)
class ResultCacheSpec:
    """Tuning knobs, carried by ``ScenarioConfig(result_cache=...)``."""

    capacity: int = 512
    staleness_bound: float = 5.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.staleness_bound <= 0.0:
            raise ValueError("staleness_bound must be positive")


@dataclass
class CacheEntry:
    value: Any
    action: str
    epoch: Any  # Epoch, or None when the serving result carried none
    group_id: Any
    stored_at: float


@dataclass(frozen=True)
class CacheServe:
    """Audit-log entry: one cache hit actually delivered to a caller."""

    at: float
    key: str
    entry_epoch: Any
    fence_epoch: Any
    age: float


class SemanticResultCache:
    """LRU cache of read-only invocation results, epoch-fenced."""

    def __init__(self, spec: ResultCacheSpec, metrics=None):
        self.spec = spec
        self.metrics = metrics
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.stale_epoch_serves = 0  # audited invariant: must stay 0
        self.serves: List[CacheServe] = []

    def __len__(self) -> int:
        return len(self._entries)

    # -- read path ---------------------------------------------------------------------

    def lookup(
        self,
        key: str,
        now: float,
        fence_for: Optional[Callable[[Any], Any]] = None,
    ) -> Optional[CacheEntry]:
        """Return a servable entry, or None (counting a miss).

        ``fence_for(group_id)`` returns the highest epoch the proxy has
        delivered a result under for that group (or None).  An entry
        whose epoch is below the fence is invalidated, not served.
        """
        entry = self._entries.get(key)
        if entry is None:
            self._miss()
            return None
        age = now - entry.stored_at
        if age > self.spec.staleness_bound:
            del self._entries[key]
            self._miss()
            return None
        fence = fence_for(entry.group_id) if fence_for is not None else None
        if fence is not None and entry.epoch is not None and entry.epoch < fence:
            del self._entries[key]
            self._invalidate_count(1)
            self._miss()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self.metrics is not None:
            self.metrics.inc("rescache.hit")
        if fence is not None and entry.epoch is not None and entry.epoch < fence:
            self.stale_epoch_serves += 1  # unreachable by construction; audited anyway
        self.serves.append(
            CacheServe(at=now, key=key, entry_epoch=entry.epoch, fence_epoch=fence, age=age)
        )
        return entry

    # -- write path --------------------------------------------------------------------

    def store(self, key: str, value: Any, *, action: str, epoch: Any, group_id: Any, now: float) -> None:
        self._entries[key] = CacheEntry(
            value=value, action=action, epoch=epoch, group_id=group_id, stored_at=now
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.spec.capacity:
            self._entries.popitem(last=False)

    # -- invalidation ------------------------------------------------------------------

    def invalidate_all(self) -> int:
        """Flush everything (a mutating op landed on this service)."""
        doomed = len(self._entries)
        self._entries.clear()
        self._invalidate_count(doomed)
        return doomed

    def invalidate_group(self, group_id: Any) -> int:
        """Drop every entry stored from ``group_id`` (mutating op landed)."""
        doomed = [k for k, e in self._entries.items() if e.group_id == group_id]
        for key in doomed:
            del self._entries[key]
        self._invalidate_count(len(doomed))
        return len(doomed)

    def invalidate_action(self, action: str) -> int:
        """Drop every entry cached under the given semantic action."""
        doomed = [k for k, e in self._entries.items() if e.action == action]
        for key in doomed:
            del self._entries[key]
        self._invalidate_count(len(doomed))
        return len(doomed)

    def invalidate_epoch(self, group_id: Any, fence: Any) -> int:
        """Drop entries of ``group_id`` fenced by a newly-seen epoch."""
        doomed = [
            k
            for k, e in self._entries.items()
            if e.group_id == group_id and e.epoch is not None and e.epoch < fence
        ]
        for key in doomed:
            del self._entries[key]
        self._invalidate_count(len(doomed))
        return len(doomed)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- internals ---------------------------------------------------------------------

    def _miss(self) -> None:
        self.misses += 1
        if self.metrics is not None:
            self.metrics.inc("rescache.miss")

    def _invalidate_count(self, n: int) -> None:
        if n <= 0:
            return
        self.invalidated += n
        if self.metrics is not None:
            for _ in range(n):
                self.metrics.inc("rescache.invalidated")
