"""Deployment of semantic b-peer groups.

Bundles the steps §4 describes: create the group identity, derive the
*semantic advertisement* from the service's WSDL-S annotations, place one
b-peer (with its service implementation) per host, join them into the
logical group, publish the advertisement network-wide, and bootstrap the
first Bully election.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..backend.services import ServiceImplementation
from ..p2p.advertisement import SemanticAdvertisement
from ..p2p.ids import PeerGroupId, PeerId
from ..p2p.peer import Peer
from ..qos.metrics import QosMetrics
from ..simnet.network import Network
from ..wsdl.annotations import SemanticAnnotation
from .bpeer import BPeer

__all__ = ["BPeerGroup", "deploy_bpeer_group", "semantic_advertisement_for"]


def semantic_advertisement_for(
    group_name: str,
    annotation: SemanticAnnotation,
    ontology_uri: str,
    description: str = "",
    qos: Optional["QosMetrics"] = None,
    shard_index: Optional[int] = None,
    shard_count: Optional[int] = None,
    region: Optional[str] = None,
) -> SemanticAdvertisement:
    """Build the group's semantic advertisement from a WSDL-S annotation.

    ``qos`` optionally attaches the §2.4 QoS annotation (advertised
    expected time / cost / reliability) that QoS-aware proxies use as a
    selection prior.  ``shard_index``/``shard_count`` mark the group as
    one shard of a federated set partitioning the service keyspace;
    ``region`` marks its home region in multi-region topologies.  All
    stay ``None`` for single-group single-LAN deployments so the
    advertisement wire format is unchanged.
    """
    return SemanticAdvertisement(
        group_id=PeerGroupId.from_name(group_name),
        name=group_name,
        action=annotation.action,
        inputs=annotation.inputs,
        outputs=annotation.outputs,
        ontology_uri=ontology_uri,
        description=description,
        qos_time=qos.time if qos is not None else None,
        qos_cost=qos.cost if qos is not None else None,
        qos_reliability=qos.reliability if qos is not None else None,
        shard_index=shard_index,
        shard_count=shard_count,
        region=region,
    )


@dataclass
class BPeerGroup:
    """A deployed b-peer group: identity, advertisement, replicas."""

    group_id: PeerGroupId
    name: str
    advertisement: SemanticAdvertisement
    peers: List[BPeer] = field(default_factory=list)

    def coordinator_peer(self) -> Optional[BPeer]:
        """The replica that currently believes it coordinates (if any)."""
        for peer in self.peers:
            if peer.node.up and peer.is_coordinator:
                return peer
        return None

    def coordinator_id(self) -> Optional[PeerId]:
        peer = self.coordinator_peer()
        return peer.peer_id if peer is not None else None

    def alive_peers(self) -> List[BPeer]:
        return [peer for peer in self.peers if peer.node.up]

    def crash_coordinator(self) -> Optional[BPeer]:
        """Fail-stop the current coordinator's host; returns the victim."""
        victim = self.coordinator_peer()
        if victim is not None:
            victim.node.crash()
        return victim

    def total_requests_executed(self) -> int:
        return sum(peer.requests_executed for peer in self.peers)

    def total_requests_shed(self) -> int:
        """Requests refused by admission control, group-wide."""
        return sum(peer.requests_shed for peer in self.peers)


def deploy_bpeer_group(
    network: Network,
    rendezvous: Peer,
    group_name: str,
    annotation: SemanticAnnotation,
    implementations: Sequence[ServiceImplementation],
    ontology_uri: str = "",
    host_prefix: Optional[str] = None,
    heartbeat_interval: float = 1.0,
    miss_threshold: int = 3,
    load_sharing: bool = False,
    dispatch=None,
    queue_bound: Optional[int] = None,
    dedup_journal: bool = True,
    journal_capacity: int = 4096,
    epoch_fencing: bool = True,
    advertise_remote: bool = True,
    advertise_qos: Optional[QosMetrics] = None,
    shard_index: Optional[int] = None,
    shard_count: Optional[int] = None,
    region: Optional[str] = None,
    host_regions: Optional[Sequence[str]] = None,
    rendezvous_by_region: Optional[Dict[str, Peer]] = None,
) -> BPeerGroup:
    """Place one b-peer per implementation and wire the group together.

    Each implementation gets its own host (``<prefix><i>``), mirroring the
    paper's one-peer-per-machine testbed.  Every b-peer publishes the
    group's semantic advertisement into the rendezvous' SRDI index so that
    SWS-proxies anywhere can discover the group.

    Multi-region placement: ``region`` puts every host (and the
    advertisement's home) in one region; ``host_regions`` instead spreads
    hosts round-robin over the given regions (a group *spanning* the WAN,
    one election domain).  ``rendezvous_by_region`` maps each region to
    its rendezvous peer — a b-peer always attaches to the rendezvous of
    the region it lands in (falling back to ``rendezvous``).
    """
    if not implementations:
        raise ValueError("a b-peer group needs at least one implementation")
    prefix = host_prefix or f"bpeer-{group_name}-"
    advertisement = semantic_advertisement_for(
        group_name,
        annotation,
        ontology_uri,
        description=f"b-peer group {group_name}",
        qos=advertise_qos,
        shard_index=shard_index,
        shard_count=shard_count,
        region=region,
    )
    group = BPeerGroup(
        group_id=advertisement.group_id,
        name=group_name,
        advertisement=advertisement,
    )
    for index, implementation in enumerate(implementations):
        host_region = region
        if host_regions:
            host_region = host_regions[index % len(host_regions)]
        node = network.add_host(f"{prefix}{index}", region=host_region)
        home_rendezvous = rendezvous
        if rendezvous_by_region and host_region in rendezvous_by_region:
            home_rendezvous = rendezvous_by_region[host_region]
        bpeer = BPeer(
            node,
            group_id=group.group_id,
            group_name=group_name,
            implementation=implementation,
            heartbeat_interval=heartbeat_interval,
            miss_threshold=miss_threshold,
            load_sharing=load_sharing,
            dispatch=dispatch,
            queue_bound=queue_bound,
            dedup_journal=dedup_journal,
            journal_capacity=journal_capacity,
            epoch_fencing=epoch_fencing,
        )
        bpeer.start(home_rendezvous)
        # Every replica keeps the group advertisement alive (idempotent in
        # the SRDI index), so it survives any single publisher's death.
        bpeer.keep_published(advertisement, remote=advertise_remote)
        group.peers.append(bpeer)
    group.peers[0].bootstrap_election()
    return group
