"""Declarative deployment topologies: regions, WAN links, gossip tuning.

The paper's testbed is one switched LAN; ROADMAP item 3 federates it
across regions.  Instead of growing ``WhisperSystem`` / ``deploy_service``
more flat keyword arguments, the whole network shape is one frozen value —
a :class:`Topology` of :class:`RegionSpec` segments joined by
:class:`WanLinkSpec` links — carried on
:class:`~repro.core.config.ScenarioConfig` as the single ``topology``
field.  Latency everywhere is a *spec string* (see
:func:`repro.simnet.latency.parse_latency_spec`) so the builder, the CLI
and tests all construct models through one grammar.

``Topology.single_region()`` (or leaving ``ScenarioConfig.topology`` as
``None``) reproduces the paper's flat LAN byte-for-byte: no region
qualification, no gossip services, identical message counts.

Example::

    topology = (
        Topology.builder()
        .region("eu", latency="lan")
        .region("us", latency="lan")
        .region("ap", latency="lan")
        .link("eu", "us", latency="lognormal:40ms±15ms")
        .link("eu", "ap", latency="lognormal:120ms±30ms",
              latency_back="lognormal:140ms±30ms")
        .link("us", "ap", latency="lognormal:90ms±20ms")
        .gossip(fanout=2, interval=0.5)
        .build()
    )
    system = WhisperSystem(ScenarioConfig(topology=topology))
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..simnet.latency import parse_latency_spec

__all__ = [
    "RegionSpec",
    "WanLinkSpec",
    "GossipSpec",
    "Topology",
    "TopologyBuilder",
    "DEFAULT_WAN_LATENCY",
    "DEFAULT_WAN_BANDWIDTH_BPS",
]

#: A mid-continental WAN hop: median 40 ms one way with heavy-tailed jitter.
DEFAULT_WAN_LATENCY = "lognormal:40ms±15ms"
#: 20 Mbit/s of provisioned inter-region capacity.
DEFAULT_WAN_BANDWIDTH_BPS = 20e6


@dataclass(frozen=True)
class RegionSpec:
    """One region: a switched LAN segment with its own characteristics."""

    name: str
    #: Latency spec string (or LatencyModel) for intra-region links.
    latency: str = "lan"
    bandwidth_bps: float = 100e6
    loss_rate: float = 0.0

    def __post_init__(self):
        if not self.name or "/" in self.name:
            raise ValueError(f"invalid region name {self.name!r}")
        parse_latency_spec(self.latency)  # fail fast on typos
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"region {self.name}: loss_rate out of range")


@dataclass(frozen=True)
class WanLinkSpec:
    """A WAN link between two regions, optionally asymmetric."""

    a: str
    b: str
    latency: str = DEFAULT_WAN_LATENCY
    #: Return-path latency; ``None`` means symmetric.
    latency_back: Optional[str] = None
    bandwidth_bps: float = DEFAULT_WAN_BANDWIDTH_BPS
    loss_rate: float = 0.0

    def __post_init__(self):
        if self.a == self.b:
            raise ValueError(f"WAN link needs two distinct regions, got {self.a!r}")
        parse_latency_spec(self.latency)
        if self.latency_back is not None:
            parse_latency_spec(self.latency_back)
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"WAN {self.a}-{self.b}: loss_rate out of range")


@dataclass(frozen=True)
class GossipSpec:
    """Tuning for the cross-region gossip discovery layer."""

    #: Rumor fanout: peers contacted per gossip round.
    fanout: int = 2
    #: Seconds between rumor rounds.
    interval: float = 0.5
    #: Seconds between anti-entropy digest exchanges.
    anti_entropy_interval: float = 5.0
    #: Rounds a rumor stays hot (re-forwarded) after first sight.
    rumor_rounds: int = 2
    #: ``"gossip"`` (rumor + anti-entropy) or ``"flood"`` (the baseline:
    #: every SRDI push is forwarded to every federated rendezvous).
    mode: str = "gossip"

    def __post_init__(self):
        if self.fanout < 1:
            raise ValueError("gossip fanout must be >= 1")
        if self.interval <= 0 or self.anti_entropy_interval <= 0:
            raise ValueError("gossip intervals must be positive")
        if self.rumor_rounds < 1:
            raise ValueError("rumor_rounds must be >= 1")
        if self.mode not in ("gossip", "flood"):
            raise ValueError(f"unknown gossip mode {self.mode!r}")


@dataclass(frozen=True)
class Topology:
    """The complete network shape of one deployment scenario."""

    regions: Tuple[RegionSpec, ...] = (RegionSpec("lan0"),)
    #: Declared WAN links; empty with >1 region means a full symmetric
    #: mesh at the default WAN characteristics (see :meth:`wan_links_effective`).
    wan_links: Tuple[WanLinkSpec, ...] = ()
    gossip: GossipSpec = field(default_factory=GossipSpec)
    #: Service placement across regions: ``"replicate"`` deploys one
    #: b-peer group per region (nearest-region binding + failover),
    #: ``"span"`` stretches a single group's replicas round-robin over
    #: the regions (one election domain across the WAN).
    placement: str = "replicate"
    #: The region clients/proxies call home; defaults to the first.
    home_region: Optional[str] = None

    def __post_init__(self):
        if not self.regions:
            raise ValueError("a topology needs at least one region")
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")
        for link in self.wan_links:
            for end in (link.a, link.b):
                if end not in names:
                    raise ValueError(f"WAN link references unknown region {end!r}")
        if self.placement not in ("replicate", "span"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.home_region is not None and self.home_region not in names:
            raise ValueError(f"home_region {self.home_region!r} is not a region")

    # -- accessors ----------------------------------------------------------------

    @property
    def multi_region(self) -> bool:
        return len(self.regions) > 1

    @property
    def home(self) -> str:
        return self.home_region or self.regions[0].name

    def region_names(self) -> List[str]:
        return [region.name for region in self.regions]

    def region(self, name: str) -> RegionSpec:
        for spec in self.regions:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def wan_links_effective(self) -> Tuple[WanLinkSpec, ...]:
        """Declared links, or the implicit full mesh when none are given."""
        if self.wan_links or not self.multi_region:
            return self.wan_links
        names = self.region_names()
        return tuple(
            WanLinkSpec(a, b)
            for index, a in enumerate(names)
            for b in names[index + 1 :]
        )

    def replace(self, **changes) -> "Topology":
        return replace(self, **changes)

    # -- constructors -------------------------------------------------------------

    @staticmethod
    def single_region(name: str = "lan0", latency: str = "lan") -> "Topology":
        """The paper's testbed: one switched LAN, no WAN, no gossip."""
        return Topology(regions=(RegionSpec(name, latency=latency),))

    @staticmethod
    def mesh(
        region_names,
        lan_latency: str = "lan",
        wan_latency: str = DEFAULT_WAN_LATENCY,
        gossip: Optional[GossipSpec] = None,
        placement: str = "replicate",
    ) -> "Topology":
        """A full symmetric mesh over ``region_names`` — the bench workhorse."""
        names = list(region_names)
        return Topology(
            regions=tuple(RegionSpec(name, latency=lan_latency) for name in names),
            wan_links=tuple(
                WanLinkSpec(a, b, latency=wan_latency)
                for index, a in enumerate(names)
                for b in names[index + 1 :]
            ),
            gossip=gossip if gossip is not None else GossipSpec(),
            placement=placement,
        )

    @staticmethod
    def builder() -> "TopologyBuilder":
        return TopologyBuilder()


class TopologyBuilder:
    """Fluent construction of a :class:`Topology`."""

    def __init__(self):
        self._regions: List[RegionSpec] = []
        self._links: List[WanLinkSpec] = []
        self._gossip = GossipSpec()
        self._placement = "replicate"
        self._home: Optional[str] = None

    def region(
        self,
        name: str,
        latency: str = "lan",
        bandwidth_bps: float = 100e6,
        loss_rate: float = 0.0,
    ) -> "TopologyBuilder":
        self._regions.append(
            RegionSpec(name, latency=latency, bandwidth_bps=bandwidth_bps, loss_rate=loss_rate)
        )
        return self

    def link(
        self,
        a: str,
        b: str,
        latency: str = DEFAULT_WAN_LATENCY,
        latency_back: Optional[str] = None,
        bandwidth_bps: float = DEFAULT_WAN_BANDWIDTH_BPS,
        loss_rate: float = 0.0,
    ) -> "TopologyBuilder":
        self._links.append(
            WanLinkSpec(
                a,
                b,
                latency=latency,
                latency_back=latency_back,
                bandwidth_bps=bandwidth_bps,
                loss_rate=loss_rate,
            )
        )
        return self

    def gossip(
        self,
        fanout: int = 2,
        interval: float = 0.5,
        anti_entropy_interval: float = 5.0,
        rumor_rounds: int = 2,
        mode: str = "gossip",
    ) -> "TopologyBuilder":
        self._gossip = GossipSpec(
            fanout=fanout,
            interval=interval,
            anti_entropy_interval=anti_entropy_interval,
            rumor_rounds=rumor_rounds,
            mode=mode,
        )
        return self

    def place(self, placement: str) -> "TopologyBuilder":
        self._placement = placement
        return self

    def home(self, region: str) -> "TopologyBuilder":
        self._home = region
        return self

    def build(self) -> Topology:
        if not self._regions:
            raise ValueError("topology builder: add at least one region")
        return Topology(
            regions=tuple(self._regions),
            wan_links=tuple(self._links),
            gossip=self._gossip,
            placement=self._placement,
            home_region=self._home,
        )
