"""Seeded fault campaigns: randomized failures + invariant auditing.

The benchmarks crash *specific* hosts at *chosen* instants; a campaign
instead drives the deployment through a seeded random schedule of churn
and partitions while an open-loop client keeps probing, then audits the
run against the recovery layer's safety invariants:

* **alternation** — per host, injected crash/restart events strictly
  alternate (the pre-fix churn scheduler could crash a host that was
  already down);
* **one coordinator per epoch** — every announced epoch is owned by its
  announcer, each peer's announced epochs are strictly increasing, and no
  full epoch is ever announced by two peers;
* **no stale result** — the proxy never delivered a result under an epoch
  lower than one it had already delivered (per group);
* **convergence** — after the schedule drains and a cooldown settles, at
  most one live peer believes it coordinates the group.

Campaigns are deterministic per seed (all randomness flows from the
network's :class:`~repro.simnet.rng.RngRegistry`), so a violating run is
a reproducible regression test, not an anecdote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..simnet.events import Interrupt
from ..soap.client import SoapClient
from ..soap.fault import SoapFault
from ..soap.http import RequestTimeout
from .config import ScenarioConfig
from .system import WhisperSystem

__all__ = ["FaultCampaign", "CampaignReport"]


@dataclass
class CampaignReport:
    """What happened during one campaign, plus the invariant audit."""

    seed: int
    duration: float
    probes_ok: int = 0
    probes_failed: int = 0
    crashes: int = 0
    restarts: int = 0
    partitions: int = 0
    elections_won: int = 0
    epochs_announced: int = 0
    stale_epoch_rejections: int = 0
    stale_epoch_redirects: int = 0
    stale_results_discarded: int = 0
    rebinds: int = 0
    live_coordinators: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def probes(self) -> int:
        return self.probes_ok + self.probes_failed

    @property
    def availability(self) -> float:
        return self.probes_ok / self.probes if self.probes else 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        lines = [
            f"fault campaign (seed={self.seed}, {self.duration:.0f}s)",
            f"  probes        : {self.probes} ({self.probes_ok} ok, "
            f"{self.probes_failed} failed)",
            f"  availability  : {self.availability:.4f}",
            f"  injected      : {self.crashes} crashes, {self.restarts} restarts, "
            f"{self.partitions} partitions",
            f"  elections won : {self.elections_won} "
            f"({self.epochs_announced} epochs announced)",
            f"  fencing       : {self.stale_epoch_rejections} stale requests "
            f"rejected, {self.stale_epoch_redirects} stale redirects, "
            f"{self.stale_results_discarded} stale results discarded",
            f"  proxy rebinds : {self.rebinds}",
            f"  live coords   : {self.live_coordinators}",
        ]
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    - {violation}" for violation in self.violations)
        else:
            lines.append("  invariants    : all hold")
        return "\n".join(lines)


class FaultCampaign:
    """One seeded campaign against a freshly built student-service system."""

    def __init__(
        self,
        seed: int,
        duration: float = 90.0,
        replicas: int = 4,
        mtbf: float = 25.0,
        mttr: float = 10.0,
        partitions: int = 2,
        partition_duration: float = 6.0,
        probe_period: float = 0.5,
        probe_timeout: float = 2.0,
        heartbeat_interval: float = 0.5,
        miss_threshold: int = 2,
    ):
        self.seed = seed
        self.duration = duration
        self.replicas = replicas
        self.mtbf = mtbf
        self.mttr = mttr
        self.partitions = partitions
        self.partition_duration = partition_duration
        self.probe_period = probe_period
        self.probe_timeout = probe_timeout
        self.system = WhisperSystem(
            ScenarioConfig(
                seed=seed,
                heartbeat_interval=heartbeat_interval,
                miss_threshold=miss_threshold,
                replicas=replicas,
            )
        )
        self.service = self.system.deploy_student_service()

    # -- the run ---------------------------------------------------------------------

    def run(self) -> CampaignReport:
        system = self.system
        service = self.service
        report = CampaignReport(seed=self.seed, duration=self.duration)
        system.settle(6.0)
        start = system.env.now
        hosts = [peer.node.name for peer in service.group.peers]

        system.failures.churn(
            hosts, mtbf=self.mtbf, mttr=self.mttr, until=start + self.duration
        )
        report.partitions = self._schedule_partitions(hosts, start)
        self._drive_probes(report)
        # Cooldown: let pending restarts land, partitions heal, and the
        # final election converge before auditing.
        system.run_until(start + self.duration)
        system.settle(10.0)

        self._collect(report)
        self._audit(report)
        return report

    def _schedule_partitions(self, hosts: List[str], start: float) -> int:
        """Seeded, non-overlapping isolation windows.

        Each window cuts one b-peer host off from *everything else*
        (members, rendezvous, web host).  Isolating the current
        coordinator forces detection + re-election; the heal then makes
        the deposed coordinator re-announce its stale term — exactly the
        split-brain scenario the epoch fencing exists for.
        """
        if self.partitions <= 0 or len(hosts) < 2:
            return 0
        rng = self.system.network.rng.stream("campaign")
        everyone = list(self.system.network.hosts.keys())
        usable = self.duration - 20.0
        if usable <= 0:
            return 0
        slot = usable / self.partitions
        scheduled = 0
        for index in range(self.partitions):
            window = min(self.partition_duration, max(1.0, slot - 2.0))
            offset = rng.uniform(0.0, max(0.0, slot - window - 1.0))
            at = start + 5.0 + index * slot + offset
            victim = rng.choice(hosts)
            others = [name for name in everyone if name != victim]
            self.system.failures.partition_at(at, [victim], others, duration=window)
            scheduled += 1
        return scheduled

    def _drive_probes(self, report: CampaignReport) -> None:
        system = self.system
        service = self.service
        node = system.network.add_host("campaign-client")
        soap = SoapClient(node, default_timeout=self.probe_timeout)

        def one_probe(sequence: int):
            try:
                yield from soap.call(
                    service.address,
                    service.path,
                    "StudentInformation",
                    {"ID": f"S{sequence % 200 + 1:05d}"},
                    timeout=self.probe_timeout,
                )
            except (SoapFault, RequestTimeout):
                report.probes_failed += 1
            except Interrupt:
                return
            else:
                report.probes_ok += 1

        def injector():
            clock = 0.0
            sequence = 0
            while clock < self.duration:
                node.spawn(one_probe(sequence), name=f"campaign-probe-{sequence}")
                sequence += 1
                yield system.env.timeout(self.probe_period)
                clock += self.probe_period

        system.env.run(until=node.spawn(injector()))

    # -- reporting + auditing -----------------------------------------------------------

    def _collect(self, report: CampaignReport) -> None:
        service = self.service
        report.crashes = sum(
            1 for event in self.system.failures.log if event.kind == "crash"
        )
        report.restarts = sum(
            1 for event in self.system.failures.log if event.kind == "restart"
        )
        for peer in service.group.peers:
            elector = peer.coordinator_mgr.elector
            report.elections_won += elector.stats.elections_won
            report.epochs_announced += len(elector.announced)
            report.stale_epoch_rejections += peer.stale_epoch_rejections
        stats = service.proxy.stats
        report.stale_epoch_redirects = stats.stale_epoch_redirects
        report.stale_results_discarded = stats.stale_results_discarded
        report.rebinds = stats.rebinds
        report.live_coordinators = sum(
            1
            for peer in service.group.peers
            if peer.node.up and peer.coordinator_mgr.is_coordinator
        )

    def _audit(self, report: CampaignReport) -> None:
        violations = report.violations
        violations.extend(self.system.failures.alternation_violations())

        # One coordinator per epoch: ownership, per-peer monotonicity, and
        # global uniqueness of announced terms.
        seen: Dict[Tuple[int, str], str] = {}
        for peer in self.service.group.peers:
            elector = peer.coordinator_mgr.elector
            previous = None
            for when, epoch in elector.announced:
                if epoch.owner_hex != peer.peer_id.uuid_hex:
                    violations.append(
                        f"{peer.name}: announced {epoch} it does not own "
                        f"(t={when:.3f})"
                    )
                if previous is not None and not previous < epoch:
                    violations.append(
                        f"{peer.name}: announced {epoch} after {previous} "
                        f"(t={when:.3f}, not increasing)"
                    )
                previous = epoch
                holder = seen.get(epoch.key())
                if holder is not None and holder != peer.name:
                    violations.append(
                        f"epoch {epoch} announced by both {holder} and {peer.name}"
                    )
                seen[epoch.key()] = peer.name

        # No stale result: delivered epochs are monotone per group.
        high: Dict[object, object] = {}
        for group_id, epoch in self.service.proxy.result_epoch_log:
            last = high.get(group_id)
            if last is not None and epoch < last:
                violations.append(
                    f"proxy delivered result under {epoch} after {last} "
                    f"(group {group_id})"
                )
            if last is None or epoch > last:
                high[group_id] = epoch

        # Convergence: after cooldown, at most one live self-believed
        # coordinator remains.
        if report.live_coordinators > 1:
            claimants = [
                peer.name
                for peer in self.service.group.peers
                if peer.node.up and peer.coordinator_mgr.is_coordinator
            ]
            violations.append(
                f"{report.live_coordinators} live peers claim coordination "
                f"after cooldown: {claimants}"
            )
