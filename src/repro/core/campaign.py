"""Seeded fault campaigns: randomized failures + invariant auditing.

The benchmarks crash *specific* hosts at *chosen* instants; a campaign
instead drives the deployment through a seeded random schedule of churn
and partitions while an open-loop client keeps probing, then audits the
run against the recovery layer's safety invariants:

* **alternation** — per host, injected crash/restart events strictly
  alternate (the pre-fix churn scheduler could crash a host that was
  already down);
* **one coordinator per epoch** — every announced epoch is owned by its
  announcer, each peer's announced epochs are strictly increasing, and no
  full epoch is ever announced by two peers;
* **no stale result** — the proxy never delivered a result under an epoch
  lower than one it had already delivered (per group);
* **convergence** — after the schedule drains and a cooldown settles, at
  most one live peer believes it coordinates the group;
* **exactly-once** (mutating workloads, journal enabled) — no invocation
  id appears more than once in the backends' side-effect ledgers: a
  retried/redelegated call never applied its mutation twice.  The same
  audit run against the at-least-once baseline (``dedup_journal=False``)
  *documents* the duplicates instead of failing, proving the test has
  teeth.

Campaigns are deterministic per seed (all randomness flows from the
network's :class:`~repro.simnet.rng.RngRegistry`), so a violating run is
a reproducible regression test, not an anecdote.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..backend.datasets import student_database
from ..backend.services import student_enrollment
from ..check.invariants import (
    announced_epoch_violations,
    convergence_violations,
    effect_totals,
    exactly_once_violations,
    stale_result_violations,
)
from ..simnet.events import Interrupt
from ..soap.client import SoapClient
from ..soap.fault import SoapFault
from ..soap.http import RequestTimeout
from ..wsdl.samples import student_admin_wsdl
from .config import ScenarioConfig
from .errors import WhisperError
from .system import WhisperSystem

__all__ = ["FaultCampaign", "CampaignReport"]


@dataclass
class CampaignReport:
    """What happened during one campaign, plus the invariant audit."""

    seed: int
    duration: float
    workload: str = "lookup"
    loss_rate: float = 0.0
    dedup_journal: bool = True
    probes_ok: int = 0
    probes_failed: int = 0
    crashes: int = 0
    restarts: int = 0
    partitions: int = 0
    elections_won: int = 0
    epochs_announced: int = 0
    stale_epoch_rejections: int = 0
    stale_epoch_redirects: int = 0
    stale_results_discarded: int = 0
    rebinds: int = 0
    live_coordinators: int = 0
    # -- exactly-once / duplicate-execution audit --
    #: Probe results replayed from the dedup journal (retry observed the
    #: original value: ``InvokeResult.deduped``).
    probes_deduped: int = 0
    journal_hits: int = 0
    journal_merges: int = 0
    journal_replications: int = 0
    journal_pushes: int = 0
    duplicates_suppressed: int = 0
    requests_parked: int = 0
    #: Mutating executions ledgered on any backend (one per application).
    effects_applied: int = 0
    #: Distinct invocation ids with at least one ledgered effect.
    distinct_effects: int = 0
    #: invocation id -> application count, for every id applied > once
    #: across *all* backends (exactly-once demands this stays empty).
    double_applied: Dict[str, int] = field(default_factory=dict)
    #: Client-observed latencies of successful probes (seconds).
    probe_latencies: List[float] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def probes(self) -> int:
        return self.probes_ok + self.probes_failed

    @property
    def availability(self) -> float:
        return self.probes_ok / self.probes if self.probes else 0.0

    @property
    def duplicate_rate(self) -> float:
        """Share of effectful invocations that were applied more than once."""
        return len(self.double_applied) / self.distinct_effects if self.distinct_effects else 0.0

    @property
    def probe_p99(self) -> Optional[float]:
        """p99 of successful probe latencies (seconds), None without data."""
        if not self.probe_latencies:
            return None
        ordered = sorted(self.probe_latencies)
        # Nearest-rank p99.
        rank = max(0, -(-99 * len(ordered) // 100) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable report (``python -m repro campaign --json``)."""
        return {
            "seed": self.seed,
            "duration": self.duration,
            "workload": self.workload,
            "loss_rate": self.loss_rate,
            "dedup_journal": self.dedup_journal,
            "probes": self.probes,
            "probes_ok": self.probes_ok,
            "probes_failed": self.probes_failed,
            "availability": self.availability,
            "probe_p99_s": self.probe_p99,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "partitions": self.partitions,
            "elections_won": self.elections_won,
            "epochs_announced": self.epochs_announced,
            "stale_epoch_rejections": self.stale_epoch_rejections,
            "stale_epoch_redirects": self.stale_epoch_redirects,
            "stale_results_discarded": self.stale_results_discarded,
            "rebinds": self.rebinds,
            "live_coordinators": self.live_coordinators,
            "probes_deduped": self.probes_deduped,
            "journal_hits": self.journal_hits,
            "journal_merges": self.journal_merges,
            "journal_replications": self.journal_replications,
            "journal_pushes": self.journal_pushes,
            "duplicates_suppressed": self.duplicates_suppressed,
            "requests_parked": self.requests_parked,
            "effects_applied": self.effects_applied,
            "distinct_effects": self.distinct_effects,
            "double_applied": dict(self.double_applied),
            "duplicate_rate": self.duplicate_rate,
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def format(self) -> str:
        journal = "journal on" if self.dedup_journal else "at-least-once baseline"
        lines = [
            f"fault campaign (seed={self.seed}, {self.duration:.0f}s, "
            f"workload={self.workload}, loss={self.loss_rate:.2%}, {journal})",
            f"  probes        : {self.probes} ({self.probes_ok} ok, "
            f"{self.probes_failed} failed, {self.probes_deduped} deduped)",
            f"  availability  : {self.availability:.4f}",
            f"  injected      : {self.crashes} crashes, {self.restarts} restarts, "
            f"{self.partitions} partitions",
            f"  elections won : {self.elections_won} "
            f"({self.epochs_announced} epochs announced)",
            f"  fencing       : {self.stale_epoch_rejections} stale requests "
            f"rejected, {self.stale_epoch_redirects} stale redirects, "
            f"{self.stale_results_discarded} stale results discarded",
            f"  proxy rebinds : {self.rebinds}",
            f"  live coords   : {self.live_coordinators}",
            f"  journal       : {self.journal_hits} hits, {self.journal_merges} "
            f"merges, {self.journal_replications} replications, "
            f"{self.journal_pushes} pushes, {self.requests_parked} parked",
            f"  exactly-once  : {self.effects_applied} effects over "
            f"{self.distinct_effects} invocations, "
            f"{len(self.double_applied)} double-applied, "
            f"{self.duplicates_suppressed} duplicate results suppressed",
        ]
        if self.probe_p99 is not None:
            lines.append(f"  probe p99     : {self.probe_p99 * 1000:.1f} ms")
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    - {violation}" for violation in self.violations)
        else:
            lines.append("  invariants    : all hold")
        return "\n".join(lines)


class FaultCampaign:
    """One seeded campaign against a freshly built student-service system."""

    def __init__(
        self,
        seed: int,
        duration: float = 90.0,
        replicas: int = 4,
        mtbf: float = 25.0,
        mttr: float = 10.0,
        partitions: int = 2,
        partition_duration: float = 6.0,
        probe_period: float = 0.5,
        probe_timeout: float = 2.0,
        heartbeat_interval: float = 0.5,
        miss_threshold: int = 2,
        workload: str = "lookup",
        loss_rate: float = 0.0,
        dedup_journal: bool = True,
        probe_budget: float = 10.0,
        students: int = 200,
    ):
        if workload not in ("lookup", "enroll"):
            raise ValueError(f"unknown campaign workload {workload!r}")
        self.seed = seed
        self.duration = duration
        self.replicas = replicas
        self.mtbf = mtbf
        self.mttr = mttr
        self.partitions = partitions
        self.partition_duration = partition_duration
        self.probe_period = probe_period
        self.probe_timeout = probe_timeout
        #: ``enroll`` probes: retry budget per logical call — wide enough
        #: to straddle a partition heal, which is exactly when an
        #: at-least-once retry re-executes a mutation it already applied.
        self.probe_budget = probe_budget
        self.workload = workload
        self.loss_rate = loss_rate
        self.dedup_journal = dedup_journal
        self.students = students
        self.system = WhisperSystem(
            ScenarioConfig(
                seed=seed,
                heartbeat_interval=heartbeat_interval,
                miss_threshold=miss_threshold,
                replicas=replicas,
                students=students,
                dedup_journal=dedup_journal,
            )
        )
        if loss_rate:
            self.system.network.loss_rate = loss_rate
        if workload == "enroll":
            self.service = self._deploy_enroll_service()
        else:
            self.service = self.system.deploy_student_service()

    def _deploy_enroll_service(self):
        """The mutating workload: §3's ``sm:EnrollStudent``, one
        operational-database replica per b-peer (independent stores, so
        the audit can attribute every application)."""
        implementations = [
            student_enrollment(student_database(self.students))
            for _ in range(self.replicas)
        ]
        return self.system.deploy_service(
            student_admin_wsdl(),
            {"EnrollStudent": implementations},
            web_host="web0",
        )

    # -- the run ---------------------------------------------------------------------

    def run(self) -> CampaignReport:
        system = self.system
        service = self.service
        report = CampaignReport(
            seed=self.seed,
            duration=self.duration,
            workload=self.workload,
            loss_rate=self.loss_rate,
            dedup_journal=self.dedup_journal,
        )
        system.settle(6.0)
        start = system.env.now
        hosts = [peer.node.name for peer in service.group.peers]

        system.failures.churn(
            hosts, mtbf=self.mtbf, mttr=self.mttr, until=start + self.duration
        )
        report.partitions = self._schedule_partitions(hosts, start)
        self._drive_probes(report)
        # Cooldown: let pending restarts land, partitions heal, and the
        # final election converge before auditing.
        system.run_until(start + self.duration)
        system.settle(10.0)

        self._collect(report)
        self._audit(report)
        return report

    def _schedule_partitions(self, hosts: List[str], start: float) -> int:
        """Seeded, non-overlapping isolation windows.

        Each window cuts one b-peer host off from *everything else*
        (members, rendezvous, web host).  Isolating the current
        coordinator forces detection + re-election; the heal then makes
        the deposed coordinator re-announce its stale term — exactly the
        split-brain scenario the epoch fencing exists for.
        """
        if self.partitions <= 0 or len(hosts) < 2:
            return 0
        rng = self.system.network.rng.stream("campaign")
        everyone = list(self.system.network.hosts.keys())
        usable = self.duration - 20.0
        if usable <= 0:
            return 0
        slot = usable / self.partitions
        scheduled = 0
        for index in range(self.partitions):
            window = min(self.partition_duration, max(1.0, slot - 2.0))
            offset = rng.uniform(0.0, max(0.0, slot - window - 1.0))
            at = start + 5.0 + index * slot + offset
            victim = rng.choice(hosts)
            others = [name for name in everyone if name != victim]
            self.system.failures.partition_at(at, [victim], others, duration=window)
            scheduled += 1
        return scheduled

    def _drive_probes(self, report: CampaignReport) -> None:
        system = self.system
        service = self.service
        node = system.network.add_host("campaign-client")
        soap = SoapClient(node, default_timeout=self.probe_timeout)

        def lookup_probe(sequence: int):
            try:
                yield from soap.call(
                    service.address,
                    service.path,
                    "StudentInformation",
                    {"ID": f"S{sequence % self.students + 1:05d}"},
                    timeout=self.probe_timeout,
                )
            except (SoapFault, RequestTimeout):
                report.probes_failed += 1
            except Interrupt:
                return
            else:
                report.probes_ok += 1

        def enroll_probe(sequence: int):
            # Straight through the proxy (no SOAP hop), so the probe
            # observes the typed result — ``deduped`` retries included.
            started = system.env.now
            try:
                result = yield from service.invoke(
                    "EnrollStudent",
                    {
                        "ID": f"S{sequence % self.students + 1:05d}",
                        "course": f"C{sequence:05d}",
                    },
                    timeout=self.probe_timeout,
                    budget=self.probe_budget,
                )
            except (SoapFault, WhisperError):
                report.probes_failed += 1
            except Interrupt:
                return
            else:
                report.probes_ok += 1
                report.probe_latencies.append(system.env.now - started)
                if result.deduped:
                    report.probes_deduped += 1

        one_probe = enroll_probe if self.workload == "enroll" else lookup_probe

        def injector():
            clock = 0.0
            sequence = 0
            while clock < self.duration:
                node.spawn(one_probe(sequence), name=f"campaign-probe-{sequence}")
                sequence += 1
                yield system.env.timeout(self.probe_period)
                clock += self.probe_period

        system.env.run(until=node.spawn(injector()))

    # -- reporting + auditing -----------------------------------------------------------

    def _collect(self, report: CampaignReport) -> None:
        service = self.service
        report.crashes = sum(
            1 for event in self.system.failures.log if event.kind == "crash"
        )
        report.restarts = sum(
            1 for event in self.system.failures.log if event.kind == "restart"
        )
        for peer in service.group.peers:
            elector = peer.coordinator_mgr.elector
            report.elections_won += elector.stats.elections_won
            report.epochs_announced += len(elector.announced)
            report.stale_epoch_rejections += peer.stale_epoch_rejections
        stats = service.proxy.stats
        report.stale_epoch_redirects = stats.stale_epoch_redirects
        report.stale_results_discarded = stats.stale_results_discarded
        report.rebinds = stats.rebinds
        report.live_coordinators = sum(
            1
            for peer in service.group.peers
            if peer.node.up and peer.coordinator_mgr.is_coordinator
        )
        # Exactly-once machinery + duplicate-execution ledger.
        for peer in service.group.peers:
            journal = peer.journal.stats
            report.journal_hits += journal.hits
            report.journal_merges += journal.merges
            report.duplicates_suppressed += journal.duplicates_suppressed
            report.requests_parked += peer.requests_parked
        counters = self.system.obs.metrics.counters
        for name, attribute in (
            ("bpeer.journal_replicated", "journal_replications"),
            ("bpeer.journal_pushes", "journal_pushes"),
        ):
            counter = counters.get(name)
            if counter is not None:
                setattr(report, attribute, counter.value)
        seen_backends = set()
        for peer in service.all_peers():
            backend = peer.implementation.backend
            if id(backend) in seen_backends:
                continue
            seen_backends.add(id(backend))
            report.effects_applied += len(backend.effect_log)
        totals = effect_totals(service.all_peers())
        report.distinct_effects = len(totals)
        report.double_applied = {
            invocation_id: count
            for invocation_id, count in totals.items()
            if count > 1
        }

    def _audit(self, report: CampaignReport) -> None:
        """Post-run safety audit over the shared invariant functions.

        The checkers themselves live in :mod:`repro.check.invariants` so
        the schedule-exploration checker and the fault campaign judge a
        run by the *same* definitions — a violation either harness finds
        is a violation to the other.
        """
        peers = self.service.all_peers()
        violations = report.violations
        violations.extend(self.system.failures.alternation_violations())
        violations.extend(announced_epoch_violations(peers))
        violations.extend(stale_result_violations(self.service.proxy))
        # Exactly-once: with the journal on, no invocation id may appear
        # more than once across every backend's effect ledger.  The
        # baseline (journal off) run *reports* its duplicates instead of
        # failing — it is the control that proves the audit has teeth.
        if self.dedup_journal:
            violations.extend(exactly_once_violations(peers))
        # Convergence only means anything after the cooldown settled, and
        # applies within each shard group (each elects its own coordinator).
        groups = self.service.all_groups()
        for group in groups:
            label = group.name if len(groups) > 1 else ""
            violations.extend(convergence_violations(group.peers, group=label))
