"""The whole-system builder.

:class:`WhisperSystem` assembles a complete deployment — simulated LAN,
rendezvous, web servers with semantic Web services and SWS-proxies,
semantic b-peer groups with backends — exactly the architecture of the
paper's Figures 1–3.  Examples and benchmarks build on this facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..backend.datasets import student_database
from ..backend.services import (
    ServiceImplementation,
    student_lookup_operational,
    student_lookup_warehouse,
)
from ..backend.warehouse import build_warehouse
from ..obs import Observability
from ..ontology.domains import b2b_ontology
from ..ontology.match import ConceptMatcher, DegreeOfMatch
from ..ontology.ontology import Ontology
from ..ontology.reasoner import Reasoner
from ..p2p.gossip import GossipService
from ..p2p.peer import Peer
from ..simnet.environment import Environment
from ..simnet.failure import FailureInjector
from ..simnet.latency import parse_latency_spec
from ..simnet.network import Network
from ..simnet.node import Node
from ..simnet.rng import RngRegistry
from ..simnet.trace import MessageTrace
from ..soap.client import SoapClient
from ..wsdl.definitions import Definitions
from ..wsdl.samples import student_management_wsdl
from .autoscale import AutoscalingGroup
from .bpeer_group import BPeerGroup, deploy_bpeer_group
from .config import ScenarioConfig
from .proxy import SwsProxy
from .topology import Topology
from .result import InvokeResult
from .sws import SemanticWebService
from .webservice import PlainWebService, WhisperWebService

__all__ = ["WhisperSystem", "DeployedService"]


@dataclass
class DeployedService:
    """One fully wired service: front-end, proxy, and back-end group(s).

    ``group`` is the group backing the service's first operation (the
    common single-operation case); ``groups`` maps every operation to its
    own b-peer group for multi-operation services.  Sharded deployments
    additionally fill ``shard_groups``: per operation, the full list of
    federated shard groups (``groups`` then holds shard 0 for
    compatibility with single-group callers).
    """

    sws: SemanticWebService
    web_service: WhisperWebService
    proxy: SwsProxy
    group: BPeerGroup
    groups: Optional[Dict[str, BPeerGroup]] = None
    shard_groups: Optional[Dict[str, List[BPeerGroup]]] = None
    #: Replicated multi-region deployments: per operation, the group
    #: serving each region (``groups``/``group`` then hold the home
    #: region's).  ``None`` for single-region and span placements.
    region_groups: Optional[Dict[str, Dict[str, BPeerGroup]]] = None
    #: Autoscaling controllers, one per operation group — empty unless
    #: the deployment was configured with ``ScenarioConfig(autoscale=...)``.
    autoscalers: List[AutoscalingGroup] = field(default_factory=list)

    def __post_init__(self):
        if self.groups is None:
            self.groups = {
                operation: self.group for operation in self.sws.operations()
            }
        if self.shard_groups is None:
            self.shard_groups = {
                operation: [group] for operation, group in self.groups.items()
            }

    @property
    def address(self):
        return self.web_service.address

    @property
    def path(self) -> str:
        return self.web_service.path

    def group_for(self, operation: str) -> BPeerGroup:
        return self.groups[operation]

    def shard_groups_for(self, operation: str) -> List[BPeerGroup]:
        return self.shard_groups[operation]

    def region_group_for(self, operation: str, region: str) -> BPeerGroup:
        if not self.region_groups or operation not in self.region_groups:
            raise KeyError(f"{operation} has no per-region groups")
        return self.region_groups[operation][region]

    def all_groups(self) -> List[BPeerGroup]:
        """Every distinct b-peer group backing this service."""
        seen: Dict[int, BPeerGroup] = {}
        for shards in self.shard_groups.values():
            for group in shards:
                seen.setdefault(id(group), group)
        for per_region in (self.region_groups or {}).values():
            for group in per_region.values():
                seen.setdefault(id(group), group)
        return list(seen.values())

    def all_peers(self):
        """Every b-peer across every operation and shard group."""
        return [peer for group in self.all_groups() for peer in group.peers]

    def invoke(
        self,
        operation: str,
        arguments: Dict[str, Any],
        timeout: Optional[float] = None,
        budget: Optional[float] = None,
        invocation_id: Optional[str] = None,
    ) -> Generator[Any, Any, InvokeResult]:
        """Invoke through the SWS-proxy; returns a typed
        :class:`~repro.core.result.InvokeResult` (``.value`` holds the
        bare payload).  Convenience for tests/benchmarks that do not
        need the SOAP wire.  ``invocation_id`` pins the idempotency key
        (saga orchestration) instead of letting the proxy mint one."""
        result = yield from self.proxy.invoke(
            operation, arguments, timeout=timeout, budget=budget,
            invocation_id=invocation_id,
        )
        return result


def _shard_implementations(operation_impls, shards: int, operation: str, what: str = "shard"):
    """Normalise one operation's implementations into per-shard lists.

    Unsharded: a flat list becomes ``[list]``.  Sharded: accept a factory
    ``shard_index -> [implementations]`` or a list of ``shards`` lists;
    a flat list is rejected because shard groups must not share backend
    (and invocation-counter) instances.  Region-replicated deployments
    reuse the same normalisation with ``what="region"`` (one independent
    implementation list per region, factory index = region index).
    """
    if callable(operation_impls):
        per_shard = [list(operation_impls(index)) for index in range(shards)]
    else:
        impls = list(operation_impls)
        if shards == 1:
            per_shard = [impls]
        elif impls and all(
            isinstance(item, (list, tuple)) for item in impls
        ):
            if len(impls) != shards:
                raise ValueError(
                    f"{operation}: got {len(impls)} implementation lists "
                    f"for {shards} {what}s"
                )
            per_shard = [list(item) for item in impls]
        else:
            raise ValueError(
                f"{operation}: a {what}ed deploy ({shards} {what}s) needs one "
                f"implementation list per {what} — pass a factory "
                f"{what}_index -> [implementations] or a list of lists"
            )
    for index, shard_impls in enumerate(per_shard):
        if not shard_impls:
            raise ValueError(f"{operation}: {what} {index} has no implementations")
    return per_shard


class WhisperSystem:
    """A complete Whisper deployment on one simulated LAN."""

    def __init__(
        self,
        config: Optional[ScenarioConfig] = None,
        *,
        ontology: Optional[Ontology] = None,
        **legacy: Any,
    ):
        """Build a deployment from one :class:`ScenarioConfig`.

        The pre-redesign scattered keyword arguments (``seed=...``,
        ``heartbeat_interval=...``, ...) still work as a deprecated shim:
        they override the matching config fields and warn.
        """
        self.config = ScenarioConfig.from_legacy_kwargs(
            config, legacy, "WhisperSystem"
        )
        #: The declarative network shape.  ``config.topology=None`` means
        #: the paper's flat single LAN (the seed, byte-identical).
        self.topology = self.config.topology or Topology.single_region()
        self.env = Environment()
        self.trace = MessageTrace(record_details=self.config.record_trace_details)
        #: Request-scoped tracing + metrics (§5's per-phase attribution).
        #: Purely in-process: enabling it sends no extra messages, so the
        #: Figure-4 counts are identical either way; disabling it turns
        #: every instrumentation hook into a near-zero-cost no-op.
        self.obs = Observability(
            enabled=self.config.observability,
            sample_rate=self.config.obs_sample_rate,
        )
        if self.config.observability:
            self.trace.metrics = self.obs.metrics
        home_spec = self.topology.regions[0]
        self.network = Network(
            self.env,
            trace=self.trace,
            rng=RngRegistry(self.config.seed),
            default_latency=(
                parse_latency_spec(home_spec.latency)
                if self.config.topology is not None
                else None
            ),
            obs=self.obs,
        )
        self.failures = FailureInjector(self.network)
        self.ontology = ontology if ontology is not None else b2b_ontology()
        self.reasoner = Reasoner(self.ontology)
        self.matcher = ConceptMatcher(self.reasoner)
        self.services: Dict[str, DeployedService] = {}
        #: Per-region rendezvous peers and gossip services (multi-region
        #: topologies only; both empty on the flat LAN).
        self.rendezvous_peers: Dict[str, Peer] = {}
        self.gossip: Dict[str, GossipService] = {}

        if self.topology.multi_region:
            self._build_regions()
            self.rendezvous = self.rendezvous_peers[self.topology.home]
        else:
            rdv_node = self.network.add_host("rdv0")
            self.rendezvous = Peer(rdv_node, is_rendezvous=True)
            self.rendezvous.publish_self(remote=False)

    def _build_regions(self) -> None:
        """Wire regions, WAN links, per-region rendezvous, and federation."""
        topology = self.topology
        for spec in topology.regions:
            self.network.add_region(
                spec.name,
                latency=parse_latency_spec(spec.latency),
                bandwidth_bps=spec.bandwidth_bps,
                loss_rate=spec.loss_rate,
            )
        for link in topology.wan_links_effective():
            self.network.connect_regions(
                link.a,
                link.b,
                latency=parse_latency_spec(link.latency),
                latency_back=(
                    parse_latency_spec(link.latency_back)
                    if link.latency_back is not None
                    else None
                ),
                bandwidth_bps=link.bandwidth_bps,
                loss_rate=link.loss_rate,
            )
        gossip_spec = topology.gossip
        for spec in topology.regions:
            node = self.network.add_host("rdv0", region=spec.name)
            peer = Peer(node, is_rendezvous=True)
            peer.publish_self(remote=False)
            self.rendezvous_peers[spec.name] = peer
            self.gossip[spec.name] = GossipService(
                peer,
                spec.name,
                rng=self.network.rng.stream(f"gossip:{spec.name}"),
                fanout=gossip_spec.fanout,
                interval=gossip_spec.interval,
                anti_entropy_interval=gossip_spec.anti_entropy_interval,
                rumor_rounds=gossip_spec.rumor_rounds,
                mode=gossip_spec.mode,
            )
        # Federate along the WAN links (the default mesh federates every
        # pair): propagated queries keep flooding across the WAN, while
        # advertisement state travels by gossip.
        for link in topology.wan_links_effective():
            peer_a = self.rendezvous_peers[link.a]
            peer_b = self.rendezvous_peers[link.b]
            peer_a.rendezvous.federate_with(
                peer_b.endpoint.peer_id, peer_b.endpoint.address
            )
            peer_b.rendezvous.federate_with(
                peer_a.endpoint.peer_id, peer_a.endpoint.address
            )
            self.gossip[link.a].add_peer(peer_b.endpoint.peer_id, link.b)
            self.gossip[link.b].add_peer(peer_a.endpoint.peer_id, link.a)

    # -- config passthroughs (read-only compat accessors) ------------------------------

    @property
    def heartbeat_interval(self) -> float:
        return self.config.heartbeat_interval

    @property
    def miss_threshold(self) -> int:
        return self.config.miss_threshold

    @property
    def min_degree(self) -> DegreeOfMatch:
        return self.config.min_degree

    @property
    def load_sharing(self) -> bool:
        return self.config.load_sharing

    # -- deployment ------------------------------------------------------------------

    def deploy_service(
        self,
        definitions: Definitions,
        implementations,
        web_host: Optional[str] = None,
        group_name: Optional[str] = None,
        config: Optional[ScenarioConfig] = None,
        replica_factory: Optional[Callable[[int], ServiceImplementation]] = None,
        **legacy: Any,
    ) -> DeployedService:
        """Deploy one semantic Web service backed by b-peer group(s).

        ``implementations`` is either a sequence of
        :class:`~repro.backend.services.ServiceImplementation` (all backing
        the service's *first* operation — the common case) or a mapping
        ``{operation_name: [implementations]}`` for multi-operation
        services, which get one b-peer group per operation.

        With ``config.shards > 1`` each operation is deployed as N
        federated shard groups (named ``<group>-s<i>``), each with its
        own replication/election/journal; the implementations must then
        come as one list *per shard* — either a factory
        ``shard_index -> [implementations]`` or a list of ``shards``
        lists — because shard groups may not share backend instances.

        ``config`` overrides the system-wide scenario for this service
        (dispatch policy, queue bound, proxy budgets, ...); legacy
        ``request_timeout=`` / ``max_attempts=`` keywords still work as a
        deprecated shim.

        With ``config.autoscale`` set, ``replica_factory`` (replica index
        → fresh :class:`ServiceImplementation`) is required: the
        autoscaling controller mints scale-up replicas from it exactly
        the way the initial deployment built its members.
        """
        scenario = ScenarioConfig.from_legacy_kwargs(
            config if config is not None else self.config,
            legacy,
            "deploy_service",
        )
        if scenario.shards < 1:
            raise ValueError(f"shards must be >= 1, got {scenario.shards}")
        topology = self.topology
        replicate_regions = topology.multi_region and topology.placement == "replicate"
        if topology.multi_region and scenario.shards > 1:
            raise NotImplementedError(
                "sharded multi-region deployments are not supported yet — "
                "use shards=1 with a multi-region topology"
            )
        if scenario.autoscale is not None:
            if scenario.shards > 1 or topology.multi_region:
                raise NotImplementedError(
                    "autoscaling is only supported for single-region, "
                    "unsharded deployments"
                )
            if replica_factory is None:
                raise ValueError(
                    "ScenarioConfig(autoscale=...) needs a replica_factory "
                    "(replica index -> ServiceImplementation) so the "
                    "controller can mint scale-up replicas"
                )
        sws = SemanticWebService(definitions, self.ontology)
        if isinstance(implementations, dict):
            per_operation = dict(implementations)
            unknown = set(per_operation) - set(sws.operations())
            if unknown:
                raise ValueError(f"implementations for unknown operations: {unknown}")
        elif callable(implementations):
            per_operation = {sws.operations()[0]: implementations}
        else:
            per_operation = {sws.operations()[0]: list(implementations)}

        groups: Dict[str, BPeerGroup] = {}
        shard_groups: Dict[str, List[BPeerGroup]] = {}
        region_groups: Optional[Dict[str, Dict[str, BPeerGroup]]] = (
            {} if replicate_regions else None
        )
        read_only: List[str] = []
        region_names = topology.region_names()
        for operation, operation_impls in per_operation.items():
            annotation = sws.annotation(operation)
            base_name = group_name or f"grp-{sws.name}"
            name = base_name if len(per_operation) == 1 else f"{base_name}-{operation}"
            common = dict(
                annotation=annotation,
                ontology_uri=self.ontology.uri,
                heartbeat_interval=scenario.heartbeat_interval,
                miss_threshold=scenario.miss_threshold,
                load_sharing=scenario.load_sharing,
                dispatch=scenario.dispatch,
                queue_bound=scenario.queue_bound,
                dedup_journal=scenario.dedup_journal,
                journal_capacity=scenario.journal_capacity,
                epoch_fencing=scenario.epoch_fencing,
            )
            if replicate_regions:
                # One independent group per region: its own replicas,
                # election, and journal, advertised with a home region so
                # proxies can prefer (and fail over across) regions.
                per_region = _shard_implementations(
                    operation_impls, len(region_names), operation, what="region"
                )
                by_region: Dict[str, BPeerGroup] = {}
                for region, region_impls in zip(region_names, per_region):
                    by_region[region] = deploy_bpeer_group(
                        self.network,
                        self.rendezvous_peers[region],
                        group_name=f"{name}@{region}",
                        implementations=region_impls,
                        region=region,
                        **common,
                    )
                region_groups[operation] = by_region
                groups[operation] = by_region[topology.home]
                shard_groups[operation] = [by_region[topology.home]]
                flat_impls = [impl for impls in per_region for impl in impls]
            elif topology.multi_region:
                # "span": one group (one election domain) whose replicas
                # straddle the WAN, each attached to its region's
                # rendezvous.  The advertisement carries no home region.
                per_shard = _shard_implementations(operation_impls, 1, operation)
                group = deploy_bpeer_group(
                    self.network,
                    self.rendezvous,
                    group_name=name,
                    implementations=per_shard[0],
                    host_regions=region_names,
                    rendezvous_by_region=self.rendezvous_peers,
                    **common,
                )
                groups[operation] = group
                shard_groups[operation] = [group]
                flat_impls = list(per_shard[0])
            else:
                per_shard = _shard_implementations(
                    operation_impls, scenario.shards, operation
                )
                deployed_shards: List[BPeerGroup] = []
                for shard_index, shard_impls in enumerate(per_shard):
                    deployed_shards.append(
                        deploy_bpeer_group(
                            self.network,
                            self.rendezvous,
                            group_name=(
                                name
                                if scenario.shards == 1
                                else f"{name}-s{shard_index}"
                            ),
                            implementations=shard_impls,
                            shard_index=(
                                shard_index if scenario.shards > 1 else None
                            ),
                            shard_count=(
                                scenario.shards if scenario.shards > 1 else None
                            ),
                            **common,
                        )
                    )
                groups[operation] = deployed_shards[0]
                shard_groups[operation] = deployed_shards
                flat_impls = [impl for impls in per_shard for impl in impls]
            if all(not impl.mutating for impl in flat_impls):
                read_only.append(operation)

        host_name = web_host or f"web-{sws.name}"
        web_node = self.network.add_host(
            host_name,
            region=topology.home if topology.multi_region else None,
        )
        proxy = SwsProxy(
            web_node,
            sws,
            self.matcher,
            min_degree=scenario.min_degree,
            request_timeout=scenario.request_timeout,
            max_attempts=scenario.max_attempts,
            deadline_budget=scenario.deadline_budget,
            epoch_fencing=scenario.epoch_fencing,
            scatter_policy=scenario.scatter_policy,
            virtual_nodes=scenario.virtual_nodes,
            home_region=topology.home if replicate_regions else None,
            region_count=len(region_names) if replicate_regions else 1,
            circuit_breaker=scenario.circuit_breaker,
            result_cache=scenario.result_cache,
        )
        proxy.read_only_operations.update(read_only)
        proxy.attach_to(self.rendezvous)
        proxy.publish_self(remote=False)
        web_service = WhisperWebService(web_node, sws, proxy)
        first_group = groups[next(iter(per_operation))]
        deployed = DeployedService(
            sws=sws,
            web_service=web_service,
            proxy=proxy,
            group=first_group,
            groups=groups,
            shard_groups=shard_groups,
            region_groups=region_groups,
        )
        if scenario.autoscale is not None:
            bpeer_kwargs = dict(
                heartbeat_interval=scenario.heartbeat_interval,
                miss_threshold=scenario.miss_threshold,
                load_sharing=scenario.load_sharing,
                dispatch=scenario.dispatch,
                queue_bound=scenario.queue_bound,
                dedup_journal=scenario.dedup_journal,
                journal_capacity=scenario.journal_capacity,
                epoch_fencing=scenario.epoch_fencing,
            )
            seen_groups: set = set()
            for operation_group in groups.values():
                if id(operation_group) in seen_groups:
                    continue
                seen_groups.add(id(operation_group))
                controller = AutoscalingGroup(
                    self.network,
                    self.rendezvous,
                    operation_group,
                    replica_factory,
                    scenario.autoscale,
                    bpeer_kwargs=bpeer_kwargs,
                )
                controller.start()
                deployed.autoscalers.append(controller)
        self.services[sws.name] = deployed
        return deployed

    def deploy_plain_service(
        self,
        service_name: str,
        implementation: ServiceImplementation,
        web_host: Optional[str] = None,
    ) -> PlainWebService:
        """Deploy the no-Whisper baseline (implementation on the web host)."""
        node = self.network.add_host(web_host or f"web-{service_name}")
        return PlainWebService(node, service_name, implementation)

    def add_client(
        self,
        name: str = "client0",
        timeout: float = 5.0,
        region: Optional[str] = None,
    ):
        """Add a client host; returns ``(node, soap_client)``.

        In multi-region topologies the client lands in ``region``
        (defaulting to the home region); on the flat LAN the argument
        must stay ``None``.
        """
        if region is None and self.topology.multi_region:
            region = self.topology.home
        node = self.network.add_host(name, region=region)
        return node, SoapClient(node, default_timeout=timeout)

    # -- canonical scenario (§3's student management service) ----------------------------

    def deploy_student_service(
        self,
        config: Optional[ScenarioConfig] = None,
        **legacy: Any,
    ) -> DeployedService:
        """The paper's running example, with alternating backend flavours.

        Even-indexed replicas read the operational database; every
        ``warehouse_every``-th replica reads the data warehouse instead, so
        the §4.1 DB→warehouse failover is exercised out of the box.
        Replicas get independent copies of the operational store so a
        backend failure can be injected per-replica.

        Sizing and budgets come from the :class:`ScenarioConfig`
        (``replicas`` / ``students`` / ``warehouse_every`` plus the proxy
        budgets); legacy keyword arguments still work as a deprecated
        shim.
        """
        scenario = ScenarioConfig.from_legacy_kwargs(
            config if config is not None else self.config,
            legacy,
            "deploy_student_service",
        )
        if scenario.replicas < 1:
            raise ValueError("need at least one replica")

        def shard_implementations(shard_index: int) -> List[ServiceImplementation]:
            implementations: List[ServiceImplementation] = []
            master = student_database(scenario.students)
            warehouse = build_warehouse(master)
            for index in range(scenario.replicas):
                if scenario.warehouse_every and index % scenario.warehouse_every == 1:
                    implementations.append(student_lookup_warehouse(warehouse))
                else:
                    replica_db = student_database(scenario.students)
                    implementations.append(student_lookup_operational(replica_db))
            return implementations

        replicated = (
            self.topology.multi_region and self.topology.placement == "replicate"
        )
        implementations = (
            shard_implementations(0)
            if scenario.shards == 1 and not replicated
            else shard_implementations
        )
        replica_factory = None
        if scenario.autoscale is not None:
            # Scale-up replicas read a fresh copy of the operational
            # store, like the even-indexed members of the initial deploy.
            def replica_factory(index: int) -> ServiceImplementation:
                return student_lookup_operational(
                    student_database(scenario.students)
                )

        return self.deploy_service(
            student_management_wsdl(),
            implementations,
            web_host="web0",
            config=scenario,
            replica_factory=replica_factory,
        )

    # -- simulation control ---------------------------------------------------------------

    def settle(self, duration: Optional[float] = None) -> None:
        """Let leases, joins, SRDI pushes, and the first election finish.

        Without an explicit ``duration`` the config's ``settle`` window is
        used, so sweeps tune it in one place.
        """
        if duration is None:
            duration = self.config.settle
        self.env.run(until=self.env.now + duration)

    def run_until(self, time: float) -> None:
        self.env.run(until=time)

    def run_process(self, generator, node: Optional[Node] = None):
        """Spawn and run a process to completion; returns its value."""
        owner = node if node is not None else self.rendezvous.node
        process = owner.spawn(generator)
        return self.env.run(until=process)

    def reset_counters(self, include_observability: bool = False) -> None:
        """Zero the message trace (e.g. after warm-up, before measuring).

        RTT stamps for requests still in flight survive the reset (see
        :meth:`~repro.simnet.trace.MessageTrace.reset`).  Pass
        ``include_observability=True`` to also drop accumulated request
        traces and phase histograms, so a measurement window's phase
        breakdown excludes warm-up traffic.
        """
        self.trace.reset()
        if include_observability:
            self.obs.reset()

    # -- health reporting --------------------------------------------------------------

    def status_report(self) -> Dict[str, Any]:
        """A structured health snapshot of the whole deployment.

        Covers what an operator would check: host liveness, per-service
        group membership and coordination state, proxy statistics,
        headline network counters, and (with observability enabled) the
        per-phase latency breakdown — discover / bind / invoke / recover /
        elect / execute — that attributes slow requests to their cause.
        """
        hosts_up = sum(1 for node in self.network.hosts.values() if node.up)
        services = {}
        for name, deployed in self.services.items():
            groups = {}
            for operation, shard_list in deployed.shard_groups.items():
                sharded = len(shard_list) > 1
                for shard_index, group in enumerate(shard_list):
                    coordinator = group.coordinator_peer()
                    replicas_qos = {
                        peer.name: {
                            "executed": peer.requests_executed,
                            "mean_time": peer.qos_profile.snapshot().time,
                            "reliability": peer.qos_profile.empirical_reliability,
                        }
                        for peer in group.peers
                    }
                    label = (
                        f"{operation}[shard {shard_index}]" if sharded else operation
                    )
                    groups[label] = {
                        "group": group.name,
                        "replicas": len(group.peers),
                        "alive": len(group.alive_peers()),
                        "coordinator": coordinator.name if coordinator else None,
                        "requests_executed": group.total_requests_executed(),
                        "requests_shed": group.total_requests_shed(),
                        "replica_qos": replicas_qos,
                    }
            stats = deployed.proxy.stats
            services[name] = {
                "address": deployed.address,
                "groups": groups,
                "proxy": {
                    "invocations": stats.invocations,
                    "successes": stats.successes,
                    "faults": stats.faults,
                    "timeouts": stats.timeouts,
                    "rebinds": stats.rebinds,
                    "shed": stats.shed,
                    "retry_after_honored": stats.retry_after_honored,
                    "shard_routed": stats.shard_routed,
                    "shard_failovers": stats.shard_failovers,
                    "region_preferred": stats.region_preferred,
                    "region_failovers": stats.region_failovers,
                    "scatter_calls": stats.scatter_calls,
                    "scatter_partial": stats.scatter_partial,
                },
            }
            if deployed.region_groups:
                services[name]["regions"] = {
                    operation: {
                        region: group.name
                        for region, group in by_region.items()
                    }
                    for operation, by_region in deployed.region_groups.items()
                }
        report = {
            "time": self.env.now,
            "hosts": {"total": len(self.network.hosts), "up": hosts_up},
            "network": self.trace.snapshot(),
            "services": services,
            "observability": {"enabled": self.obs.enabled},
            "phases": self.obs.phase_summary(),
        }
        if self.topology.multi_region:
            report["topology"] = {
                "regions": list(self.topology.region_names()),
                "home": self.topology.home,
                "placement": self.topology.placement,
                "gossip": {
                    region: {
                        "mode": service.mode,
                        "entries": len(service.entries),
                        "rumors_sent": service.stats.rumors_sent,
                        "digests_sent": service.stats.digests_sent,
                        "deltas_sent": service.stats.deltas_sent,
                        "floods_sent": service.stats.floods_sent,
                        "entries_applied": service.stats.entries_applied,
                        "refreshes_suppressed": service.stats.refreshes_suppressed,
                    }
                    for region, service in self.gossip.items()
                },
            }
        return report
