"""Semantic sharding of a service's keyspace across federated b-peer groups.

The paper benchmarks a *single* b-peer group per service: one coordinator
serializes every invocation, which caps throughput at one group's
capacity regardless of how many replicas it holds (Figures 4-6).  The
CERN peer-group line of work argues groups should be *federated and
partitioned* for scale, and the semantic-matchmaker literature shows the
service's semantic annotation is a natural partitioning key.

This module provides the pieces:

* :func:`shard_key` — the deterministic routing key for one invocation:
  the semantic action plus the canonicalised arguments.  Both the proxy
  and any offline audit derive the same key for the same request.
* :class:`ShardRing` — a consistent-hash ring with virtual nodes mapping
  keys onto shard-group names.  When one group fails, only *its* ring
  segment remaps (to the clockwise successors of its virtual nodes);
  every other segment keeps its owner, so a shard-group failover
  rebalances ~1/N of the keyspace instead of reshuffling everything.
* :class:`ShardRouter` — the proxy-side router: a ring fed from
  discovered per-shard advertisements (no central shard map — discovery
  *is* the map) plus a suspicion list so a timed-out group's segment is
  temporarily served by its ring successors.
* :class:`ScatterResult` — the outcome of a cross-shard scatter-gather
  read, carrying per-shard results/failures and whether the configured
  partial-result policy had to degrade.

Hashing uses BLAKE2b, not Python's ``hash()`` — the latter is salted per
process and would make routing non-deterministic across runs.
"""

from __future__ import annotations

import json
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

__all__ = [
    "shard_key",
    "ShardRing",
    "ShardRouter",
    "ScatterResult",
    "SCATTER_POLICIES",
]

#: Recognised cross-shard read policies (see :meth:`ScatterResult.evaluate`).
SCATTER_POLICIES = ("all", "quorum", "partial")


def _hash64(value: str) -> int:
    """Deterministic 64-bit hash (BLAKE2b; never the salted ``hash()``)."""
    return int.from_bytes(blake2b(value.encode("utf-8"), digest_size=8).digest(), "big")


def shard_key(action: str, arguments: Mapping[str, object]) -> str:
    """The routing key for one invocation: semantic action + arguments.

    Arguments are canonicalised (sorted keys, JSON) so two retries of the
    same logical request always land on the same shard.
    """
    canonical = json.dumps(dict(arguments), sort_keys=True, default=str)
    return f"{action}|{canonical}"


class ShardRing:
    """Consistent-hash ring with virtual nodes over shard-group names.

    Each member contributes ``virtual_nodes`` points at
    ``hash64(f"{member}#vnode{i}")``; a key is owned by the first point
    clockwise from ``hash64(key)``.  ``lookup`` can exclude (suspected)
    members, in which case only their segments walk further clockwise —
    the defining rebalance property this module exists for.
    """

    def __init__(self, virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._points: List[Tuple[int, str]] = []  # sorted (hash, member)
        self._members: Dict[str, List[int]] = {}

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def add(self, member: str) -> None:
        if member in self._members:
            return
        hashes = [
            _hash64(f"{member}#vnode{index}") for index in range(self.virtual_nodes)
        ]
        self._members[member] = hashes
        for point in hashes:
            insort(self._points, (point, member))

    def remove(self, member: str) -> None:
        hashes = self._members.pop(member, None)
        if hashes is None:
            return
        doomed = set(hashes)
        self._points = [
            (point, owner)
            for point, owner in self._points
            if not (owner == member and point in doomed)
        ]

    def lookup(self, key: str, exclude: FrozenSet[str] = frozenset()) -> Optional[str]:
        """Owner of ``key``, walking clockwise past excluded members.

        If excluding would rule out every member the exclusions are
        ignored (a degraded answer beats none — the caller's retry loop
        sorts out whether the member is actually reachable).
        """
        if not self._points:
            return None
        if exclude and all(member in exclude for member in self._members):
            exclude = frozenset()
        point = _hash64(key)
        start = bisect_right(self._points, (point, "￿"))
        total = len(self._points)
        for offset in range(total):
            _, owner = self._points[(start + offset) % total]
            if owner not in exclude:
                return owner
        return None

    def segment_fraction(self, member: str, samples: int = 4096) -> float:
        """Approximate fraction of the keyspace owned by ``member``."""
        if member not in self._members or not self._points:
            return 0.0
        owned = sum(
            1
            for index in range(samples)
            if self.lookup(f"probe-{index}") == member
        )
        return owned / samples


@dataclass
class _Suspicion:
    until: float


class ShardRouter:
    """Proxy-side shard -> group routing fed from discovery.

    ``update`` merges per-shard advertisements additively (a partial
    local-cache view must never shrink the ring and misroute keys that
    other proxies still serve correctly); ``suspect`` marks a group's
    segment for clockwise failover until the suspicion expires.
    """

    def __init__(self, virtual_nodes: int = 64, suspect_interval: float = 10.0):
        self.ring = ShardRing(virtual_nodes)
        self.suspect_interval = suspect_interval
        self._suspicions: Dict[str, _Suspicion] = {}

    def update(self, group_names: List[str]) -> None:
        for name in group_names:
            self.ring.add(name)

    def suspect(self, group_name: str, now: float) -> None:
        self._suspicions[group_name] = _Suspicion(until=now + self.suspect_interval)

    def clear_suspicion(self, group_name: str) -> None:
        self._suspicions.pop(group_name, None)

    def suspected(self, now: float) -> FrozenSet[str]:
        expired = [
            name for name, entry in self._suspicions.items() if entry.until <= now
        ]
        for name in expired:
            del self._suspicions[name]
        return frozenset(self._suspicions)

    def route(self, key: str, now: float) -> Optional[str]:
        """Group that owns ``key`` right now (skipping suspected groups)."""
        return self.ring.lookup(key, exclude=self.suspected(now))

    def route_home(self, key: str) -> Optional[str]:
        """The key's un-failed-over owner (ignores suspicions)."""
        return self.ring.lookup(key)


@dataclass
class ScatterResult:
    """Outcome of a cross-shard scatter-gather read.

    ``results`` maps shard-group name -> per-shard
    :class:`~repro.core.result.InvokeResult`; ``failures`` maps the
    groups whose leg failed -> a short reason string.  ``partial`` is
    True when the configured policy accepted a degraded answer.
    """

    operation: str
    policy: str
    shards: int
    results: Dict[str, object] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    duration: float = 0.0

    @property
    def partial(self) -> bool:
        return bool(self.failures) and bool(self.results)

    @property
    def values(self) -> Dict[str, object]:
        """Per-shard unwrapped result values, keyed by group name."""
        return {
            name: getattr(result, "value", result)
            for name, result in sorted(self.results.items())
        }

    def evaluate(self) -> None:
        """Enforce the partial-result policy; raises on an unacceptable gather.

        * ``all``: every shard leg must succeed;
        * ``quorum``: a strict majority of legs must succeed;
        * ``partial``: at least one leg must succeed (degraded answers
          are flagged via :attr:`partial`, never raised).
        """
        if self.policy not in SCATTER_POLICIES:
            raise ValueError(
                f"unknown scatter policy {self.policy!r}; "
                f"expected one of {SCATTER_POLICIES}"
            )
        ok = len(self.results)
        if self.policy == "all" and self.failures:
            raise ScatterError(self, f"{len(self.failures)}/{self.shards} shard legs failed")
        if self.policy == "quorum" and ok * 2 <= self.shards:
            raise ScatterError(self, f"no quorum: {ok}/{self.shards} shard legs succeeded")
        if ok == 0:
            raise ScatterError(self, "every shard leg failed")


class ScatterError(RuntimeError):
    """A scatter-gather read that the partial-result policy rejected."""

    def __init__(self, result: ScatterResult, reason: str):
        super().__init__(
            f"scatter({result.operation}, policy={result.policy}): {reason}; "
            f"failures={sorted(result.failures)}"
        )
        self.result = result
        self.reason = reason


__all__.append("ScatterError")
