"""Whisper: the paper's primary contribution.

Semantic Web services (WSDL-S annotated), SWS-proxies that semantically
discover b-peer groups on the JXTA-like network, b-peers with Bully-based
coordination and backend failover, and the whole-system builder that wires
clients → web server → service → proxy → P2P → b-peers → backends.
"""

from .autoscale import AutoscaleSpec, AutoscalingGroup, AutoscalePolicy
from .baselines import FailoverSoapClient, ReplicatedPlainService
from .bpeer import BPeer, ExecReply, ExecRequest
from .bpeer_group import BPeerGroup, deploy_bpeer_group, semantic_advertisement_for
from .breaker import BreakerSpec, CircuitBreaker
from .campaign import CampaignReport, FaultCampaign
from .config import ScenarioConfig
from .dispatch import (
    DispatchPolicy,
    LeastOutstandingDispatch,
    MemberLoad,
    QosWeightedDispatch,
    RoundRobinDispatch,
    dispatch_policy,
)
from .journal import DedupJournal, JournalEntry, JournalStats
from .errors import (
    AnnotationError,
    CircuitOpenError,
    InvocationFailedError,
    NoCoordinatorError,
    NoMatchingGroupError,
    WhisperError,
)
from .matching import GroupMatch, SemanticGroupMatcher, SyntacticGroupMatcher
from .proxy import ProxyStats, SwsProxy
from .rescache import ResultCacheSpec, SemanticResultCache
from .result import InvokeOutcome, InvokeResult
from .retry import Deadline, RetryPolicy
from .sws import SemanticWebService
from .system import DeployedService, WhisperSystem
from .webservice import PlainWebService, WhisperWebService

__all__ = [
    "AnnotationError",
    "AutoscalePolicy",
    "AutoscaleSpec",
    "AutoscalingGroup",
    "BPeer",
    "BPeerGroup",
    "BreakerSpec",
    "CircuitBreaker",
    "CircuitOpenError",
    "ResultCacheSpec",
    "SemanticResultCache",
    "CampaignReport",
    "Deadline",
    "DedupJournal",
    "DeployedService",
    "DispatchPolicy",
    "JournalEntry",
    "JournalStats",
    "FaultCampaign",
    "RetryPolicy",
    "ExecReply",
    "ExecRequest",
    "FailoverSoapClient",
    "InvokeOutcome",
    "InvokeResult",
    "LeastOutstandingDispatch",
    "MemberLoad",
    "QosWeightedDispatch",
    "ReplicatedPlainService",
    "RoundRobinDispatch",
    "GroupMatch",
    "InvocationFailedError",
    "NoCoordinatorError",
    "NoMatchingGroupError",
    "PlainWebService",
    "ProxyStats",
    "ScenarioConfig",
    "SemanticGroupMatcher",
    "SemanticWebService",
    "SwsProxy",
    "SyntacticGroupMatcher",
    "WhisperError",
    "WhisperSystem",
    "WhisperWebService",
    "deploy_bpeer_group",
    "dispatch_policy",
    "semantic_advertisement_for",
]
