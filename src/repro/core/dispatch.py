"""Pluggable load-aware dispatch for b-peer coordinators.

§4.1 claims the redundancy mechanism "makes possible to also address
scalability requirements through load-sharing", but the paper never says
*how* the coordinator spreads work.  The seed implementation cycled
blindly (round-robin) with unbounded queues, which melts down past
saturation: slow members accumulate backlog while fast members idle.

This module makes the coordinator's choice a policy object, in the spirit
of the CERN peer-group line of work (adaptive member selection from
observed load) and the QoS-selection literature (weighted member ranking):

* :class:`RoundRobinDispatch` — the paper-faithful blind rotation;
* :class:`LeastOutstandingDispatch` — pick the member with the fewest
  requests in flight (adaptive capacity: a slow or struggling member
  naturally receives less work);
* :class:`QosWeightedDispatch` — rank members by their reported QoS
  profile (time/cost/reliability, reusing
  :class:`~repro.qos.selection.QosSelector`) with the advertised time
  inflated by current backlog, so selection is both quality- and
  load-aware.

Policies see only what a coordinator can actually know: the current group
view and a per-member :class:`MemberLoad` ledger fed by dispatch
accounting and members' completion reports.  Crashed members drop out of
the view (the failure detector prunes them), so every policy skips them
by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..p2p.ids import PeerId
from ..qos.metrics import QosMetrics
from ..qos.selection import QosSelector

__all__ = [
    "MemberLoad",
    "DispatchPolicy",
    "RoundRobinDispatch",
    "LeastOutstandingDispatch",
    "QosWeightedDispatch",
    "dispatch_policy",
    "DISPATCH_POLICIES",
]


@dataclass
class MemberLoad:
    """What the coordinator knows about one member's load.

    ``outstanding`` counts requests dispatched to the member and not yet
    reported complete; ``qos`` is the member's last self-reported QoS
    snapshot (``None`` until the first completion report arrives).
    """

    outstanding: int = 0
    qos: Optional[QosMetrics] = field(default=None)


class DispatchPolicy:
    """Chooses which group member serves the next request."""

    name = "base"

    def choose(
        self, members: Sequence[PeerId], load: Dict[PeerId, MemberLoad]
    ) -> Optional[PeerId]:
        """Pick one of ``members`` (the coordinator's live view) or None."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class RoundRobinDispatch(DispatchPolicy):
    """Blind rotation over the member view, by member identity.

    The rotation remembers the *identity* of the last-served member and
    advances to the next live member in sorted-id order (wrapping), not a
    positional cursor into the view list.  A positional cursor skews when
    the view shrinks or grows mid-rotation (failover, autoscale): the
    same member can be served twice in a cycle while another is skipped
    entirely.  Identity rotation guarantees every continuously-live
    member is served exactly once per cycle regardless of churn.
    """

    name = "round-robin"

    def __init__(self):
        self._last: Optional[PeerId] = None

    def choose(
        self, members: Sequence[PeerId], load: Dict[PeerId, MemberLoad]
    ) -> Optional[PeerId]:
        if not members:
            return None
        ordered = sorted(members, key=str)
        if self._last is not None:
            last_key = str(self._last)
            for member in ordered:
                if str(member) > last_key:
                    self._last = member
                    return member
        self._last = ordered[0]
        return ordered[0]


class LeastOutstandingDispatch(DispatchPolicy):
    """Send to the member with the fewest requests in flight.

    Ties break on the stable member ordering (sorted peer ids), so runs
    are deterministic; a member the ledger has never seen counts as idle.
    """

    name = "least-outstanding"

    def choose(
        self, members: Sequence[PeerId], load: Dict[PeerId, MemberLoad]
    ) -> Optional[PeerId]:
        if not members:
            return None
        return min(
            members,
            key=lambda member: (
                load[member].outstanding if member in load else 0,
                str(member),
            ),
        )


class QosWeightedDispatch(DispatchPolicy):
    """Rank members by reported QoS, inflated by current backlog.

    Each member's effective response time is its reported QoS time scaled
    by ``1 + outstanding`` (an M/M/1-ish expected-wait proxy); the
    member ranking then reuses the §2.4 SAW selector over
    time/cost/reliability, so an unreliable-but-idle member can still
    lose to a reliable one with a short queue.
    """

    name = "qos"

    #: Prior for members that have not reported yet.  ``QosMetrics`` is
    #: frozen, so the shared default cannot be corrupted in place; a
    #: per-instance override goes through the constructor.
    DEFAULT_QOS = QosMetrics(time=0.05, cost=1.0, reliability=1.0)

    def __init__(
        self,
        selector: Optional[QosSelector] = None,
        default_qos: Optional[QosMetrics] = None,
    ):
        self.selector = selector or QosSelector()
        self._default_qos = default_qos if default_qos is not None else self.DEFAULT_QOS

    @property
    def default_qos(self) -> QosMetrics:
        """The (immutable) prior used for members with no report yet."""
        return self._default_qos

    def choose(
        self, members: Sequence[PeerId], load: Dict[PeerId, MemberLoad]
    ) -> Optional[PeerId]:
        if not members:
            return None
        candidates: Dict[PeerId, QosMetrics] = {}
        for member in members:
            state = load.get(member)
            qos = state.qos if state is not None and state.qos is not None else self.default_qos
            outstanding = state.outstanding if state is not None else 0
            candidates[member] = QosMetrics(
                time=qos.time * (1 + outstanding),
                cost=qos.cost,
                reliability=qos.reliability,
            )
        return self.selector.select(candidates)


#: Policy registry for string specs (config files, CLI flags).
DISPATCH_POLICIES = {
    RoundRobinDispatch.name: RoundRobinDispatch,
    LeastOutstandingDispatch.name: LeastOutstandingDispatch,
    QosWeightedDispatch.name: QosWeightedDispatch,
}

DispatchSpec = Union[str, DispatchPolicy, None]


def dispatch_policy(spec: DispatchSpec) -> DispatchPolicy:
    """Resolve a policy name / instance / None into a policy object.

    Policies are stateful (cursors), so each coordinator gets its own
    instance — pass a name (or None for the round-robin default) unless
    you deliberately want shared state.
    """
    if spec is None:
        return RoundRobinDispatch()
    if isinstance(spec, DispatchPolicy):
        return spec
    try:
        return DISPATCH_POLICIES[spec]()
    except KeyError:
        raise ValueError(
            f"unknown dispatch policy {spec!r}; "
            f"expected one of {sorted(DISPATCH_POLICIES)}"
        ) from None
