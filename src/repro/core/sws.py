"""Semantic Web services.

"Whisper supports the notion of semantic Web services ... the result of
the evolution of the syntactic definition of Web services and the semantic
Web" (§3.1).  A :class:`SemanticWebService` pairs a WSDL-S document with
the ontology its annotations point into, and exposes the accessors the
paper's SWS-proxy listing uses (``get_sem_action``, ``get_sem_input``,
``get_sem_output``).
"""

from __future__ import annotations

from typing import List, Tuple

from ..ontology.ontology import Ontology
from ..wsdl.annotations import SemanticAnnotation
from ..wsdl.definitions import Definitions, Operation
from .errors import AnnotationError

__all__ = ["SemanticWebService"]


class SemanticWebService:
    """A WSDL-S-described service grounded in an ontology."""

    def __init__(self, definitions: Definitions, ontology: Ontology):
        self.definitions = definitions
        self.ontology = ontology
        self._check_annotations()

    @property
    def name(self) -> str:
        return self.definitions.name

    def operations(self) -> List[str]:
        return [operation.name for operation in self.definitions.operations()]

    def operation(self, name: str) -> Operation:
        for interface in self.definitions.interfaces.values():
            if name in interface.operations:
                return interface.operations[name]
        raise AnnotationError(f"service {self.name!r} has no operation {name!r}")

    def annotation(self, operation_name: str) -> SemanticAnnotation:
        return self.operation(operation_name).annotation()

    # -- the paper's accessor names (§3.2 listing) ------------------------------------

    def get_sem_action(self, operation_name: str) -> str:
        return self.annotation(operation_name).action

    def get_sem_input(self, operation_name: str) -> Tuple[str, ...]:
        return self.annotation(operation_name).inputs

    def get_sem_output(self, operation_name: str) -> Tuple[str, ...]:
        return self.annotation(operation_name).outputs

    # -- validation ---------------------------------------------------------------------

    def _check_annotations(self) -> None:
        operations = self.definitions.operations()
        if not operations:
            raise AnnotationError(f"service {self.name!r} declares no operations")
        for operation in operations:
            if not operation.is_annotated:
                raise AnnotationError(
                    f"operation {operation.name!r} of {self.name!r} is not fully "
                    "annotated (WSDL alone gives only syntactic information)"
                )
            unresolved = operation.annotation().unresolved_in(self.ontology)
            if unresolved:
                raise AnnotationError(
                    f"operation {operation.name!r} references concepts missing "
                    f"from the ontology: {unresolved}"
                )

    def __repr__(self) -> str:
        return f"<SemanticWebService {self.name} ops={self.operations()}>"
