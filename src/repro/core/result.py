"""Typed invocation results.

The seed's ``SwsProxy.invoke`` returned a bare value, which meant a caller
could not tell *how* the call went — whether recovery ran, how many
attempts it took, what coordinator term served it, or whether overload
shed it along the way.  :class:`InvokeResult` carries the value plus that
operational context; ``result.value`` keeps bare-value access one
attribute away, so migrating callers is mechanical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from ..election.epoch import Epoch

__all__ = ["InvokeOutcome", "InvokeResult"]


class InvokeOutcome(enum.Enum):
    """How an invocation reached its value.

    Failures raise (:class:`~repro.soap.fault.SoapFault` and the
    ``WhisperError`` family), so every returned result carries a success
    outcome — the enum records whether the fast path sufficed.
    """

    #: First attempt succeeded, no recovery machinery involved.
    OK = "ok"
    #: The request needed recovery (timeout, redirect, re-bind, stale
    #: epoch) before succeeding — its duration is a failover observation.
    RECOVERED = "recovered"
    #: The request was shed at least once (``server-busy``) and succeeded
    #: on a later, retry-after-honoring attempt.
    RETRIED_AFTER_SHED = "retried-after-shed"
    #: Served from the proxy's semantic result cache — no discovery, no
    #: bind, no network traffic (read-only operations only).
    CACHED = "cached"
    #: Served by a graceful-degradation fallback handler because the
    #: service's circuit breaker was open.
    DEGRADED = "degraded"


@dataclass(frozen=True)
class InvokeResult:
    """One successful invocation: the value plus how it was obtained."""

    #: The translated result value (what callers previously got bare).
    value: Any
    outcome: InvokeOutcome
    #: Coordinator epoch the result was produced under (None pre-epoch).
    epoch: Optional[Epoch]
    #: Send-and-wait attempts the proxy needed (1 = clean first try).
    attempts: int
    #: Client-observed duration in simulated seconds, retries included.
    duration: float
    #: Request id of the observability trace (0 when obs is disabled).
    trace_id: int
    #: Name of the backend implementation that served the request, when
    #: the b-peer reported it (e.g. ``student-lookup/warehouse``).
    served_by: Optional[str] = None
    #: How many ``server-busy`` sheds this invocation absorbed.
    shed_retries: int = 0
    #: True when the value was replayed from the group's dedup journal —
    #: a retried attempt observed the *original* execution's result
    #: (exactly-once delivery) instead of triggering a re-execution.
    deduped: bool = False
    #: Idempotency key the proxy minted for this logical call (``None``
    #: only for legacy callers that bypass the proxy).
    invocation_id: Optional[str] = None
    #: Id of the b-peer group that served the request (``None`` for
    #: cached/degraded results and legacy construction sites).
    group_id: Optional[Any] = None

    @property
    def recovered(self) -> bool:
        """True when failover recovery ran (a busy retry is not recovery)."""
        return self.outcome is InvokeOutcome.RECOVERED
