"""Demand-driven b-peer group membership: the autoscaling controller.

The paper benchmarks fixed-size b-peer groups; bursty traffic either
over-provisions them (idle replica-hours) or melts them (sheds at the
queue bound).  Following the peer-group-adaptation argument of Jan et
al., this controller resizes a deployed group at run time:

* the **demand signal** is the coordinator's dispatch load ledger — the
  same per-member outstanding counts the dispatch policies and the
  `bpeer.queue_depth` gauge already observe — averaged over the live
  membership;
* **scale up** mints a fresh replica exactly the way
  :func:`~repro.core.bpeer_group.deploy_bpeer_group` does (new host, new
  :class:`BPeer`, join + publish the group advertisement) once pressure
  crosses ``high_watermark``;
* **scale down** retires the newest non-coordinating replica with an
  epoch-safe protocol: announce the leave first (the coordinator's
  dispatch view prunes leavers, so no new work arrives), *drain* the
  victim's queue and in-flight execution, deregister its advertisement
  (stop republishing + flush the local cache), and only then shut it
  down.  The drain outcome is journalled so the checker can audit "no
  in-flight work stranded by retirement" offline;
* **cooldown hysteresis** — at most one scale event per ``cooldown``
  window — keeps the controller from flapping on noise.

The decision core lives in :class:`AutoscalePolicy`, a pure state
machine the property suite drives directly with Hypothesis-generated
traces; :class:`AutoscalingGroup` wires that policy to a live group on
a dedicated controller host (so checker-injected b-peer crashes never
take the control loop down with them).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = [
    "AutoscaleSpec",
    "AutoscalePolicy",
    "ScaleEvent",
    "RetirementRecord",
    "AutoscalingGroup",
]


@dataclass(frozen=True)
class AutoscaleSpec:
    """Tuning knobs, carried by ``ScenarioConfig(autoscale=...)``."""

    min_replicas: int = 2
    max_replicas: int = 8
    high_watermark: float = 3.0
    low_watermark: float = 0.5
    cooldown: float = 5.0
    interval: float = 1.0
    drain_grace: float = 0.05
    drain_timeout: float = 30.0
    #: The victim must be *continuously* idle this long before shutdown:
    #: the leave announcement propagates asynchronously, so a delegation
    #: issued from a stale dispatch view can still be on the wire after
    #: the victim's queue first reads empty.
    drain_settle: float = 0.25
    #: EWMA weight on the newest pressure sample (1.0 = no smoothing).
    #: Instantaneous queue samples are noisy — an idle instant under a
    #: bursty arrival process reads as pressure 0 and would flap the
    #: group down mid-burst; smoothing makes the watermarks compare
    #: against sustained demand instead.
    smoothing: float = 1.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.low_watermark < 0 or self.high_watermark <= self.low_watermark:
            raise ValueError("need 0 <= low_watermark < high_watermark")
        if self.cooldown < 0 or self.interval <= 0:
            raise ValueError("cooldown must be >= 0 and interval > 0")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")


@dataclass(frozen=True)
class ScaleEvent:
    at: float
    direction: str  # "up" | "down"
    replicas: int  # active replica count *after* the event
    pressure: float
    forced: bool = False


@dataclass(frozen=True)
class RetirementRecord:
    """Drain audit for one retired replica (checker invariant input)."""

    at: float
    peer: str
    queued_at_exit: int
    parked_at_exit: int
    drained: bool


class AutoscalePolicy:
    """The pure decision core: watermarks + cooldown hysteresis.

    Deliberately free of simnet types so property tests can drive it
    with millions of synthetic (pressure, active, now) samples.
    """

    def __init__(self, spec: AutoscaleSpec):
        self.spec = spec
        self.last_scale_at: Optional[float] = None
        #: EWMA of the pressure samples seen so far (None before any).
        self.smoothed: Optional[float] = None

    def decide(self, pressure: float, active: int, now: float) -> Optional[str]:
        """Return "up", "down", or None; commits the cooldown on a decision."""
        spec = self.spec
        if self.smoothed is None:
            self.smoothed = pressure
        else:
            self.smoothed += spec.smoothing * (pressure - self.smoothed)
        if self.last_scale_at is not None and now - self.last_scale_at < spec.cooldown:
            return None
        if self.smoothed >= spec.high_watermark and active < spec.max_replicas:
            self.last_scale_at = now
            return "up"
        if self.smoothed <= spec.low_watermark and active > spec.min_replicas:
            self.last_scale_at = now
            return "down"
        return None


class AutoscalingGroup:
    """Control loop resizing one deployed :class:`BPeerGroup`."""

    def __init__(
        self,
        network,
        rendezvous,
        group,
        replica_factory: Callable[[int], object],
        spec: AutoscaleSpec,
        bpeer_kwargs: Optional[dict] = None,
        host_prefix: Optional[str] = None,
        advertise_remote: bool = True,
    ):
        self.network = network
        self.rendezvous = rendezvous
        self.group = group
        self.replica_factory = replica_factory
        self.spec = spec
        self.bpeer_kwargs = dict(bpeer_kwargs or {})
        self.host_prefix = host_prefix or f"bpeer-{group.name}-"
        self.advertise_remote = advertise_remote
        self.node = network.add_host(f"autoscale-{group.name}")
        self.env = self.node.env
        self.obs = network.obs
        self.policy = AutoscalePolicy(spec)
        self.events: List[ScaleEvent] = []
        self.retirements: List[RetirementRecord] = []
        #: Retired peers stay in ``group.peers`` so effect-ledger audits
        #: still cover them; this set tells the two populations apart.
        self._retired_ids: set = set()
        self.retired: List[object] = []
        self._retiring = None
        self._spawn_ids = itertools.count(len(group.peers))
        #: Replica-seconds integral (the bench's replica-hours numerator).
        self.replica_seconds = 0.0
        self._last_sample = self.env.now
        self._proc = None

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.node.spawn(
                self._control_loop(), name=f"autoscale:{self.group.name}"
            )

    def stop(self) -> None:
        self._sample_replica_time()
        if self._proc is not None and self._proc.is_alive:
            proc, self._proc = self._proc, None
            if proc is not self.env.active_process:
                proc.interrupt("shutdown")

    # -- introspection -----------------------------------------------------------------

    def active_peers(self) -> List[object]:
        """Group members not (yet) retired — the population we manage."""
        return [p for p in self.group.peers if id(p) not in self._retired_ids]

    def pressure(self) -> float:
        """Average outstanding work per live member, from the ledger."""
        coordinator = self.group.coordinator_peer()
        alive = [p for p in self.active_peers() if p.node.up]
        if coordinator is None or not alive:
            return 0.0
        outstanding = coordinator._total_outstanding()
        queued = sum(len(p._queue.items) for p in alive)
        return max(outstanding, queued) / len(alive)

    def replica_seconds_total(self, now: Optional[float] = None) -> float:
        """The integral including the still-open tail."""
        now = self.env.now if now is None else now
        return self.replica_seconds + len(self.active_peers()) * max(0.0, now - self._last_sample)

    # -- checker hooks (bypass cooldown, respect bounds) -------------------------------

    def force_scale_up(self) -> bool:
        if len(self.active_peers()) >= self.spec.max_replicas:
            return False
        self._spawn_replica(forced=True)
        return True

    def force_scale_down(self) -> bool:
        """Begin a forced retirement (async drain); False if at the floor."""
        if self._retiring is not None or len(self.active_peers()) <= self.spec.min_replicas:
            return False
        if self._pick_victim() is None:
            return False
        self.node.spawn(
            self._retire_replica(forced=True), name=f"autoscale-retire:{self.group.name}"
        )
        return True

    # -- internals ---------------------------------------------------------------------

    def _control_loop(self):
        from ..simnet.events import Interrupt

        try:
            while True:
                yield self.env.timeout(self.spec.interval)
                self._sample_replica_time()
                if self._retiring is not None:
                    continue
                decision = self.policy.decide(
                    self.pressure(), len(self.active_peers()), self.env.now
                )
                if decision == "up":
                    self._spawn_replica()
                elif decision == "down":
                    yield from self._retire_replica()
        except Interrupt:
            return

    def _sample_replica_time(self) -> None:
        now = self.env.now
        self.replica_seconds += len(self.active_peers()) * max(0.0, now - self._last_sample)
        self._last_sample = now

    def _spawn_replica(self, forced: bool = False):
        from .bpeer import BPeer

        self._sample_replica_time()
        pressure = self.pressure()
        index = next(self._spawn_ids)
        node = self.network.add_host(f"{self.host_prefix}{index}")
        bpeer = BPeer(
            node,
            group_id=self.group.group_id,
            group_name=self.group.name,
            implementation=self.replica_factory(index),
            **self.bpeer_kwargs,
        )
        bpeer.start(self.rendezvous)
        bpeer.keep_published(self.group.advertisement, remote=self.advertise_remote)
        self.group.peers.append(bpeer)
        self.events.append(
            ScaleEvent(
                at=self.env.now,
                direction="up",
                replicas=len(self.active_peers()),
                pressure=pressure,
                forced=forced,
            )
        )
        self.obs.metrics.inc("autoscale.scale_up")
        return bpeer

    def _pick_victim(self):
        """Newest live, non-coordinating, active replica (or None)."""
        for peer in reversed(self.active_peers()):
            if peer.node.up and not peer.coordinator_mgr.is_coordinator:
                return peer
        return None

    def _in_live_views(self, victim) -> bool:
        """Does any live sibling's group view still contain the victim?"""
        for peer in self.active_peers():
            if peer is victim or not peer.node.up:
                continue
            if victim.peer_id in peer.groups.members(victim.group_id):
                return True
        return False

    def _retire_replica(self, forced: bool = False):
        victim = self._pick_victim()
        if victim is None or self._retiring is not None:
            return
        self._retiring = victim
        try:
            if victim.coordinator_mgr.is_coordinator:
                return  # won an election since we picked it; abort
            pressure = self.pressure()
            # 1. Announce the leave: the coordinator's dispatch view
            #    prunes leavers, so no *new* work is routed to the victim
            #    (in-flight delegations still complete — it keeps serving).
            victim.groups.leave(victim.group_id)
            # 2. Wait for the leave to propagate: until every live
            #    member's view has pruned the victim, the coordinator may
            #    still delegate fresh work to it.  Bounded by the drain
            #    deadline — under message loss the rendezvous lease
            #    expiry prunes it eventually, and retries mask the rest.
            deadline = self.env.now + self.spec.drain_timeout
            while self._in_live_views(victim) and self.env.now < deadline:
                yield self.env.timeout(self.spec.drain_grace)
            # 3. Drain: queued work, the in-flight execution, and parked
            #    duplicate-retries must all clear — and *stay* clear for
            #    a settle window, because a delegation issued from a
            #    stale view can still be on the wire when the queue
            #    first reads empty.
            idle_since: Optional[float] = None
            while self.env.now < deadline:
                if victim._queue.items or victim._busy or victim._parked:
                    idle_since = None
                elif idle_since is None:
                    idle_since = self.env.now
                elif self.env.now - idle_since >= self.spec.drain_settle:
                    break
                yield self.env.timeout(self.spec.drain_grace)
            queued = len(victim._queue.items) + (1 if victim._busy else 0)
            parked = sum(len(waiting) for waiting in victim._parked.values())
            self._sample_replica_time()
            # 4. Deregister the advertisement: stop republishing and flush
            #    the local cache (the surviving replicas keep the group
            #    advertisement alive on the rendezvous).
            victim.published_advertisements.clear()
            victim.discovery.flush(self.group.advertisement)
            # 5. Only now tear the peer down.
            victim.shutdown()
            self._retired_ids.add(id(victim))
            self.retired.append(victim)
            self.retirements.append(
                RetirementRecord(
                    at=self.env.now,
                    peer=victim.name,
                    queued_at_exit=queued,
                    parked_at_exit=parked,
                    drained=(queued == 0 and parked == 0),
                )
            )
            self.events.append(
                ScaleEvent(
                    at=self.env.now,
                    direction="down",
                    replicas=len(self.active_peers()),
                    pressure=pressure,
                    forced=forced,
                )
            )
            self.obs.metrics.inc("autoscale.scale_down")
        finally:
            self._retiring = None
