"""The dedup/result journal: exactly-once invocation across failover.

The recovery stack is at-least-once by construction — the proxy re-sends
after every timeout and the coordinator's delegation fallback tries the
next member while the first may still be executing.  For read-only
lookups that is merely wasteful; for the paper's B2B operations with side
effects (§1: purchase orders, enrollment) a retried call can mutate the
backend twice.

Following the group-replicated service state of Jan et al. ("Exploiting
peer group concept for adaptive and highly available services",
PAPERS.md), every coordinator keeps a bounded journal keyed by the
proxy-minted *invocation id* (idempotency key):

* ``EXECUTING`` — the invocation is in flight here; a retried copy is
  *parked* until the in-flight execution finishes, instead of executing
  again;
* ``DONE`` — the invocation completed; the canonical
  :class:`~repro.core.bpeer.ExecReply` is replayed to any retry without
  touching the backend.

``DONE`` entries are replicated to the other members (piggybacked on
delegate/report traffic, eagerly broadcast for mutating operations, and
bulk-transferred to a freshly elected coordinator), so the replacement
coordinator answers retried calls from the journal instead of
re-executing them.

Entries are epoch-aware (they record the coordinator term that produced
the result) and the journal is bounded: once ``capacity`` is exceeded the
oldest ``DONE`` entries are evicted — an evicted entry degrades that
invocation back to at-least-once, which the campaign's duplicate audit
would surface, so capacity is sized well above the retry horizon.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Tuple

__all__ = ["DedupJournal", "JournalEntry", "JournalStats", "EXECUTING", "DONE"]

#: Entry states.
EXECUTING = "executing"
DONE = "done"


@dataclass
class JournalEntry:
    """One invocation's dedup record.

    ``reply`` is the canonical :class:`~repro.core.bpeer.ExecReply` once
    the entry is ``DONE`` (replayed, re-stamped, to every retry).
    ``request`` is transient coordinator-local state — the proxy request
    an in-flight execution will answer — and is never replicated.
    """

    invocation_id: str
    state: str = EXECUTING
    reply: Optional[Any] = None
    #: Coordinator epoch the execution ran under (fencing/audit context).
    epoch: Optional[Any] = None
    recorded_at: float = 0.0
    #: Transient: the pending request a late-reconciled result must answer.
    request: Optional[Any] = None
    #: For ``EXECUTING`` entries: the peer that holds the write intent —
    #: the only peer whose journal can say whether the effect was applied
    #: (its apply + ``complete`` are atomic).  An in-doubt intent is
    #: resolved by asking the origin, never by timing it out.
    origin: Optional[Any] = None

    @property
    def done(self) -> bool:
        return self.state == DONE

    def replicable(self) -> "JournalEntry":
        """A copy safe to ship to other peers (transient state stripped)."""
        return replace(self, request=None)


@dataclass
class JournalStats:
    """Operational counters, folded into campaign/bench reports."""

    #: Retries answered from a ``DONE`` entry without executing.
    hits: int = 0
    #: Replicated entries accepted from other peers.
    merges: int = 0
    #: ``complete`` calls that found the entry already ``DONE`` — a
    #: duplicate execution result that was suppressed, not delivered.
    duplicates_suppressed: int = 0
    #: ``DONE`` entries dropped to keep the journal bounded.
    evictions: int = 0


class DedupJournal:
    """Bounded, epoch-aware dedup/result journal for one peer."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, JournalEntry]" = OrderedDict()
        self.stats = JournalStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, invocation_id: str) -> bool:
        return invocation_id in self._entries

    def lookup(self, invocation_id: str) -> Optional[JournalEntry]:
        return self._entries.get(invocation_id)

    def begin(
        self,
        invocation_id: str,
        request: Optional[Any] = None,
        epoch: Optional[Any] = None,
        now: float = 0.0,
        origin: Optional[Any] = None,
    ) -> JournalEntry:
        """Mark an invocation in flight (idempotent; never demotes DONE)."""
        entry = self._entries.get(invocation_id)
        if entry is not None:
            if entry.state == EXECUTING and request is not None:
                entry.request = request
            if entry.state == EXECUTING and entry.origin is None:
                entry.origin = origin
            return entry
        entry = JournalEntry(
            invocation_id=invocation_id,
            state=EXECUTING,
            epoch=epoch,
            recorded_at=now,
            request=request,
            origin=origin,
        )
        self._entries[invocation_id] = entry
        self._evict()
        return entry

    def complete(
        self,
        invocation_id: str,
        reply: Any,
        epoch: Optional[Any] = None,
        now: float = 0.0,
    ) -> Tuple[JournalEntry, bool]:
        """Record the invocation's canonical result.

        Returns ``(entry, first)``.  ``first`` is False when the entry was
        already ``DONE`` — the caller holds a *duplicate* result whose
        delivery must be suppressed in favour of the stored one (first
        result wins).
        """
        entry = self._entries.get(invocation_id)
        if entry is not None and entry.done:
            self.stats.duplicates_suppressed += 1
            return entry, False
        if entry is None:
            entry = JournalEntry(invocation_id=invocation_id)
            self._entries[invocation_id] = entry
        entry.state = DONE
        entry.reply = reply
        entry.epoch = epoch
        entry.recorded_at = now
        entry.request = None
        entry.origin = None
        self._entries.move_to_end(invocation_id)
        self._evict()
        return entry, True

    def abandon(self, invocation_id: str) -> None:
        """Drop an ``EXECUTING`` entry (the attempt failed; a retry may
        legitimately execute again).  ``DONE`` entries are never dropped
        this way."""
        entry = self._entries.get(invocation_id)
        if entry is not None and not entry.done:
            del self._entries[invocation_id]

    def record_hit(self) -> None:
        self.stats.hits += 1

    def merge(self, entry: JournalEntry, now: float = 0.0) -> bool:
        """Fold in a replicated ``DONE`` entry from another peer.

        Returns True when the entry was new knowledge (installed or
        upgraded a local ``EXECUTING`` placeholder); an already-``DONE``
        local entry wins (first result wins) and the merge is a no-op.
        """
        if not entry.done:
            return False
        local = self._entries.get(entry.invocation_id)
        if local is not None and local.done:
            return False
        if local is None:
            self._entries[entry.invocation_id] = entry.replicable()
        else:
            local.state = DONE
            local.reply = entry.reply
            local.epoch = entry.epoch
            local.recorded_at = now or entry.recorded_at
            local.request = None
            local.origin = None
        self.stats.merges += 1
        self._entries.move_to_end(entry.invocation_id)
        self._evict()
        return True

    def drop_executing(self) -> int:
        """Crash cleanup: in-flight markers are memory, not storage.

        ``DONE`` entries survive a crash (they model the same durable
        storage as the persisted election epoch); ``EXECUTING`` markers do
        not — a restarted peer may legitimately execute those invocations
        afresh.  Returns how many markers were dropped.
        """
        stale = [
            invocation_id
            for invocation_id, entry in self._entries.items()
            if not entry.done
        ]
        for invocation_id in stale:
            del self._entries[invocation_id]
        return len(stale)

    def export(self) -> List[JournalEntry]:
        """Every ``DONE`` entry, stripped of transient state — the payload
        of the journal-transfer handshake after an election."""
        return [entry.replicable() for entry in self._entries.values() if entry.done]

    def _evict(self) -> None:
        """Evict oldest ``DONE`` entries past capacity (never in-flight)."""
        if len(self._entries) <= self.capacity:
            return
        for key in list(self._entries):
            if len(self._entries) <= self.capacity:
                break
            if self._entries[key].done:
                del self._entries[key]
                self.stats.evictions += 1
