"""Non-Whisper fault-tolerance baselines for comparison.

The paper positions Whisper against prior Web-service fault-tolerance work
([2] Dialani et al., [3] WS-FTM) whose common shape is *replicated
endpoints with client-side failover*: the client (or a client-side stub)
knows every replica's address and retries the next one when a call fails.
It works, but it is not *transparent* — every client must be configured
with, and kept up to date about, the replica set — and the replicas do
not coordinate, so there is no single consistent executor.

:class:`ReplicatedPlainService` deploys N independent plain Web services;
:class:`FailoverSoapClient` is the retrying client stub.  The ablation
benchmark compares this baseline's availability and failover latency with
Whisper's server-side approach.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..backend.services import ServiceImplementation
from ..simnet.node import Node
from ..soap.client import SoapClient
from ..soap.fault import SoapFault
from ..soap.http import RequestTimeout
from .system import WhisperSystem
from .webservice import PlainWebService

__all__ = ["ReplicatedPlainService", "FailoverSoapClient"]


class ReplicatedPlainService:
    """N independent plain Web services hosting the same functionality.

    There is no group, no election, no shared advertisement — just N
    endpoints a client must know about.
    """

    def __init__(
        self,
        system: WhisperSystem,
        service_name: str,
        implementations: List[ServiceImplementation],
        host_prefix: Optional[str] = None,
    ):
        if not implementations:
            raise ValueError("need at least one implementation")
        self.service_name = service_name
        prefix = host_prefix or f"plain-{service_name}-"
        self.services: List[PlainWebService] = []
        for index, implementation in enumerate(implementations):
            node = system.network.add_host(f"{prefix}{index}")
            self.services.append(
                PlainWebService(node, service_name, implementation)
            )

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        """The replica addresses every client must be configured with."""
        return [service.address for service in self.services]

    @property
    def path(self) -> str:
        return self.services[0].path

    def hosts(self) -> List[Node]:
        return [service.node for service in self.services]


class FailoverSoapClient:
    """A client-side stub that retries across known replica endpoints.

    On :class:`RequestTimeout` it moves to the next endpoint (round-robin
    from the last known-good one).  Application faults
    (:class:`~repro.soap.fault.SoapFault`) are *not* retried — the replicas
    share fate on data errors.
    """

    def __init__(
        self,
        node: Node,
        endpoints: List[Tuple[str, int]],
        path: str,
        per_endpoint_timeout: float = 2.0,
    ):
        if not endpoints:
            raise ValueError("need at least one endpoint")
        self.soap = SoapClient(node, default_timeout=per_endpoint_timeout)
        self.endpoints = list(endpoints)
        self.path = path
        self.per_endpoint_timeout = per_endpoint_timeout
        self._preferred = 0
        self.failovers = 0

    def call(
        self,
        operation: str,
        arguments: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Generator:
        """Invoke ``operation``, failing over across endpoints.

        Raises the last :class:`RequestTimeout` if every endpoint is dead.
        """
        last_error: Optional[RequestTimeout] = None
        attempts = len(self.endpoints)
        for offset in range(attempts):
            index = (self._preferred + offset) % len(self.endpoints)
            address = self.endpoints[index]
            try:
                value = yield from self.soap.call(
                    address,
                    self.path,
                    operation,
                    arguments,
                    timeout=timeout if timeout is not None else self.per_endpoint_timeout,
                )
            except RequestTimeout as error:
                last_error = error
                self.failovers += 1
                continue
            except SoapFault:
                raise
            else:
                self._preferred = index  # stick with the working replica
                return value
        raise last_error if last_error is not None else RequestTimeout(
            self.endpoints[0], self.path, self.per_endpoint_timeout
        )
