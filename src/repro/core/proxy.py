"""The SWS-Proxy (§3.2).

"When a Web service receives a request it forwards it to the Semantic Web
Service proxy (SWS-proxy).  Proxies contact the JXTA infrastructure and
using the Discovery Service locate a semantic group of peers that can
satisfy the client's request."

The proxy's lifecycle per request:

1. **discover** — find a semantic advertisement matching the service's
   action/input/output annotations (local cache first, then a remote
   discovery query — the paper's ``findPeerGroupAdv``);
2. **bind** — resolve the group's current coordinator (a resolver query
   answered by group members) and cache the binding;
3. **invoke** — send the request to the bound coordinator and wait;
4. **recover** — on timeout or a ``not-coordinator`` redirect, drop the
   binding and go back to step 2.  Re-binding after a coordinator crash is
   the second component of the paper's multi-second worst-case RTT (§5).

The proxy also "translates the data received to a suitable format" (§4.2):
results are validated against the service's WSDL schema before being
handed back to the Web service.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from ..election.epoch import GENESIS, Epoch
from ..ontology.match import ConceptMatcher, DegreeOfMatch
from ..p2p.advertisement import SemanticAdvertisement
from ..p2p.endpoint import EndpointMessage, UnresolvablePeerError
from ..p2p.ids import PeerGroupId, PeerId
from ..p2p.peer import Peer
from ..qos.metrics import QosProfile
from ..qos.selection import QosSelector
from ..simnet.events import AllOf, AnyOf
from ..simnet.message import Address
from ..soap.fault import SoapFault
from ..wsdl.schema import SchemaError
from .bpeer import COORD_HANDLER, PROTO_EXEC, PROTO_EXEC_REPLY, ExecReply, ExecRequest
from .breaker import BreakerSpec, CircuitBreaker
from .errors import (
    CircuitOpenError,
    InvocationFailedError,
    NoCoordinatorError,
    NoMatchingGroupError,
)
from .matching import GroupMatch, SemanticGroupMatcher
from .rescache import ResultCacheSpec, SemanticResultCache
from .result import InvokeOutcome, InvokeResult
from .retry import Deadline, RetryPolicy
from .sharding import ScatterResult, ShardRouter, shard_key
from .sws import SemanticWebService

__all__ = ["SwsProxy", "ProxyStats"]


@dataclass
class ProxyStats:
    """Operational counters for benchmark reporting."""

    invocations: int = 0
    successes: int = 0
    faults: int = 0
    timeouts: int = 0
    redirects: int = 0
    rebinds: int = 0
    remote_discoveries: int = 0
    translation_failures: int = 0
    #: Redirects caused by the binding's epoch being stale (split-brain
    #: fencing), a subset of ``redirects``.
    stale_epoch_redirects: int = 0
    #: Result replies discarded because a newer epoch already delivered.
    stale_results_discarded: int = 0
    #: Invocations abandoned because the per-request deadline ran out.
    deadline_exhausted: int = 0
    #: ``busy`` replies received — the back-end shed load on us.
    shed: int = 0
    #: Results replayed from the dedup journal (a retry observed the
    #: original execution's value instead of re-executing).
    deduped: int = 0
    #: Sheds whose retry-after hint we slept on before retrying (the
    #: remainder arrived with the deadline already exhausted).
    retry_after_honored: int = 0
    #: Invocations routed by the consistent-hash shard ring (only
    #: sharded deployments increment this).
    shard_routed: int = 0
    #: Invocations rerouted to a ring successor after their home shard
    #: group stopped answering (read legs and never-sent requests only —
    #: a sent mutating request stays pinned to its home group so dedup
    #: journals never need to span groups).
    shard_failovers: int = 0
    #: Bind choices where nearest-region preference narrowed the tie
    #: (multi-region topologies only).
    region_preferred: int = 0
    #: Invocations failed over to another region's group after the home
    #: region stopped answering (same sticky at-most-once rule as shard
    #: failovers: read legs and never-sent requests only).
    region_failovers: int = 0
    #: Cross-shard scatter-gather reads issued.
    scatter_calls: int = 0
    #: Scatters that completed degraded (some shard legs failed but the
    #: partial-result policy accepted the gather).
    scatter_partial: int = 0
    #: Calls rejected locally by an open circuit breaker (no traffic).
    breaker_rejected: int = 0
    #: Breaker rejections answered by a graceful-degradation fallback.
    breaker_fallbacks: int = 0
    #: Read-only invocations served from the semantic result cache.
    cache_hits: int = 0
    #: Cache-eligible invocations that had to take the full path.
    cache_misses: int = 0
    #: Durations (seconds, start to completion) of invocations that
    #: needed recovery — i.e. the proxy's observed failover times.
    failover_durations: List[float] = field(default_factory=list)


@dataclass
class _Binding:
    group_id: PeerGroupId
    coordinator: PeerId
    address: Optional[Address]
    #: Coordinator epoch this binding was made under (``None`` when the
    #: answering peer predates epochs); stamped onto every request so
    #: b-peers can fence stale bindings.
    epoch: Optional[Epoch] = None


def _shard_set_complete(matches: List[GroupMatch]) -> bool:
    """True when no advertised shard set in ``matches`` is missing members.

    Unsharded matches are trivially complete; a sharded advertisement
    declares how many siblings exist (``shard_count``), so completeness
    is checkable locally without a central shard map.
    """
    sets: Dict[Tuple[str, int], set] = {}
    for match in matches:
        advertisement = match.advertisement
        if advertisement.sharded:
            sets.setdefault(
                (advertisement.action, advertisement.shard_count), set()
            ).add(advertisement.name)
    return all(len(names) >= count for (_action, count), names in sets.items())


def _shard_threshold(matches: List[GroupMatch]) -> int:
    """Discovery threshold covering the largest known shard set (min 1)."""
    return max(
        (
            m.advertisement.shard_count
            for m in matches
            if m.advertisement.sharded
        ),
        default=1,
    )


class SwsProxy(Peer):
    """One Web service's proxy onto the P2P back-end."""

    def __init__(
        self,
        node,
        sws: SemanticWebService,
        matcher: ConceptMatcher,
        min_degree: DegreeOfMatch = DegreeOfMatch.EXACT,
        request_timeout: float = 2.0,
        max_attempts: int = 8,
        discovery_timeout: float = 1.0,
        coordinator_timeout: float = 1.0,
        qos_selector: Optional[QosSelector] = None,
        retry: Optional[RetryPolicy] = None,
        deadline_budget: float = 60.0,
        resolve_grace: float = 0.02,
        epoch_fencing: bool = True,
        scatter_policy: str = "partial",
        virtual_nodes: int = 64,
        shard_suspect_interval: float = 10.0,
        home_region: Optional[str] = None,
        region_count: int = 1,
        circuit_breaker: Optional[BreakerSpec] = None,
        result_cache: Optional[ResultCacheSpec] = None,
        name: Optional[str] = None,
    ):
        super().__init__(node, name=name or f"proxy:{sws.name}")
        #: Split-brain fencing on the proxy side (PR 2): prefer the
        #: highest-epoch resolver answer, discard stale results, gossip
        #: the highest witnessed term.  ``False`` restores the naive
        #: first-answer-wins proxy — the behaviour the schedule checker's
        #: self-test shows to be unsafe.
        self.epoch_fencing = epoch_fencing
        self.sws = sws
        self.group_matcher = SemanticGroupMatcher(matcher, min_degree=min_degree)
        self.request_timeout = request_timeout
        self.max_attempts = max_attempts
        self.discovery_timeout = discovery_timeout
        self.coordinator_timeout = coordinator_timeout
        self.qos_selector = qos_selector or QosSelector()
        self.retry = retry or RetryPolicy()
        #: Default per-request wall budget (simulated seconds); ``invoke``'s
        #: ``budget`` argument overrides it per call.
        self.deadline_budget = deadline_budget
        #: After the first resolver answer, wait this long for racing
        #: answers so a split-brain minority cannot win the bind simply by
        #: replying first — the highest epoch wins instead.
        self.resolve_grace = resolve_grace
        #: Cross-shard read policy (``all`` / ``quorum`` / ``partial``).
        self.scatter_policy = scatter_policy
        self.virtual_nodes = virtual_nodes
        #: How long a non-answering shard group's ring segment is served
        #: by its clockwise successors before being retried.
        self.shard_suspect_interval = shard_suspect_interval
        #: Region this proxy lives in (multi-region topologies): among
        #: equally good semantic matches it binds to a group advertised
        #: from its own region, and fails over to other regions' groups
        #: when the home region stops answering.  ``None`` (single-region
        #: deployments) disables both — behaviour identical to the seed.
        self.home_region = home_region
        #: How many regions replicate each group (region-replicated
        #: topologies): discovery keeps querying until it has seen one
        #: advertisement per region, so region preference and failover
        #: have the full candidate set to work with.
        self.region_count = max(1, region_count)
        #: Operations whose every implementation is side-effect free
        #: (wired at deploy time).  Read legs may fail over to a ring
        #: successor even after a send; anything not listed here is
        #: treated as mutating and stays pinned once sent.
        self.read_only_operations: set = set()
        #: Circuit breakers, lazily built per chosen advertisement —
        #: i.e. per (service, shard) scope (``None`` spec disables).
        self._breaker_spec = circuit_breaker
        self._breakers: Dict[str, CircuitBreaker] = {}
        #: Graceful-degradation handlers per operation: with the circuit
        #: open, ``fallback(operation, arguments)`` supplies a degraded
        #: value instead of raising :class:`CircuitOpenError`.
        self.fallbacks: Dict[str, Any] = {}
        #: Read-through semantic result cache (``None`` spec disables):
        #: read-only hits return before discovery even starts.
        self.result_cache: Optional[SemanticResultCache] = (
            SemanticResultCache(result_cache, metrics=node.network.obs.metrics)
            if result_cache is not None
            else None
        )
        #: Per-operation shard routers, built lazily from discovered
        #: shard-annotated advertisements (discovery *is* the shard map).
        self._routers: Dict[str, ShardRouter] = {}
        self.stats = ProxyStats()
        #: Network-wide observability (disabled on bare networks): every
        #: invocation records a request trace with per-phase spans.
        self.obs = node.network.obs
        self._request_ids = itertools.count(1)
        #: Idempotency keys: one per *logical* call (minted in ``_invoke``,
        #: reused across every retry), unlike ``_request_ids`` which are
        #: per-attempt.
        self._invocation_ids = itertools.count(1)
        self._retry_rng = node.network.rng.stream(f"proxy-retry:{self.name}")
        self._pending: Dict[int, Any] = {}
        self._bindings: Dict[PeerGroupId, _Binding] = {}
        self._group_profiles: Dict[str, QosProfile] = {}
        #: Highest epoch whose result was delivered to the client, per
        #: group — results below it are discarded (no-stale-result).
        self._last_result_epoch: Dict[PeerGroupId, Epoch] = {}
        #: Audit log of delivered ``(group_id, epoch)`` pairs, in delivery
        #: order; the fault campaign checks it is monotone per group.
        self.result_epoch_log: Deque[Tuple[PeerGroupId, Epoch]] = deque(maxlen=8192)
        self.endpoint.register_listener(PROTO_EXEC_REPLY, self._on_reply)

    # -- discovery (the paper's findPeerGroupAdv) ------------------------------------------

    def find_peer_group_adv(
        self, operation: str, deadline: Optional[Deadline] = None
    ) -> Generator:
        """Locate semantic advertisements matching ``operation``'s semantics.

        Mirrors §3.2: local advertisements are scanned first; only if none
        match is a remote discovery query issued.  Returns the list of
        matches, best first (``yield from``).  A ``deadline`` caps each
        remote query's timeout at the request's remaining budget.

        Shard awareness: an advertisement carrying ``shard_count`` means
        the keyspace is partitioned over that many sibling groups, so a
        match set that covers only part of a shard set re-queries with
        the full count as the threshold — the ring must see every shard
        group or keys would silently concentrate on the ones discovered.
        """
        annotation = self.sws.annotation(operation)

        def scan_local() -> List[GroupMatch]:
            local = self.discovery.get_local_advertisements(SemanticAdvertisement)
            return self.group_matcher.find_all(annotation, local)

        matches = scan_local()
        if (
            matches
            and _shard_set_complete(matches)
            and self._region_set_complete(matches)
        ):
            return matches
        self.stats.remote_discoveries += 1
        self.obs.metrics.inc("proxy.remote_discoveries")
        timeout = self.discovery_timeout
        if deadline is not None:
            timeout = deadline.clamp(self.env.now, timeout)
        # Fast path: query by the exact action concept (the rendezvous
        # answers with up to ``threshold`` matching SRDI documents in one
        # message — 1 suffices unless a known shard set or region
        # replica set needs more).
        remote = yield from self.discovery.get_remote_advertisements(
            SemanticAdvertisement,
            attribute="Action",
            value=annotation.action,
            timeout=timeout,
            threshold=self._discovery_threshold(matches),
        )
        # Remote results were published into the local cache; re-scan so
        # previously known and freshly discovered advertisements merge.
        matches = scan_local() if matches else self.group_matcher.find_all(
            annotation, remote
        )
        if matches:
            if _shard_set_complete(matches) and self._region_set_complete(
                matches
            ):
                return matches
            # The first answer revealed a shard or region set we only
            # partially know: one directed re-query for the full set.
            if deadline is not None:
                timeout = deadline.clamp(self.env.now, self.discovery_timeout)
            yield from self.discovery.get_remote_advertisements(
                SemanticAdvertisement,
                attribute="Action",
                value=annotation.action,
                timeout=timeout,
                threshold=self._discovery_threshold(matches),
            )
            return scan_local()
        # Slow path: groups advertising an *equivalent or related* action
        # concept carry a different Action attribute; fetch everything and
        # let the semantic matcher decide.
        if deadline is not None:
            timeout = deadline.clamp(self.env.now, self.discovery_timeout)
        remote = yield from self.discovery.get_remote_advertisements(
            SemanticAdvertisement, timeout=timeout
        )
        return self.group_matcher.find_all(annotation, remote)

    def _region_set_complete(self, matches: List[GroupMatch]) -> bool:
        """True once matches cover every region's replica of the group.

        Single-region proxies (``region_count == 1``) are trivially
        complete, so discovery behaves exactly as before the multi-region
        extension.
        """
        if self.region_count <= 1:
            return True
        regions = {
            m.advertisement.region
            for m in matches
            if m.advertisement.region is not None
        }
        return len(regions) >= self.region_count

    def _discovery_threshold(self, matches: List[GroupMatch]) -> int:
        """Remote-query threshold covering shard and region sets (min 1)."""
        return max(_shard_threshold(matches), self.region_count)

    def _choose_group(self, matches: List[GroupMatch]) -> GroupMatch:
        """Among equally good semantic matches, prefer nearest region, then
        best QoS (§2.4)."""
        if len(matches) == 1:
            return matches[0]
        best_degree = matches[0].degree
        tied = [m for m in matches if m.degree == best_degree]
        if self.home_region is not None and len(tied) > 1:
            home = [
                m for m in tied if m.advertisement.region == self.home_region
            ]
            if home and len(home) < len(tied):
                self.stats.region_preferred += 1
                self.obs.metrics.inc("proxy.region_preferred")
                tied = home
        if len(tied) == 1:
            return tied[0]
        candidates = {
            m.advertisement.key(): self._profile_for(
                m.advertisement.key(), m.advertisement
            ).snapshot()
            for m in tied
        }
        chosen_key = self.qos_selector.select(candidates)
        for match in tied:
            if match.advertisement.key() == chosen_key:
                return match
        return tied[0]

    def _profile_for(
        self, group_key: str, advertisement: Optional[SemanticAdvertisement] = None
    ) -> QosProfile:
        if group_key not in self._group_profiles:
            profile = QosProfile()
            # §2.4 extension: a group advertising its QoS seeds the proxy's
            # profile, so selection is informed before the first invocation.
            if advertisement is not None and advertisement.has_qos:
                profile = QosProfile(
                    cost=advertisement.qos_cost,
                    initial_time=advertisement.qos_time,
                    initial_reliability=advertisement.qos_reliability,
                )
            self._group_profiles[group_key] = profile
        return self._group_profiles[group_key]

    # -- binding ----------------------------------------------------------------------------

    def resolve_coordinator(
        self, group_id: PeerGroupId, deadline: Optional[Deadline] = None
    ) -> Generator:
        """Ask the group who currently coordinates it (``yield from``).

        After the first answer lands, a short grace window collects any
        racing answers; if they conflict (split-brain after a partition
        heal), the highest-epoch claim wins the binding.
        """
        answers: List[Tuple] = []
        done = self.env.event()

        def on_response(response) -> None:
            answers.append(response.payload)
            if not done.triggered:
                done.succeed()

        timeout = self.coordinator_timeout
        if deadline is not None:
            timeout = deadline.clamp(self.env.now, timeout)
        query_id = self.resolver.send_query(
            COORD_HANDLER, group_id, on_response=on_response, size_bytes=128
        )
        timer = self.env.timeout(timeout)
        outcome = yield AnyOf(self.env, [done, timer])
        if done in outcome and self.epoch_fencing and self.resolve_grace > 0.0:
            grace = self.resolve_grace
            if deadline is not None:
                grace = deadline.clamp(self.env.now, grace)
            if grace > 0.0:
                yield self.env.timeout(grace)
        self.resolver.cancel_query(query_id)
        if not answers:
            raise NoCoordinatorError(f"no coordinator response for {group_id}")
        if self.epoch_fencing:
            coordinator, address, epoch = max(
                (self._normalize_pointer(answer) for answer in answers),
                key=lambda item: item[2] if item[2] is not None else GENESIS,
            )
        else:
            # Unfenced: first answer wins, even if it is a deposed
            # coordinator's stale claim.
            coordinator, address, epoch = self._normalize_pointer(answers[0])
        return self._rebind(group_id, coordinator, address, epoch)

    @staticmethod
    def _normalize_pointer(pointer: Tuple) -> Tuple[PeerId, Optional[Address], Optional[Epoch]]:
        """Accept legacy ``(peer, addr)`` and epoch-stamped 3-tuples."""
        if len(pointer) >= 3:
            return pointer[0], pointer[1], pointer[2]
        return pointer[0], pointer[1], None

    def _rebind(
        self,
        group_id: PeerGroupId,
        coordinator: PeerId,
        address: Optional[Address],
        epoch: Optional[Epoch],
    ) -> _Binding:
        """The single path that installs a binding.

        Replacing a live binding is a failover and counts as a rebind —
        this is what the old redirect-with-pointer shortcut skipped,
        undercounting ``ProxyStats.rebinds``.
        """
        previous = self._bindings.get(group_id)
        if previous is not None and (
            previous.coordinator != coordinator or previous.epoch != epoch
        ):
            self.stats.rebinds += 1
            self.obs.metrics.inc("proxy.rebinds")
        binding = _Binding(
            group_id=group_id, coordinator=coordinator, address=address, epoch=epoch
        )
        self._bindings[group_id] = binding
        if address is not None:
            self.endpoint.add_route(coordinator, address)
        return binding

    def drop_binding(self, group_id: PeerGroupId) -> None:
        """Forget a (presumed stale) binding; next invoke re-binds."""
        if self._bindings.pop(group_id, None) is not None:
            self.stats.rebinds += 1
            self.obs.metrics.inc("proxy.rebinds")

    # -- invocation ----------------------------------------------------------------------------

    def invoke(
        self,
        operation: str,
        arguments: Dict[str, Any],
        timeout: Optional[float] = None,
        budget: Optional[float] = None,
        invocation_id: Optional[str] = None,
    ) -> Generator:
        """Execute ``operation`` on the b-peer back-end (``yield from``).

        Returns an :class:`~repro.core.result.InvokeResult` — the
        translated value plus how the call went (outcome, attempts,
        epoch, duration, trace id); raises
        :class:`~repro.soap.fault.SoapFault` for application errors
        (including ``Server.Busy`` when overload shedding outlasted the
        request's deadline), :class:`NoMatchingGroupError` /
        :class:`InvocationFailedError` for system-level failures the
        retries could not mask.

        ``timeout`` caps one send-and-wait attempt; ``budget`` (defaulting
        to ``deadline_budget``) caps the whole request including retries —
        the resulting deadline is propagated into every discovery, bind and
        invoke timeout, and retry backoff grows exponentially (seeded
        jitter) under it.

        With observability enabled, each invocation records a
        :class:`~repro.obs.span.RequestTrace` with ``discover`` / ``bind``
        / ``invoke`` / ``recover`` phase spans, feeding the per-phase
        latency histograms that ``status_report()`` and the CLI expose.

        ``invocation_id`` overrides the proxy-minted idempotency key —
        the saga orchestrator uses this to pin a deterministic,
        write-ahead-logged key so a restarted orchestrator re-issues the
        *same* logical call and the b-peer journal deduplicates it.
        """
        self.stats.invocations += 1
        rtrace = self.obs.request_trace(
            f"{self.sws.name}.{operation}", self.stats.invocations, self.env.now
        )
        try:
            result = yield from self._invoke(
                operation, arguments, timeout, budget, rtrace, invocation_id
            )
        except BaseException as error:
            self.obs.finish_request(rtrace, self.env.now, status=type(error).__name__)
            raise
        self.obs.finish_request(rtrace, self.env.now, status="ok")
        return result

    def _invoke(
        self,
        operation: str,
        arguments: Dict[str, Any],
        timeout: Optional[float],
        budget: Optional[float],
        rtrace,
        invocation_id: Optional[str] = None,
    ) -> Generator:
        started_at = self.env.now
        per_request_timeout = timeout if timeout is not None else self.request_timeout
        deadline = Deadline(
            at=started_at + (budget if budget is not None else self.deadline_budget)
        )
        # Idempotency key for the whole logical call: every retry/rebind
        # below re-sends under the same id, so the b-peer group can
        # deduplicate (journal replay) instead of re-executing.  A caller
        # may pin its own (durably logged) key; otherwise the proxy mints
        # one from its private counter.
        if invocation_id is None:
            invocation_id = f"{self.name}#{next(self._invocation_ids)}"

        # Read-through semantic result cache: a hit on a read-only
        # operation returns here — no discovery, no bind, no traffic.
        # The key is the semantic action concept + the canonicalized
        # argument map (shard_key's canonicalization), so syntactically
        # different but semantically identical calls share an entry.
        action = self.sws.annotation(operation).action
        mutating = operation not in self.read_only_operations
        cache_key: Optional[str] = None
        if self.result_cache is not None and not mutating:
            cache_key = shard_key(action, arguments)
            entry = self.result_cache.lookup(
                cache_key, self.env.now, fence_for=self._last_result_epoch.get
            )
            if entry is not None:
                self.stats.cache_hits += 1
                return InvokeResult(
                    value=entry.value,
                    outcome=InvokeOutcome.CACHED,
                    epoch=entry.epoch,
                    attempts=0,
                    duration=self.env.now - started_at,
                    trace_id=rtrace.request_id,
                    served_by="rescache",
                    invocation_id=invocation_id,
                )
            self.stats.cache_misses += 1

        discover_span = rtrace.begin("discover", self.env.now)
        matches = yield from self.find_peer_group_adv(operation, deadline=deadline)
        discover_span.finish(self.env.now, matches=len(matches))
        if not matches:
            raise NoMatchingGroupError(
                f"no b-peer group matches {self.sws.name}.{operation}"
            )
        router = self._shard_router_for(operation, matches)
        routing_key: Optional[str] = None
        match_by_name: Dict[str, GroupMatch] = {}
        if router is not None:
            match_by_name = {
                m.advertisement.name: m
                for m in matches
                if m.advertisement.sharded
            }
            routing_key = shard_key(
                self.sws.annotation(operation).action, arguments
            )
            owner = router.route(routing_key, self.env.now)
            match = match_by_name.get(owner) if owner is not None else None
            if match is None:
                match = self._choose_group(matches)
            self.stats.shard_routed += 1
            self.obs.metrics.inc("proxy.shard_routed")
        else:
            match = self._choose_group(matches)
        region_alternates: List[GroupMatch] = []
        if self.home_region is not None and router is None:
            # Other regions' groups for the same semantics — the
            # cross-region failover ladder, in match order (best first,
            # which find_peer_group_adv already guarantees).
            region_alternates = [
                m
                for m in matches
                if m.advertisement.region is not None
                and m.advertisement.group_id != match.advertisement.group_id
            ]
        # Circuit breaker, scoped to the chosen advertisement (i.e. per
        # service + shard): an open circuit rejects locally — the
        # fallback handler answers degraded, or CircuitOpenError raises.
        breaker = self._breaker_for(match.advertisement.name)
        if breaker is not None and not breaker.allow(self.env.now):
            breaker.reject(self.env.now)
            self.stats.breaker_rejected += 1
            fallback = self.fallbacks.get(operation)
            if fallback is not None:
                self.stats.breaker_fallbacks += 1
                self.obs.metrics.inc("proxy.breaker_fallbacks")
                return InvokeResult(
                    value=fallback(operation, arguments),
                    outcome=InvokeOutcome.DEGRADED,
                    epoch=None,
                    attempts=0,
                    duration=self.env.now - started_at,
                    trace_id=rtrace.request_id,
                    served_by="fallback",
                    invocation_id=invocation_id,
                )
            raise CircuitOpenError(
                f"circuit open for {match.advertisement.name!r} "
                f"({self.sws.name}.{operation} rejected locally)"
            )
        try:
            result = yield from self._invoke_attempts(
                operation,
                arguments,
                match,
                per_request_timeout=per_request_timeout,
                deadline=deadline,
                rtrace=rtrace,
                invocation_id=invocation_id,
                started_at=started_at,
                router=router,
                routing_key=routing_key,
                match_by_name=match_by_name,
                region_alternates=region_alternates,
            )
        finally:
            # A mutating call may have executed even when it raised (a
            # sent request can land after our timeout), so any cached
            # read of this service could now be stale: flush.
            if mutating and self.result_cache is not None:
                self.result_cache.invalidate_all()
        if cache_key is not None:
            self.result_cache.store(
                cache_key,
                result.value,
                action=action,
                epoch=result.epoch,
                group_id=result.group_id,
                now=self.env.now,
            )
        return result

    def _shard_router_for(
        self, operation: str, matches: List[GroupMatch]
    ) -> Optional[ShardRouter]:
        """The operation's shard router, fed from discovered shard ads.

        Returns ``None`` for unsharded deployments (no match carries a
        shard annotation), leaving the single-group path untouched.  The
        router's ring is merged *additively* from whatever shard groups
        this discovery round surfaced — a partial view must never shrink
        the ring and misroute keys other rounds resolved correctly.
        """
        sharded = [m.advertisement.name for m in matches if m.advertisement.sharded]
        if not sharded:
            return None
        router = self._routers.get(operation)
        if router is None:
            router = ShardRouter(
                virtual_nodes=self.virtual_nodes,
                suspect_interval=self.shard_suspect_interval,
            )
            self._routers[operation] = router
        router.update(sharded)
        return router

    def _invoke_attempts(
        self,
        operation: str,
        arguments: Dict[str, Any],
        match: GroupMatch,
        *,
        per_request_timeout: float,
        deadline: Deadline,
        rtrace,
        invocation_id: str,
        started_at: float,
        router: Optional[ShardRouter] = None,
        routing_key: Optional[str] = None,
        match_by_name: Optional[Dict[str, GroupMatch]] = None,
        region_alternates: Optional[List[GroupMatch]] = None,
    ) -> Generator:
        """The bind/send/retry loop against one (possibly rerouting) group.

        With a ``router``, a group that stops answering is suspected and
        the request fails over to the key's ring successor — but only if
        it is still safe: a mutating request that has been *sent* is
        pinned to its home group (sticky at-most-once handoff), so a
        retried invocation id never spans two groups and each group's
        dedup journal alone suffices for exactly-once.
        """
        advertisement = match.advertisement
        group_id = advertisement.group_id
        profile = self._profile_for(advertisement.key(), advertisement)
        recovered = False
        #: Whether any attempt has actually been handed to the network —
        #: the point past which a mutating request may have executed.
        sent = False
        # Opened on the first failure signal, closed when the request
        # completes: the span's duration is the observed failover time.
        recover_span = None
        recover_reason: Optional[str] = None
        attempt = 0
        #: Retries (failed tries) so far — drives the backoff exponent.
        failures = 0
        #: ``busy`` replies absorbed so far, and whether the most recent
        #: failure signal was a shed (drives the terminal fault's shape).
        shed_retries = 0
        busy_was_last = False
        last_busy_hint: Optional[float] = None

        def enter_recovery(reason: str) -> None:
            nonlocal recovered, recover_span, recover_reason
            recovered = True
            if recover_span is None:
                recover_span = rtrace.begin("recover", self.env.now)
                recover_reason = reason

        def backoff() -> Generator:
            """Sleep the policy's (jittered, deadline-clamped) delay."""
            delay = self.retry.delay(failures - 1, self._retry_rng)
            delay = min(delay, deadline.remaining(self.env.now))
            if delay > 0.0:
                yield self.env.timeout(delay)

        def try_reroute() -> bool:
            """Fail the key over to its ring successor, if safe.

            Suspects the current group either way (so *fresh* requests
            stop landing on it); reroutes this request only when its
            invocation id cannot already live in the home group's
            journal — i.e. read-only operations, or nothing sent yet.
            """
            nonlocal advertisement, group_id, profile
            if router is None or routing_key is None:
                return False
            router.suspect(advertisement.name, self.env.now)
            if sent and operation not in self.read_only_operations:
                return False
            owner = router.route(routing_key, self.env.now)
            if owner is None or owner == advertisement.name:
                return False
            successor = (match_by_name or {}).get(owner)
            if successor is None:
                return False
            advertisement = successor.advertisement
            group_id = advertisement.group_id
            profile = self._profile_for(advertisement.key(), advertisement)
            self.stats.shard_failovers += 1
            self.obs.metrics.inc("proxy.shard_failovers")
            return True

        def try_region_failover() -> bool:
            """Rebind to the next region's group, if safe.

            The sticky rule is the shard handoff's: a mutating request
            that has been sent stays pinned to its group (its invocation
            id may live in that journal); reads and never-sent requests
            climb the ladder.  Epoch fencing continues per group — each
            region's group has its own election domain and binding.
            """
            nonlocal advertisement, group_id, profile
            if not region_alternates:
                return False
            if sent and operation not in self.read_only_operations:
                return False
            successor = region_alternates.pop(0)
            advertisement = successor.advertisement
            group_id = advertisement.group_id
            profile = self._profile_for(advertisement.key(), advertisement)
            self.stats.region_failovers += 1
            self.obs.metrics.inc("proxy.region_failovers")
            return True

        while True:
            if attempt >= self.max_attempts:
                profile.record_failure()
                if recover_span is not None:
                    recover_span.finish(
                        self.env.now, reason=recover_reason, attempts=attempt
                    )
                if busy_was_last:
                    raise SoapFault.server_busy(
                        f"{self.sws.name}.{operation} shed by overload control "
                        f"({shed_retries} busy replies in {attempt} attempts)",
                        retry_after=last_busy_hint,
                    )
                raise InvocationFailedError(
                    f"{self.sws.name}.{operation} failed after "
                    f"{self.max_attempts} attempts"
                )
            if deadline.expired(self.env.now):
                self.stats.deadline_exhausted += 1
                self.obs.metrics.inc("proxy.deadline_exhausted")
                profile.record_failure()
                if recover_span is not None:
                    recover_span.finish(
                        self.env.now, reason=recover_reason, attempts=attempt
                    )
                if busy_was_last:
                    raise SoapFault.server_busy(
                        f"{self.sws.name}.{operation} shed by overload control "
                        f"(deadline exhausted after {shed_retries} busy replies)",
                        retry_after=last_busy_hint,
                    )
                raise InvocationFailedError(
                    f"{self.sws.name}.{operation} deadline exhausted after "
                    f"{self.env.now - started_at:.3f}s ({attempt} attempts)"
                )
            attempt += 1
            busy_was_last = False
            binding = self._bindings.get(group_id)
            if binding is None:
                bind_span = rtrace.begin("bind", self.env.now)
                try:
                    binding = yield from self.resolve_coordinator(
                        group_id, deadline=deadline
                    )
                except NoCoordinatorError:
                    bind_span.finish(self.env.now, outcome="no-coordinator")
                    failures += 1
                    self._breaker_feedback(advertisement.name, ok=False)
                    enter_recovery("no-coordinator")
                    if try_reroute():
                        continue  # ring successor takes the segment now
                    if try_region_failover():
                        continue  # another region's group takes the call
                    # Group may be mid-election: back off and retry.
                    yield from backoff()
                    continue
                bind_span.finish(self.env.now, outcome="ok")
            invoke_span = rtrace.begin("invoke", self.env.now)
            sent = True
            reply = yield from self._send_and_wait(
                binding,
                operation,
                arguments,
                deadline.clamp(self.env.now, per_request_timeout),
                invocation_id,
                attempt,
            )
            if reply is None:  # timeout — coordinator is likely dead
                invoke_span.finish(self.env.now, outcome="timeout")
                self.stats.timeouts += 1
                self.obs.metrics.inc("proxy.timeouts")
                self._breaker_feedback(advertisement.name, ok=False)
                profile.record_failure()
                self.drop_binding(group_id)
                failures += 1
                enter_recovery("timeout")
                if not try_reroute():
                    try_region_failover()
                continue
            if reply.kind == "result":
                if not reply.deduped and self._result_is_stale(group_id, reply):
                    # A deposed coordinator answered after a takeover
                    # already delivered under a newer term: never hand the
                    # stale value to the client.
                    invoke_span.finish(self.env.now, outcome="stale-result")
                    self.stats.stale_results_discarded += 1
                    self.obs.metrics.inc("proxy.stale_results_discarded")
                    self.drop_binding(group_id)
                    failures += 1
                    enter_recovery("stale-result")
                    yield from backoff()
                    continue
                invoke_span.finish(self.env.now, outcome="ok")
                self.stats.successes += 1
                self.obs.metrics.inc("proxy.successes")
                self._breaker_feedback(advertisement.name, ok=True)
                self.obs.metrics.observe("proxy.rtt", self.env.now - started_at)
                profile.record_success(self.env.now - started_at)
                if reply.deduped:
                    # A journal replay settles under the *original*
                    # execution's term; it neither advances nor violates
                    # the monotone result-epoch audit.
                    self.stats.deduped += 1
                    self.obs.metrics.inc("proxy.deduped")
                else:
                    self._record_result_epoch(group_id, reply.epoch)
                if recovered:
                    self.stats.failover_durations.append(self.env.now - started_at)
                    self.obs.metrics.observe(
                        "proxy.failover", self.env.now - started_at
                    )
                if recover_span is not None:
                    recover_span.finish(
                        self.env.now, reason=recover_reason, attempts=attempt
                    )
                if recovered:
                    outcome = InvokeOutcome.RECOVERED
                elif shed_retries:
                    outcome = InvokeOutcome.RETRIED_AFTER_SHED
                else:
                    outcome = InvokeOutcome.OK
                return InvokeResult(
                    value=self._translate(operation, reply.value),
                    outcome=outcome,
                    epoch=reply.epoch,
                    attempts=attempt,
                    duration=self.env.now - started_at,
                    trace_id=rtrace.request_id,
                    served_by=reply.served_by,
                    shed_retries=shed_retries,
                    deduped=reply.deduped,
                    invocation_id=invocation_id,
                    group_id=group_id,
                )
            if reply.kind == "busy":
                # Overload shed: the coordinator is alive but refusing
                # load, so keep the binding and retry *later* — the
                # retry-after hint (when it fits the deadline) replaces
                # the generic backoff.
                invoke_span.finish(self.env.now, outcome="busy")
                self.stats.shed += 1
                self.obs.metrics.inc("proxy.shed")
                shed_retries += 1
                failures += 1
                busy_was_last = True
                last_busy_hint = reply.retry_after
                profile.record_failure()
                remaining = deadline.remaining(self.env.now)
                if reply.retry_after is not None and remaining > 0.0:
                    self.stats.retry_after_honored += 1
                    self.obs.metrics.inc("proxy.retry_after_honored")
                    delay = min(reply.retry_after, remaining)
                    if delay > 0.0:
                        yield self.env.timeout(delay)
                else:
                    yield from backoff()
                continue
            if reply.kind == "fault":
                invoke_span.finish(self.env.now, outcome="fault")
                self.stats.faults += 1
                self.obs.metrics.inc("proxy.faults")
                raise SoapFault(reply.fault_code or "Server", str(reply.value))
            if reply.kind == "not-coordinator":
                stale_epoch = reply.value == "stale-epoch"
                invoke_span.finish(
                    self.env.now,
                    outcome="stale-epoch" if stale_epoch else "redirect",
                )
                self.stats.redirects += 1
                self.obs.metrics.inc("proxy.redirects")
                if stale_epoch:
                    self.stats.stale_epoch_redirects += 1
                    self.obs.metrics.inc("proxy.stale_epoch_redirects")
                failures += 1
                enter_recovery("stale-epoch" if stale_epoch else "redirect")
                if reply.coordinator is not None:
                    coordinator, address, epoch = self._normalize_pointer(
                        reply.coordinator
                    )
                    self._rebind(group_id, coordinator, address, epoch)
                    # Fresh forward pointer: retry immediately, no backoff.
                else:
                    self.drop_binding(group_id)
                    yield from backoff()
                continue
            if reply.kind == "cannot-serve":
                # Every replica's backend is down.  Another region's group
                # has independent backends, so the failover ladder applies
                # (read legs only: the request was sent); otherwise it is
                # a genuine application outage redundancy cannot mask.
                invoke_span.finish(self.env.now, outcome="cannot-serve")
                if try_region_failover():
                    failures += 1
                    enter_recovery("cannot-serve")
                    continue
                self.stats.faults += 1
                self.obs.metrics.inc("proxy.faults")
                self._breaker_feedback(advertisement.name, ok=False)
                profile.record_failure()
                raise SoapFault.server(
                    f"all b-peers of {advertisement.name!r} cannot serve"
                )

    # -- cross-shard scatter-gather ---------------------------------------------------------

    def scatter(
        self,
        operation: str,
        arguments: Dict[str, Any],
        timeout: Optional[float] = None,
        budget: Optional[float] = None,
        policy: Optional[str] = None,
    ) -> Generator:
        """Fan a read out to *every* shard group and gather (``yield from``).

        Each shard leg runs the full bind/retry loop pinned to its own
        group (its own invocation id, so per-group dedup still applies);
        legs proceed concurrently and the gather completes when all have
        settled.  The partial-result ``policy`` (defaulting to the
        proxy's configured one) decides whether a gather with failed
        legs returns degraded (:attr:`ScatterResult.partial`) or raises
        :class:`~repro.core.sharding.ScatterError`.

        Against an unsharded deployment this degenerates to a
        single-leg gather over the one matched group.
        """
        self.stats.scatter_calls += 1
        self.obs.metrics.inc("proxy.scatter_calls")
        rtrace = self.obs.request_trace(
            f"{self.sws.name}.{operation}#scatter",
            self.stats.scatter_calls,
            self.env.now,
        )
        try:
            result = yield from self._scatter(
                operation, arguments, timeout, budget, policy, rtrace
            )
        except BaseException as error:
            self.obs.finish_request(rtrace, self.env.now, status=type(error).__name__)
            raise
        self.obs.finish_request(rtrace, self.env.now, status="ok")
        return result

    def _scatter(
        self,
        operation: str,
        arguments: Dict[str, Any],
        timeout: Optional[float],
        budget: Optional[float],
        policy: Optional[str],
        rtrace,
    ) -> Generator:
        started_at = self.env.now
        per_request_timeout = timeout if timeout is not None else self.request_timeout
        deadline = Deadline(
            at=started_at + (budget if budget is not None else self.deadline_budget)
        )
        discover_span = rtrace.begin("discover", self.env.now)
        matches = yield from self.find_peer_group_adv(operation, deadline=deadline)
        discover_span.finish(self.env.now, matches=len(matches))
        if not matches:
            raise NoMatchingGroupError(
                f"no b-peer group matches {self.sws.name}.{operation}"
            )
        sharded = [m for m in matches if m.advertisement.sharded]
        if sharded:
            targets = {m.advertisement.name: m for m in sharded}
        else:
            chosen = self._choose_group(matches)
            targets = {chosen.advertisement.name: chosen}
        outcome = ScatterResult(
            operation=operation,
            policy=policy if policy is not None else self.scatter_policy,
            shards=len(targets),
        )

        def leg(name: str, match: GroupMatch) -> Generator:
            invocation_id = f"{self.name}#{next(self._invocation_ids)}"
            try:
                result = yield from self._invoke_attempts(
                    operation,
                    arguments,
                    match,
                    per_request_timeout=per_request_timeout,
                    deadline=deadline,
                    rtrace=rtrace,
                    invocation_id=invocation_id,
                    started_at=self.env.now,
                )
                outcome.results[name] = result
            except Exception as error:
                # Captured per shard, never propagated out of the leg's
                # process: the policy decides after the gather.
                outcome.failures[name] = f"{type(error).__name__}: {error}"

        processes = [
            self.node.spawn(leg(name, match))
            for name, match in sorted(targets.items())
        ]
        yield AllOf(self.env, processes)
        outcome.duration = self.env.now - started_at
        if outcome.partial:
            self.stats.scatter_partial += 1
            self.obs.metrics.inc("proxy.scatter_partial")
        outcome.evaluate()
        return outcome

    def _highest_witnessed(self, binding: _Binding) -> Optional[Epoch]:
        """The freshest term this proxy can vouch for, gossiped to b-peers."""
        if not self.epoch_fencing:
            return None
        last = self._last_result_epoch.get(binding.group_id)
        if binding.epoch is None:
            return last
        if last is None:
            return binding.epoch
        return max(binding.epoch, last)

    def _result_is_stale(self, group_id: PeerGroupId, reply: ExecReply) -> bool:
        if not self.epoch_fencing or reply.epoch is None:
            return False
        last = self._last_result_epoch.get(group_id)
        return last is not None and reply.epoch < last

    def _record_result_epoch(
        self, group_id: PeerGroupId, epoch: Optional[Epoch]
    ) -> None:
        if epoch is None:
            return
        last = self._last_result_epoch.get(group_id)
        if last is None or epoch > last:
            self._last_result_epoch[group_id] = epoch
            if self.result_cache is not None:
                # Epoch fence advanced (failover happened): entries the
                # new fence predates may miss recovered writes — drop.
                self.result_cache.invalidate_epoch(group_id, epoch)
        self.result_epoch_log.append((group_id, epoch))

    # -- circuit breakers ----------------------------------------------------------------

    def _breaker_for(self, scope: str) -> Optional[CircuitBreaker]:
        """The (service, shard)-scoped breaker, lazily built per scope."""
        if self._breaker_spec is None:
            return None
        breaker = self._breakers.get(scope)
        if breaker is None:
            breaker = CircuitBreaker(
                self._breaker_spec, scope=scope, metrics=self.obs.metrics
            )
            self._breakers[scope] = breaker
        return breaker

    def _breaker_feedback(self, scope: str, ok: bool) -> None:
        """Feed an attempt outcome to ``scope``'s breaker (if enabled).

        Failure = no-coordinator bind failures, attempt timeouts, and
        terminal cannot-serve — signals the group is *unreachable or
        unable*.  Overload sheds and application faults are deliberately
        not failures: a shedding or faulting service is alive.
        """
        breaker = self._breaker_for(scope)
        if breaker is None:
            return
        if ok:
            breaker.record_success(self.env.now)
        else:
            breaker.record_failure(self.env.now)

    def _send_and_wait(
        self,
        binding: _Binding,
        operation: str,
        arguments: Dict[str, Any],
        timeout: float,
        invocation_id: Optional[str] = None,
        attempt: int = 1,
    ) -> Generator:
        request = ExecRequest(
            request_id=next(self._request_ids),
            group_id=binding.group_id,
            operation=operation,
            arguments=arguments,
            reply_to=self.peer_id,
            reply_addr=self.endpoint.address,
            epoch=binding.epoch,
            observed_epoch=self._highest_witnessed(binding),
            invocation_id=invocation_id,
            attempt=attempt,
        )
        done = self.env.event()
        self._pending[request.request_id] = done
        try:
            try:
                self.endpoint.send(
                    binding.coordinator,
                    PROTO_EXEC,
                    request,
                    category="bpeer-request",
                    size_bytes=700,
                )
            except UnresolvablePeerError:
                return None
            timer = self.env.timeout(timeout)
            outcome = yield AnyOf(self.env, [done, timer])
            if done in outcome:
                return outcome[done]
            return None
        finally:
            self._pending.pop(request.request_id, None)

    def _on_reply(self, message: EndpointMessage) -> None:
        reply: ExecReply = message.payload
        done = self._pending.get(reply.request_id)
        if done is not None and not done.triggered:
            done.succeed(reply)

    # -- data translation (§4.2) ------------------------------------------------------------------

    def _translate(self, operation: str, value: Any) -> Any:
        """Validate/format the b-peer result against the WSDL schema."""
        parts = self.sws.operation(operation).outputs
        if not parts:
            return value
        element = parts[0].element.split(":", 1)[-1]
        schema = self.sws.definitions.schema
        if element in schema.elements:
            try:
                schema.validate_element(element, value)
            except SchemaError:
                self.stats.translation_failures += 1
        return value
