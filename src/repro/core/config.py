"""Scenario configuration: every deploy/workload knob in one place.

The seed scattered deployment knobs across ``WhisperSystem.__init__``
(seed, heartbeats, load sharing), ``deploy_student_service`` (replicas,
dataset sizes) and ad-hoc call sites (settle time), and the overload work
adds more (dispatch policy, queue bounds).  :class:`ScenarioConfig`
collapses them into one dataclass consumed by
:class:`~repro.core.system.WhisperSystem`; the old keyword arguments
survive as a thin deprecated shim that builds a config for you.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from ..ontology.match import DegreeOfMatch
from .autoscale import AutoscaleSpec
from .breaker import BreakerSpec
from .rescache import ResultCacheSpec
from .topology import Topology

__all__ = ["ScenarioConfig"]


@dataclass(frozen=True)
class ScenarioConfig:
    """One deployment scenario, from RNG seed to dispatch policy."""

    # -- simulation-wide --
    #: Root seed for every RNG stream (runs are bit-for-bit reproducible).
    seed: int = 0
    #: Simulated seconds :meth:`WhisperSystem.settle` waits by default for
    #: joins, SRDI pushes and the first election to finish.
    settle: float = 6.0
    #: Record per-message detail on the trace (memory-heavy; debug only).
    record_trace_details: bool = False
    #: Request-scoped tracing + metrics (near-zero-cost to disable).
    observability: bool = True
    #: The network shape: regions, WAN links, gossip tuning (see
    #: :class:`~repro.core.topology.Topology`).  ``None`` keeps the
    #: paper's flat single-LAN testbed, byte-identical to the seed —
    #: equivalent to ``Topology.single_region()`` but without region
    #: bookkeeping anywhere on the hot path.
    topology: Optional[Topology] = None
    #: Fraction of requests that get a full span tree (systematic
    #: sampling, deterministic).  1.0 traces everything (the default);
    #: lower rates keep the request counters exact but skip per-request
    #: span allocation — the knob high-throughput scenarios turn down.
    obs_sample_rate: float = 1.0

    # -- group coordination --
    heartbeat_interval: float = 1.0
    miss_threshold: int = 3
    #: Split-brain fencing (election epochs, PR 2): stale-term requests
    #: are bounced, stale announcements rejected, stale results discarded,
    #: and the proxy prefers the highest-epoch resolver answer.  ``False``
    #: restores the unfenced pre-epoch protocol — only the schedule
    #: checker's self-test should ever do this: it proves the invariant
    #: suite catches the resulting stale-result delivery.
    epoch_fencing: bool = True

    # -- semantic matching --
    min_degree: DegreeOfMatch = DegreeOfMatch.EXACT

    # -- load sharing & overload control --
    #: Spread requests over members (§4.1) instead of coordinator-only.
    load_sharing: bool = False
    #: Dispatch policy name or instance (see :mod:`repro.core.dispatch`):
    #: ``round-robin``, ``least-outstanding``, or ``qos``.
    dispatch: Union[str, Any, None] = "round-robin"
    #: Per-member cap on dispatched-but-unfinished requests.  ``None``
    #: keeps the seed's unbounded queues; with a bound, the coordinator
    #: sheds excess load with a ``server-busy`` fault + retry-after hint
    #: instead of queueing forever.
    queue_bound: Optional[int] = None

    # -- exactly-once invocation --
    #: Dedup/result journal on every b-peer: retried invocation ids are
    #: answered from the journal (or parked behind the in-flight
    #: execution for mutating services) instead of re-executed.  ``False``
    #: restores the seed's at-least-once semantics — the baseline the
    #: duplicate-execution audit measures against.
    dedup_journal: bool = True
    #: Bound on journal entries per peer (oldest DONE evicted past it).
    journal_capacity: int = 4096

    # -- semantic sharding --
    #: Number of federated b-peer groups the service's semantic keyspace
    #: is consistent-hashed across.  1 keeps the paper's single-group
    #: deployment (byte-identical messages to the seed); N>1 deploys N
    #: groups, each with its own replication/election/journal, and the
    #: proxy routes on the annotation+argument key.
    shards: int = 1
    #: Virtual nodes per shard group on the consistent-hash ring; more
    #: points smooth the per-shard key distribution and shrink the
    #: segment remapped by one group's failover.
    virtual_nodes: int = 64
    #: Cross-shard read policy for scatter-gather: ``all`` (raise on any
    #: shard failure), ``quorum`` (strict majority), or ``partial``
    #: (>=1 success, degraded answers flagged, the default).
    scatter_policy: str = "partial"

    # -- canonical student scenario (§3) --
    replicas: int = 4
    students: int = 200
    warehouse_every: int = 2

    # -- proxy budgets --
    request_timeout: float = 2.0
    max_attempts: int = 8
    deadline_budget: float = 60.0

    # -- adaptive capacity (ROADMAP item 5) --
    #: Demand-driven group resizing (see :mod:`repro.core.autoscale`):
    #: a controller watches the dispatch load ledger and spawns/retires
    #: replicas between the spec's ``[min_replicas, max_replicas]`` with
    #: cooldown hysteresis and epoch-safe drain-first retirement.
    #: ``None`` keeps the paper's fixed-size groups, byte-identical to
    #: the seed.
    autoscale: Optional[AutoscaleSpec] = None
    #: Client-side circuit breaker per (service, shard) binding (see
    #: :mod:`repro.core.breaker`): trips open on a failure-rate threshold
    #: over a sliding window, rejects locally while open, half-open
    #: probes to heal.  ``None`` disables (seed behaviour).
    circuit_breaker: Optional[BreakerSpec] = None
    #: Read-through semantic result cache on the proxy (see
    #: :mod:`repro.core.rescache`): read-only hits skip the whole
    #: discover→bind→invoke path, epoch-fenced + staleness-bounded.
    #: ``None`` disables (seed behaviour).
    result_cache: Optional[ResultCacheSpec] = None

    def replace(self, **changes: Any) -> "ScenarioConfig":
        """A copy with ``changes`` applied (convenience for sweeps)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_legacy_kwargs(
        cls,
        base: Optional["ScenarioConfig"],
        kwargs: Dict[str, Any],
        where: str,
    ) -> "ScenarioConfig":
        """Build/extend a config from pre-redesign keyword arguments.

        The shim for callers of the old scattered-kwargs API: unknown
        keys raise (as they always did), known keys override ``base`` and
        emit a :class:`DeprecationWarning` pointing at ``ScenarioConfig``.
        """
        config = base if base is not None else cls()
        supplied = {k: v for k, v in kwargs.items() if v is not None}
        if not supplied:
            return config
        unknown = set(supplied) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise TypeError(f"{where} got unexpected arguments: {sorted(unknown)}")
        warnings.warn(
            f"passing {sorted(supplied)} to {where} is deprecated; "
            "build a ScenarioConfig instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return config.replace(**supplied)
