"""Semantic (and syntactic baseline) discovery of b-peer groups.

This is the paper's §3.2 ``findPeerGroupAdv``: scan advertisements for one
whose *action* matches the Web service's functional semantics and whose
*inputs/outputs* match its data semantics.  We generalise equality to the
four-level degree of match (:mod:`repro.ontology.match`), configurable via
``min_degree`` (the paper's listing corresponds to ``EXACT``).

A *syntactic* matcher (local-name comparison, as plain WSDL/JXTA would do)
is provided as the ablation baseline; §3.1/§4.3 predict it suffers "high
recall and low precision" on homonyms and misses synonyms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..ontology.match import ConceptMatcher, DegreeOfMatch, SignatureMatch
from ..ontology.namespaces import split_uri
from ..p2p.advertisement import SemanticAdvertisement
from ..wsdl.annotations import SemanticAnnotation

__all__ = ["GroupMatch", "SemanticGroupMatcher", "SyntacticGroupMatcher"]


@dataclass(frozen=True)
class GroupMatch:
    """One advertisement that satisfied the matcher, with its quality."""

    advertisement: SemanticAdvertisement
    degree: DegreeOfMatch
    score: float
    signature: Optional[SignatureMatch] = None


class SemanticGroupMatcher:
    """Matches service annotations against semantic advertisements."""

    def __init__(
        self,
        matcher: ConceptMatcher,
        min_degree: DegreeOfMatch = DegreeOfMatch.EXACT,
    ):
        self.matcher = matcher
        self.min_degree = min_degree

    def match(
        self,
        annotation: SemanticAnnotation,
        advertisement: SemanticAdvertisement,
    ) -> Optional[GroupMatch]:
        """The §3.2 check: action, then input, then output semantics."""
        signature = self.matcher.match_signature(
            requested_action=annotation.action,
            requested_inputs=annotation.inputs,
            requested_outputs=annotation.outputs,
            advertised_action=advertisement.get_sem_action(),
            advertised_inputs=advertisement.get_sem_input(),
            advertised_outputs=advertisement.get_sem_output(),
        )
        if signature.degree < self.min_degree:
            return None
        return GroupMatch(
            advertisement=advertisement,
            degree=signature.degree,
            score=signature.score,
            signature=signature,
        )

    def find_all(
        self,
        annotation: SemanticAnnotation,
        advertisements: Sequence[SemanticAdvertisement],
    ) -> List[GroupMatch]:
        """Every matching advertisement, best first."""
        matches = []
        for advertisement in advertisements:
            match = self.match(annotation, advertisement)
            if match is not None:
                matches.append(match)
        matches.sort(
            key=lambda m: (-m.degree, -m.score, m.advertisement.key())
        )
        return matches

    def find_best(
        self,
        annotation: SemanticAnnotation,
        advertisements: Sequence[SemanticAdvertisement],
    ) -> Optional[GroupMatch]:
        matches = self.find_all(annotation, advertisements)
        return matches[0] if matches else None


class SyntacticGroupMatcher:
    """The baseline plain-WSDL/JXTA matcher: local names only.

    Compares the *local names* of the action/input/output URIs, ignoring
    namespaces and ontology structure — the behaviour of keyword search
    over JXTA's default advertisement index.  Homonyms collide; synonyms
    are missed.
    """

    def match(
        self,
        annotation: SemanticAnnotation,
        advertisement: SemanticAdvertisement,
    ) -> Optional[GroupMatch]:
        if _local(annotation.action) != _local(advertisement.get_sem_action()):
            return None
        if _local_multiset(annotation.inputs) != _local_multiset(
            advertisement.get_sem_input()
        ):
            return None
        if _local_multiset(annotation.outputs) != _local_multiset(
            advertisement.get_sem_output()
        ):
            return None
        return GroupMatch(
            advertisement=advertisement,
            degree=DegreeOfMatch.EXACT,  # syntactically "exact" — maybe wrongly
            score=1.0,
        )

    def find_all(
        self,
        annotation: SemanticAnnotation,
        advertisements: Sequence[SemanticAdvertisement],
    ) -> List[GroupMatch]:
        matches = [
            match
            for advertisement in advertisements
            if (match := self.match(annotation, advertisement)) is not None
        ]
        matches.sort(key=lambda m: m.advertisement.key())
        return matches

    def find_best(
        self,
        annotation: SemanticAnnotation,
        advertisements: Sequence[SemanticAdvertisement],
    ) -> Optional[GroupMatch]:
        matches = self.find_all(annotation, advertisements)
        return matches[0] if matches else None


def _local(uri: str) -> str:
    return split_uri(uri)[1]


def _local_multiset(uris: Sequence[str]) -> Tuple[str, ...]:
    return tuple(sorted(_local(uri) for uri in uris))
