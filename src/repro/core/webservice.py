"""The client-facing Web service (Figure 2's left half).

Clients speak plain SOAP to an ordinary Web service hosted on a web
server; "the actual implementation of this service is not associated with
the Web service itself, but it is supplied by a JXTA network of b-peers"
(§3.1).  The dispatcher here forwards every call to the SWS-proxy and maps
Whisper-level failures to SOAP faults — except that when even Whisper
cannot find anyone to serve, the client sees exactly what the paper's §1
describes: an error, or silence.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ..simnet.node import Node
from ..soap.fault import SoapFault
from ..soap.http import HttpResponse
from ..soap.server import SoapServer
from ..wsdl.xmlio import definitions_to_xml
from .errors import InvocationFailedError, NoMatchingGroupError, WhisperError
from .proxy import SwsProxy
from .sws import SemanticWebService

__all__ = ["WhisperWebService", "PlainWebService"]


class WhisperWebService:
    """A semantic Web service whose back-end is a b-peer group."""

    def __init__(
        self,
        node: Node,
        sws: SemanticWebService,
        proxy: SwsProxy,
        port: int = 80,
    ):
        self.node = node
        self.sws = sws
        self.proxy = proxy
        self.soap = SoapServer(node, port=port)
        self.path = f"/{sws.name}"
        self.soap.mount(self.path, self._dispatch)
        # Standard SOA affordance: GET <path>?wsdl returns the (WSDL-S)
        # service description, letting clients bootstrap from the URL alone.
        self.soap.http.route(f"{self.path}?wsdl", self._serve_wsdl)

    def _serve_wsdl(self, request) -> HttpResponse:
        from ..wsdl.definitions import ServicePort

        definitions = self.sws.definitions
        # Advertise this live endpoint in the document (WSDL service/port),
        # so a client can invoke straight from the description.
        location = f"sim://{self.node.name}:{self.soap.port}{self.path}"
        if not any(port.location == location for port in definitions.ports):
            interface = next(iter(definitions.interfaces))
            definitions.add_port(
                ServicePort(
                    name=f"{self.sws.name}Port",
                    interface_name=interface,
                    location=location,
                )
            )
        return HttpResponse(
            status=200,
            body=definitions_to_xml(definitions),
            headers={"Content-Type": "text/xml"},
        )

    @property
    def address(self):
        return (self.node.name, self.soap.port)

    def _dispatch(
        self, operation: str, arguments: Dict[str, Any], headers: Dict[str, str]
    ) -> Generator:
        if operation not in self.sws.operations():
            raise SoapFault.client(
                f"service {self.sws.name!r} has no operation {operation!r}"
            )
        try:
            result = yield from self.proxy.invoke(operation, arguments)
        except SoapFault:
            # Application faults — and overload sheds (``Server.Busy``,
            # with the retry-after hint in the fault detail) — pass
            # through with their code intact.
            raise
        except NoMatchingGroupError as error:
            raise SoapFault.server(f"no back-end available: {error}") from error
        except InvocationFailedError as error:
            raise SoapFault.server(f"back-end unreachable: {error}") from error
        except WhisperError as error:
            raise SoapFault.server(str(error)) from error
        # The wire carries the bare value; the typed InvokeResult is a
        # proxy-level (in-process) affordance.
        return result.value


class PlainWebService:
    """The no-Whisper baseline: the implementation runs on the web server.

    This is the world the paper starts from — "Current Web service
    specifications do not provide support to handle service failures and
    prevent service downtime" (§1).  When this host (or its backend) is
    down, clients get faults or silence; there is no redundancy to hide
    behind.  Used as the 1-replica baseline of Ablation B.
    """

    def __init__(self, node: Node, service_name: str, implementation, port: int = 80):
        self.node = node
        self.service_name = service_name
        self.implementation = implementation
        self.soap = SoapServer(node, port=port)
        self.path = f"/{service_name}"
        self.soap.mount(self.path, self._dispatch)

    @property
    def address(self):
        return (self.node.name, self.soap.port)

    def _dispatch(
        self, operation: str, arguments: Dict[str, Any], headers: Dict[str, str]
    ) -> Generator:
        yield self.node.env.timeout(self.implementation.service_time)
        try:
            return self.implementation.invoke(arguments)
        except Exception as error:
            raise SoapFault.server(f"{type(error).__name__}: {error}") from error
